//! Dense row-major `f32` array storage and the non-differentiable math used
//! by the autodiff layer: elementwise ops with NumPy broadcasting, matrix
//! multiplication, reductions, and `im2col`/`col2im` convolution helpers.

use crate::error::{Result, TensorError};
use crate::kernel;
use crate::shape::{broadcast_shapes, dim_right, num_elements, row_major_strides};
use rand::Rng;

/// A dense, row-major, heap-allocated `f32` tensor value.
///
/// `Array` is the plain-value layer beneath [`crate::Tensor`]: it has no
/// gradient tracking and all operations are eager. The empty shape `[]`
/// denotes a scalar holding exactly one element.
///
/// # Examples
///
/// ```
/// use edd_tensor::Array;
/// let a = Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap();
/// let b = Array::full(&[2, 2], 10.0);
/// let c = a.add(&b).unwrap();
/// assert_eq!(c.data(), &[11.0, 12.0, 13.0, 14.0]);
/// ```
#[derive(Debug, PartialEq)]
pub struct Array {
    shape: Vec<usize>,
    data: Vec<f32>,
}

/// Storage comes from and returns to the thread-local recycling pool
/// ([`crate::recycle`]): cloning takes a pooled buffer instead of a fresh
/// allocation, and dropping parks the buffer for the next same-length
/// request. This is what makes steady-state training steps allocation-free.
impl Clone for Array {
    fn clone(&self) -> Self {
        let mut data = crate::recycle::take(self.data.len());
        data.copy_from_slice(&self.data);
        Array {
            shape: self.shape.clone(),
            data,
        }
    }

    fn clone_from(&mut self, source: &Self) {
        self.shape.clone_from(&source.shape);
        if self.data.len() == source.data.len() {
            self.data.copy_from_slice(&source.data);
        } else {
            crate::recycle::give(std::mem::replace(
                &mut self.data,
                crate::recycle::take(source.data.len()),
            ));
            self.data.copy_from_slice(&source.data);
        }
    }
}

impl Drop for Array {
    fn drop(&mut self) {
        crate::recycle::give(std::mem::take(&mut self.data));
    }
}

impl Array {
    /// Creates an array of `shape` filled with zeros.
    #[must_use]
    pub fn zeros(shape: &[usize]) -> Self {
        Array {
            shape: shape.to_vec(),
            data: crate::recycle::take_zeroed(num_elements(shape)),
        }
    }

    /// Creates an array of `shape` with unspecified contents (a recycled
    /// buffer when one is parked). Every caller must overwrite every
    /// element before the array is read.
    #[must_use]
    pub(crate) fn uninit(shape: &[usize]) -> Self {
        Array {
            shape: shape.to_vec(),
            data: crate::recycle::take(num_elements(shape)),
        }
    }

    /// Creates an array of `shape` filled with ones.
    #[must_use]
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates an array of `shape` filled with `value`.
    #[must_use]
    pub fn full(shape: &[usize], value: f32) -> Self {
        let mut data = crate::recycle::take(num_elements(shape));
        data.fill(value);
        Array {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates a scalar (rank-0) array.
    #[must_use]
    pub fn scalar(value: f32) -> Self {
        Array {
            shape: vec![],
            data: vec![value],
        }
    }

    /// Creates an array from a flat `data` vector and a `shape`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] if `data.len()` does not equal
    /// the number of elements implied by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        if data.len() != num_elements(shape) {
            return Err(TensorError::InvalidShape {
                shape: shape.to_vec(),
                reason: format!(
                    "data length {} does not match shape volume {}",
                    data.len(),
                    num_elements(shape)
                ),
            });
        }
        Ok(Array {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Creates an array with entries drawn from `N(0, std^2)` using `rng`.
    #[must_use]
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let n = num_elements(shape);
        let mut data = Vec::with_capacity(n);
        // Box-Muller transform: two uniforms -> two independent normals.
        let mut i = 0;
        while i < n {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            i += 1;
            if i < n {
                data.push(r * theta.sin() * std);
                i += 1;
            }
        }
        Array {
            shape: shape.to_vec(),
            data,
        }
    }

    /// Creates an array with entries drawn uniformly from `[lo, hi)`.
    #[must_use]
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = num_elements(shape);
        let data = (0..n).map(|_| rng.gen_range(lo..hi)).collect();
        Array {
            shape: shape.to_vec(),
            data,
        }
    }

    /// The shape of the array.
    #[must_use]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// The number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the array holds zero elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the flat row-major data.
    #[must_use]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the array, returning the flat data vector.
    #[must_use]
    pub fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.data)
    }

    /// Returns the single element of a scalar or 1-element array.
    ///
    /// # Panics
    ///
    /// Panics if the array has more than one element.
    #[must_use]
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on array with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Reinterprets the array with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidShape`] when volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Array> {
        if num_elements(shape) != self.data.len() {
            return Err(TensorError::InvalidShape {
                shape: shape.to_vec(),
                reason: format!("cannot reshape {} elements", self.data.len()),
            });
        }
        let mut data = crate::recycle::take(self.data.len());
        data.copy_from_slice(&self.data);
        Ok(Array {
            shape: shape.to_vec(),
            data,
        })
    }

    /// Applies `f` elementwise, producing a new array. Large arrays are
    /// chunked over the worker pool (bitwise identical for any count).
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Array {
        Array {
            shape: self.shape.clone(),
            data: kernel::par_map_vec(&self.data, f),
        }
    }

    /// Applies `f` elementwise in place, chunked over the worker pool.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        kernel::par_map_inplace(&mut self.data, f);
    }

    /// Fused same-shape binary map `out[i] = f(self[i], other[i])`: one
    /// pass, one allocation, pool-chunked. The backend for the elementwise
    /// gradient paths (`g * f'(x)` in a single traversal).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ (internal hot path; shapes are guaranteed
    /// by the callers).
    #[must_use]
    pub fn zip_same(&self, other: &Array, f: impl Fn(f32, f32) -> f32 + Sync) -> Array {
        assert_eq!(self.shape, other.shape, "zip_same requires equal shapes");
        Array {
            shape: self.shape.clone(),
            data: kernel::par_zip_vec(&self.data, &other.data, f),
        }
    }

    /// Elementwise binary operation with NumPy-style broadcasting.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes do not broadcast.
    pub fn zip_broadcast(
        &self,
        other: &Array,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32 + Sync,
    ) -> Result<Array> {
        // Fast path: identical shapes (pool-chunked for large arrays).
        if self.shape == other.shape {
            return Ok(self.zip_same(other, f));
        }
        // Fast path: rhs scalar.
        if other.data.len() == 1 {
            let b = other.data[0];
            return Ok(self.map(|a| f(a, b)));
        }
        // Fast path: lhs scalar.
        if self.data.len() == 1 {
            let a = self.data[0];
            return Ok(other.map(|b| f(a, b)));
        }
        // Fast path: rank-1 rhs broadcast along the last axis (the bias-add
        // pattern `[m, n] + [n]`), avoiding the odometer loop below.
        if other.shape.len() == 1
            && other.shape[0] > 0
            && self.shape.last() == Some(&other.shape[0])
        {
            let n = other.shape[0];
            let mut data = crate::recycle::take(self.data.len());
            for (drow, row) in data.chunks_exact_mut(n).zip(self.data.chunks_exact(n)) {
                for ((d, &a), &b) in drow.iter_mut().zip(row).zip(&other.data) {
                    *d = f(a, b);
                }
            }
            return Ok(Array {
                shape: self.shape.clone(),
                data,
            });
        }
        let out_shape = broadcast_shapes(&self.shape, &other.shape, op)?;
        let rank = out_shape.len();
        let out_strides = row_major_strides(&out_shape);
        // Every flat index 0..n is written exactly once by the odometer loop.
        let mut out = Array::uninit(&out_shape);
        // Precompute per-axis effective strides (0 when broadcast).
        let lhs_strides = broadcast_strides(&self.shape, rank);
        let rhs_strides = broadcast_strides(&other.shape, rank);
        let n = out.data.len();
        let mut idx = vec![0usize; rank];
        let mut li = 0usize;
        let mut ri = 0usize;
        for flat in 0..n {
            out.data[flat] = f(self.data[li], other.data[ri]);
            // Increment the multi-index (odometer) and the two offsets.
            for ax in (0..rank).rev() {
                idx[ax] += 1;
                li += lhs_strides[ax];
                ri += rhs_strides[ax];
                if idx[ax] < out_shape[ax] {
                    break;
                }
                idx[ax] = 0;
                li -= lhs_strides[ax] * out_shape[ax];
                ri -= rhs_strides[ax] * out_shape[ax];
            }
        }
        let _ = out_strides;
        Ok(out)
    }

    /// Elementwise addition with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes do not broadcast.
    pub fn add(&self, other: &Array) -> Result<Array> {
        self.zip_broadcast(other, "add", |a, b| a + b)
    }

    /// Elementwise subtraction with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes do not broadcast.
    pub fn sub(&self, other: &Array) -> Result<Array> {
        self.zip_broadcast(other, "sub", |a, b| a - b)
    }

    /// Elementwise multiplication with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes do not broadcast.
    pub fn mul(&self, other: &Array) -> Result<Array> {
        self.zip_broadcast(other, "mul", |a, b| a * b)
    }

    /// Elementwise division with broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when shapes do not broadcast.
    pub fn div(&self, other: &Array) -> Result<Array> {
        self.zip_broadcast(other, "div", |a, b| a / b)
    }

    /// Adds `other * scale` into `self` elementwise (shapes must match).
    ///
    /// # Panics
    ///
    /// Panics if shapes differ; this is an internal hot path used by the
    /// autodiff engine where shapes are guaranteed equal.
    pub fn add_scaled_assign(&mut self, other: &Array, scale: f32) {
        assert_eq!(
            self.shape, other.shape,
            "add_scaled_assign requires equal shapes"
        );
        kernel::par_update2(&mut self.data, &other.data, |a, b| *a += b * scale);
    }

    /// Sums all elements with the kernel layer's fixed-association
    /// parallel reduction (bitwise identical for any thread count).
    #[must_use]
    pub fn sum(&self) -> f32 {
        kernel::par_sum(&self.data)
    }

    /// Mean over all elements (0 for empty arrays).
    #[must_use]
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element. Returns `f32::NEG_INFINITY` for empty arrays.
    #[must_use]
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element. Returns `f32::INFINITY` for empty arrays.
    #[must_use]
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence). `None` when empty.
    #[must_use]
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Sums over `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns an error when `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Result<Array> {
        crate::shape::check_axis(axis, self.shape.len())?;
        let mut out_shape = self.shape.clone();
        let axis_len = out_shape.remove(axis);
        let inner: usize = self.shape[axis + 1..].iter().product();
        let outer: usize = self.shape[..axis].iter().product();
        let mut out = Array::zeros(&out_shape);
        for o in 0..outer {
            for a in 0..axis_len {
                let src_base = (o * axis_len + a) * inner;
                let dst_base = o * inner;
                for i in 0..inner {
                    out.data[dst_base + i] += self.data[src_base + i];
                }
            }
        }
        Ok(out)
    }

    /// Owned [`Array::reduce_to`]: when the shape already matches `target`
    /// the array is returned as-is, with no copy — the backward closures
    /// pass their (moved) output gradient through here, so the common
    /// non-broadcast case is free.
    ///
    /// # Errors
    ///
    /// Returns an error when `target` is not broadcast-compatible with the
    /// current shape.
    pub fn reduce_to_owned(self, target: &[usize]) -> Result<Array> {
        if self.shape == target {
            return Ok(self);
        }
        self.reduce_to(target)
    }

    /// Reduces this array (by summation) to `target` shape, inverting a
    /// broadcast: axes that were expanded are summed back down.
    ///
    /// Used by the autodiff engine to reduce output gradients back to the
    /// operand shapes of broadcast binary ops.
    ///
    /// # Errors
    ///
    /// Returns an error when `target` is not broadcast-compatible with the
    /// current shape.
    pub fn reduce_to(&self, target: &[usize]) -> Result<Array> {
        if self.shape == target {
            return Ok(self.clone());
        }
        // Validate compatibility.
        let bshape = broadcast_shapes(&self.shape, target, "reduce_to")?;
        if bshape != self.shape {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: target.to_vec(),
                op: "reduce_to",
            });
        }
        let rank = self.shape.len();
        let mut cur = self.clone();
        // Sum leading extra axes.
        let extra = rank - target.len();
        for _ in 0..extra {
            cur = cur.sum_axis(0)?;
        }
        // Sum axes where target dim is 1 but current dim is larger.
        #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
        for ax in 0..target.len() {
            if target[ax] == 1 && cur.shape[ax] != 1 {
                let mut summed = cur.sum_axis(ax)?;
                // Re-insert the singleton axis.
                let mut s = summed.shape.clone();
                s.insert(ax, 1);
                summed.shape = s;
                cur = summed;
            }
        }
        debug_assert_eq!(cur.shape, target);
        Ok(cur)
    }

    /// Validates rank-2 operands whose dimension `self.shape[ai]` must
    /// equal `other.shape[bi]` (the contraction axes of a GEMM variant).
    fn gemm_dims(&self, other: &Array, ai: usize, bi: usize, op: &'static str) -> Result<()> {
        if self.shape.len() != 2 || other.shape.len() != 2 {
            return Err(TensorError::InvalidShape {
                shape: if self.shape.len() != 2 {
                    self.shape.clone()
                } else {
                    other.shape.clone()
                },
                reason: format!("{op} requires rank-2 operands"),
            });
        }
        if self.shape[ai] != other.shape[bi] {
            return Err(TensorError::ShapeMismatch {
                lhs: self.shape.clone(),
                rhs: other.shape.clone(),
                op,
            });
        }
        Ok(())
    }

    /// 2-D matrix multiplication: `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Runs on the blocked, register-tiled kernel layer ([`crate::kernel`]);
    /// large products are threaded over output row blocks with bitwise
    /// thread-count-independent results.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching inner
    /// dimensions.
    pub fn matmul(&self, other: &Array) -> Result<Array> {
        self.gemm_dims(other, 1, 0, "matmul")?;
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        // `gemm_tiled` overwrites every output element (and zero-fills when
        // k == 0), so an uninitialized pooled buffer is safe here.
        let mut out = Array::uninit(&[m, n]);
        crate::kernel::matmul_into(&mut out.data, &self.data, &other.data, m, k, n);
        Ok(out)
    }

    /// Reference scalar matrix multiplication (the unblocked i-k-j loop),
    /// kept as the oracle the optimized [`Array::matmul`] path is tested
    /// against.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching inner
    /// dimensions.
    pub fn matmul_naive(&self, other: &Array) -> Result<Array> {
        self.gemm_dims(other, 1, 0, "matmul")?;
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let data = crate::kernel::matmul_naive(&self.data, &other.data, m, k, n);
        Ok(Array {
            shape: vec![m, n],
            data,
        })
    }

    /// Transpose-free `selfᵀ · other`: `[k, m]ᵀ x [k, n] -> [m, n]`.
    ///
    /// Equivalent to `self.transpose2d()?.matmul(other)` without
    /// materializing the transpose; used by backward passes.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// leading dimensions.
    pub fn matmul_at_b(&self, other: &Array) -> Result<Array> {
        self.gemm_dims(other, 0, 0, "matmul_at_b")?;
        let (k, m) = (self.shape[0], self.shape[1]);
        let n = other.shape[1];
        let mut out = Array::uninit(&[m, n]);
        crate::kernel::matmul_at_b_into(&mut out.data, &self.data, &other.data, k, m, n);
        Ok(out)
    }

    /// Transpose-free `self · otherᵀ`: `[m, k] x [n, k]ᵀ -> [m, n]`.
    ///
    /// Equivalent to `self.matmul(&other.transpose2d()?)` without
    /// materializing the transpose; used by backward passes.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching
    /// trailing dimensions.
    pub fn matmul_a_bt(&self, other: &Array) -> Result<Array> {
        self.gemm_dims(other, 1, 1, "matmul_a_bt")?;
        let (m, k) = (self.shape[0], self.shape[1]);
        let n = other.shape[0];
        let mut out = Array::uninit(&[m, n]);
        crate::kernel::matmul_a_bt_into(&mut out.data, &self.data, &other.data, m, k, n);
        Ok(out)
    }

    /// Transpose of a rank-2 array.
    ///
    /// # Errors
    ///
    /// Returns an error when the array is not rank-2.
    pub fn transpose2d(&self) -> Result<Array> {
        if self.shape.len() != 2 {
            return Err(TensorError::InvalidShape {
                shape: self.shape.clone(),
                reason: "transpose2d requires rank-2".into(),
            });
        }
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = Array::uninit(&[n, m]);
        for i in 0..m {
            for j in 0..n {
                out.data[j * m + i] = self.data[i * n + j];
            }
        }
        Ok(out)
    }
}

impl std::fmt::Display for Array {
    /// Compact human-readable rendering: shape header plus up to eight
    /// leading elements (`Array[2, 3] [1.0, 2.0, ...]`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Array{:?} [", self.shape)?;
        const LIMIT: usize = 8;
        for (i, v) in self.data.iter().take(LIMIT).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        if self.data.len() > LIMIT {
            write!(f, ", ...")?;
        }
        write!(f, "]")
    }
}

/// Per-output-axis element strides for an operand of `shape` participating
/// in a broadcast to rank `rank`; broadcast axes get stride 0.
fn broadcast_strides(shape: &[usize], rank: usize) -> Vec<usize> {
    let own = row_major_strides(shape);
    let mut out = vec![0usize; rank];
    for k in 0..rank {
        // k counts axes from the right.
        let d = dim_right(shape, k);
        if d != 1 {
            out[rank - 1 - k] = own[shape.len() - 1 - k];
        }
    }
    out
}

/// Parameters of a 2-D convolution lowering.
///
/// Used by [`im2col`]/[`col2im`] and by the convolution ops in the autodiff
/// layer. All fields are public plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeometry {
    /// Input channel count.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Output height for this geometry.
    #[must_use]
    pub fn out_h(&self) -> usize {
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width for this geometry.
    #[must_use]
    pub fn out_w(&self) -> usize {
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }
}

/// Lowers one image `[c, h, w]` (flat slice) into a column matrix
/// `[c*k*k, out_h*out_w]` for GEMM-based convolution.
///
/// `input` must have length `c * h * w` per `geom`.
#[must_use]
pub fn im2col(input: &[f32], geom: &Conv2dGeometry) -> Array {
    let (c, k) = (geom.in_channels, geom.kernel);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let mut out = Array::zeros(&[c * k * k, oh * ow]);
    im2col_into(&mut out.data, input, geom);
    out
}

/// Allocation-free [`im2col`]: lowers one image into a caller-provided
/// column buffer of length `c*k*k * out_h*out_w` (overwritten). Reusing one
/// buffer across a batch is what keeps the threaded convolution paths free
/// of per-image allocations.
///
/// # Panics
///
/// Panics if `out` or `input` have the wrong length for `geom`.
pub fn im2col_into(out: &mut [f32], input: &[f32], geom: &Conv2dGeometry) {
    let (c, k) = (geom.in_channels, geom.kernel);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = c * k * k;
    let cols = oh * ow;
    assert_eq!(out.len(), rows * cols, "im2col_into: bad out length");
    assert_eq!(
        input.len(),
        c * geom.in_h * geom.in_w,
        "im2col_into: bad input length"
    );
    let (ih, iw) = (geom.in_h, geom.in_w);
    let (pad, stride) = (geom.padding, geom.stride);
    for row in 0..rows {
        let ch = row / (k * k);
        let ky = (row / k) % k;
        let kx = row % k;
        // Valid output columns/rows for this kernel tap; everything outside
        // samples padding. Each destination element is written exactly once
        // (zeros for the padded region), so no upfront fill is needed.
        let (oy0, oy1) = crate::kernel::valid_out_range(ky, pad, stride, ih, oh);
        let (ox0, ox1) = crate::kernel::valid_out_range(kx, pad, stride, iw, ow);
        let sx0 = ox0 * stride + kx - pad;
        let src_c = &input[ch * ih * iw..(ch + 1) * ih * iw];
        let dst = &mut out[row * cols..(row + 1) * cols];
        dst[..oy0 * ow].fill(0.0);
        dst[oy1 * ow..].fill(0.0);
        for oy in oy0..oy1 {
            let sy = oy * stride + ky - pad;
            let src_row = &src_c[sy * iw..(sy + 1) * iw];
            let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
            dst_row[..ox0].fill(0.0);
            dst_row[ox1..].fill(0.0);
            if stride == 1 {
                dst_row[ox0..ox1].copy_from_slice(&src_row[sx0..sx0 + (ox1 - ox0)]);
            } else {
                for (i, d) in dst_row[ox0..ox1].iter_mut().enumerate() {
                    *d = src_row[sx0 + i * stride];
                }
            }
        }
    }
}

/// Inverse of [`im2col`]: scatters a column-matrix gradient
/// `[c*k*k, out_h*out_w]` back onto an image gradient `[c, h, w]`
/// (accumulating overlapping contributions) written into `out`.
///
/// # Panics
///
/// Panics if `cols` or `out` have inconsistent lengths for `geom`.
pub fn col2im(cols: &Array, geom: &Conv2dGeometry, out: &mut [f32]) {
    let (c, k) = (geom.in_channels, geom.kernel);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    assert_eq!(
        cols.shape(),
        &[c * k * k, oh * ow],
        "col2im: bad cols shape"
    );
    col2im_into(cols.data(), geom, out);
}

/// Slice-based [`col2im`]: scatters a flat column-matrix gradient
/// (`c*k*k * out_h*out_w` elements) back onto an image gradient,
/// accumulating into `out`. Lets the threaded convolution backward reuse
/// one `dcols` buffer per worker instead of allocating per image.
///
/// # Panics
///
/// Panics if `cols` or `out` have inconsistent lengths for `geom`.
pub fn col2im_into(cols: &[f32], geom: &Conv2dGeometry, out: &mut [f32]) {
    let (c, k) = (geom.in_channels, geom.kernel);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = c * k * k;
    assert_eq!(cols.len(), rows * oh * ow, "col2im_into: bad cols length");
    assert_eq!(
        out.len(),
        c * geom.in_h * geom.in_w,
        "col2im_into: bad out length"
    );
    let (ih, iw) = (geom.in_h, geom.in_w);
    let (pad, stride) = (geom.padding, geom.stride);
    for row in 0..rows {
        let ch = row / (k * k);
        let ky = (row / k) % k;
        let kx = row % k;
        // Contributions outside the valid ranges land in padding and are
        // dropped; inside them the scatter is accumulated in the same
        // ascending (oy, ox) order as the branchy loop it replaces, so
        // results stay bitwise identical.
        let (oy0, oy1) = crate::kernel::valid_out_range(ky, pad, stride, ih, oh);
        let (ox0, ox1) = crate::kernel::valid_out_range(kx, pad, stride, iw, ow);
        let sx0 = ox0 * stride + kx - pad;
        let src = &cols[row * oh * ow..(row + 1) * oh * ow];
        let dst_c = &mut out[ch * ih * iw..(ch + 1) * ih * iw];
        for oy in oy0..oy1 {
            let sy = oy * stride + ky - pad;
            let src_row = &src[oy * ow..(oy + 1) * ow];
            let dst_row = &mut dst_c[sy * iw..(sy + 1) * iw];
            if stride == 1 {
                for (d, s) in dst_row[sx0..sx0 + (ox1 - ox0)]
                    .iter_mut()
                    .zip(&src_row[ox0..ox1])
                {
                    *d += s;
                }
            } else {
                for (i, s) in src_row[ox0..ox1].iter().enumerate() {
                    dst_row[sx0 + i * stride] += s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn display_truncates_long_arrays() {
        let a = Array::from_vec((0..3).map(|v| v as f32).collect(), &[3]).unwrap();
        assert_eq!(a.to_string(), "Array[3] [0, 1, 2]");
        let long = Array::zeros(&[20]);
        let s = long.to_string();
        assert!(s.contains("..."));
        assert!(s.starts_with("Array[20]"));
    }

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Array::zeros(&[2, 2]).data(), &[0.0; 4]);
        assert_eq!(Array::ones(&[3]).data(), &[1.0; 3]);
        assert_eq!(Array::full(&[2], 7.5).data(), &[7.5, 7.5]);
    }

    #[test]
    fn scalar_roundtrip() {
        let s = Array::scalar(3.25);
        assert_eq!(s.shape(), &[] as &[usize]);
        assert_eq!(s.item(), 3.25);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Array::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Array::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn randn_statistics() {
        let mut rng = StdRng::seed_from_u64(42);
        let a = Array::randn(&[10_000], 1.0, &mut rng);
        let mean = a.mean();
        let var = a
            .data()
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rand_uniform_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Array::rand_uniform(&[1000], -2.0, 3.0, &mut rng);
        assert!(a.min() >= -2.0 && a.max() < 3.0);
    }

    #[test]
    fn add_same_shape() {
        let a = Array::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Array::from_vec(vec![10.0, 20.0], &[2]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[11.0, 22.0]);
    }

    #[test]
    fn add_broadcast_bias() {
        // [2,3] + [3]
        let a = Array::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let b = Array::from_vec(vec![10.0, 20.0, 30.0], &[3]).unwrap();
        let c = a.add(&b).unwrap();
        assert_eq!(c.shape(), &[2, 3]);
        assert_eq!(c.data(), &[10.0, 21.0, 32.0, 13.0, 24.0, 35.0]);
    }

    #[test]
    fn mul_broadcast_channel_scale() {
        // [2,2,2] * [2,1,1] scales per leading channel.
        let a = Array::ones(&[2, 2, 2]);
        let s = Array::from_vec(vec![2.0, 3.0], &[2, 1, 1]).unwrap();
        let c = a.mul(&s).unwrap();
        assert_eq!(c.data(), &[2.0, 2.0, 2.0, 2.0, 3.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn broadcast_mismatch() {
        let a = Array::ones(&[2, 3]);
        let b = Array::ones(&[4]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn sum_axis_middle() {
        let a = Array::from_vec((0..24).map(|v| v as f32).collect(), &[2, 3, 4]).unwrap();
        let s = a.sum_axis(1).unwrap();
        assert_eq!(s.shape(), &[2, 4]);
        // element [0,0] = a[0,0,0]+a[0,1,0]+a[0,2,0] = 0+4+8
        assert_eq!(s.data()[0], 12.0);
        assert_eq!(s.sum(), a.sum());
    }

    #[test]
    fn reduce_to_inverts_broadcast() {
        let g = Array::ones(&[2, 3]);
        let r = g.reduce_to(&[3]).unwrap();
        assert_eq!(r.shape(), &[3]);
        assert_eq!(r.data(), &[2.0, 2.0, 2.0]);
        let r2 = g.reduce_to(&[]).unwrap();
        assert_eq!(r2.item(), 6.0);
        let r3 = g.reduce_to(&[2, 1]).unwrap();
        assert_eq!(r3.shape(), &[2, 1]);
        assert_eq!(r3.data(), &[3.0, 3.0]);
    }

    #[test]
    fn matmul_known_values() {
        let a = Array::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let b = Array::from_vec(vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Array::ones(&[2, 3]);
        let b = Array::ones(&[2, 3]);
        assert!(a.matmul(&b).is_err());
        let v = Array::ones(&[3]);
        assert!(a.matmul(&v).is_err());
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Array::from_vec((0..6).map(|v| v as f32).collect(), &[2, 3]).unwrap();
        let t = a.transpose2d().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.transpose2d().unwrap(), a);
    }

    #[test]
    fn argmax_first_max() {
        let a = Array::from_vec(vec![1.0, 5.0, 5.0, 2.0], &[4]).unwrap();
        assert_eq!(a.argmax(), Some(1));
        assert_eq!(Array::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn im2col_identity_kernel1() {
        // k=1, s=1, p=0: im2col is the identity mapping [c, h*w].
        let geom = Conv2dGeometry {
            in_channels: 2,
            in_h: 2,
            in_w: 2,
            kernel: 1,
            stride: 1,
            padding: 0,
        };
        let input: Vec<f32> = (0..8).map(|v| v as f32).collect();
        let cols = im2col(&input, &geom);
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), input.as_slice());
    }

    #[test]
    fn im2col_padding_zeroes_border() {
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 2,
            in_w: 2,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = vec![1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&input, &geom);
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap (row 4 = ky=1,kx=1) equals the input itself.
        assert_eq!(&cols.data()[4 * 4..5 * 4], input.as_slice());
        // Top-left tap at output (0,0) looks at input (-1,-1) -> 0.
        assert_eq!(cols.data()[0], 0.0);
    }

    #[test]
    fn conv_geometry_output_dims() {
        let g = Conv2dGeometry {
            in_channels: 3,
            in_h: 32,
            in_w: 32,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        assert_eq!(g.out_h(), 16);
        assert_eq!(g.out_w(), 16);
    }

    #[test]
    fn col2im_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> — the defining adjoint identity.
        let geom = Conv2dGeometry {
            in_channels: 2,
            in_h: 4,
            in_w: 4,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let mut rng = StdRng::seed_from_u64(7);
        let x = Array::randn(&[2 * 4 * 4], 1.0, &mut rng);
        let cols = im2col(x.data(), &geom);
        let y = Array::randn(cols.shape(), 1.0, &mut rng);
        let lhs: f32 = cols.data().iter().zip(y.data()).map(|(&a, &b)| a * b).sum();
        let mut xgrad = vec![0.0; x.len()];
        col2im(&y, &geom, &mut xgrad);
        let rhs: f32 = x.data().iter().zip(&xgrad).map(|(&a, &b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3, "lhs {lhs} rhs {rhs}");
    }
}
