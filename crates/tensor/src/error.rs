//! Error types for tensor operations.

use std::fmt;

/// Errors produced by tensor and array operations.
///
/// All fallible operations in this crate return [`TensorError`] rather than
/// panicking, so callers can surface shape problems with context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match (exactly or via broadcasting)
    /// did not.
    ShapeMismatch {
        /// Left-hand operand shape.
        lhs: Vec<usize>,
        /// Right-hand operand shape.
        rhs: Vec<usize>,
        /// The operation that failed.
        op: &'static str,
    },
    /// A shape was structurally invalid for the requested operation
    /// (wrong rank, zero dimension where disallowed, etc.).
    InvalidShape {
        /// The offending shape.
        shape: Vec<usize>,
        /// Human-readable description of the requirement that was violated.
        reason: String,
    },
    /// An argument outside of shapes was invalid (e.g. an axis out of range).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { lhs, rhs, op } => {
                write!(f, "shape mismatch in `{op}`: lhs {lhs:?} vs rhs {rhs:?}")
            }
            TensorError::InvalidShape { shape, reason } => {
                write!(f, "invalid shape {shape:?}: {reason}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

/// Convenience alias for results with [`TensorError`].
pub type Result<T> = std::result::Result<T, TensorError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = TensorError::ShapeMismatch {
            lhs: vec![2, 3],
            rhs: vec![4],
            op: "add",
        };
        let s = e.to_string();
        assert!(s.contains("add"));
        assert!(s.contains("[2, 3]"));
        assert!(s.contains("[4]"));
    }

    #[test]
    fn display_invalid_shape() {
        let e = TensorError::InvalidShape {
            shape: vec![0],
            reason: "zero dim".into(),
        };
        assert!(e.to_string().contains("zero dim"));
    }

    #[test]
    fn display_invalid_argument() {
        let e = TensorError::InvalidArgument("axis 7 out of range".into());
        assert!(e.to_string().contains("axis 7"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&TensorError::InvalidArgument("x".into()));
    }
}
