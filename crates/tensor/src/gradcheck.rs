//! Finite-difference gradient checking used by the test suites of every
//! crate that builds differentiable expressions on `edd-tensor`.

use crate::tensor::Tensor;

/// Result of a gradient check: the worst relative error over all checked
/// coordinates, plus where it occurred.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Maximum relative error encountered.
    pub max_rel_error: f32,
    /// Parameter index (into the slice passed to [`check_gradients`]) of the
    /// worst coordinate.
    pub worst_param: usize,
    /// Flat element index of the worst coordinate.
    pub worst_index: usize,
}

/// Verifies analytic gradients of `f` (a scalar-valued function of `params`)
/// against central finite differences.
///
/// For efficiency only every `stride`-th coordinate of each parameter is
/// perturbed (use `stride = 1` to check everything).
///
/// # Panics
///
/// Panics if `f` returns a non-scalar tensor.
pub fn check_gradients(
    params: &[Tensor],
    f: impl Fn() -> Tensor,
    eps: f32,
    stride: usize,
) -> GradCheckReport {
    let stride = stride.max(1);
    for p in params {
        p.zero_grad();
    }
    let loss = f();
    assert_eq!(
        loss.value().len(),
        1,
        "gradient check requires a scalar loss"
    );
    loss.backward();
    let analytic: Vec<Option<crate::array::Array>> = params.iter().map(Tensor::grad).collect();

    let mut report = GradCheckReport {
        max_rel_error: 0.0,
        worst_param: 0,
        worst_index: 0,
    };
    for (pi, p) in params.iter().enumerate() {
        let n = p.value().len();
        for idx in (0..n).step_by(stride) {
            let orig = p.value().data()[idx];
            p.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f().item();
            p.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f().item();
            p.update_value(|a| a.data_mut()[idx] = orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let ana = analytic[pi].as_ref().map_or(0.0, |g| g.data()[idx]);
            let rel = (numeric - ana).abs() / numeric.abs().max(ana.abs()).max(1.0);
            if rel > report.max_rel_error {
                report = GradCheckReport {
                    max_rel_error: rel,
                    worst_param: pi,
                    worst_index: idx,
                };
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn passes_for_correct_gradient() {
        let mut rng = StdRng::seed_from_u64(21);
        let x = Tensor::param(Array::randn(&[6], 1.0, &mut rng));
        let xr = x.clone();
        let report = check_gradients(&[x], move || xr.square().sum(), 1e-2, 1);
        assert!(report.max_rel_error < 1e-2, "{report:?}");
    }

    #[test]
    fn composite_expression_checks() {
        let mut rng = StdRng::seed_from_u64(22);
        let a = Tensor::param(Array::randn(&[3, 4], 0.5, &mut rng));
        let b = Tensor::param(Array::randn(&[4, 2], 0.5, &mut rng));
        let (ar, br) = (a.clone(), b.clone());
        let report = check_gradients(
            &[a, b],
            move || ar.matmul(&br).unwrap().tanh().square().sum(),
            1e-2,
            1,
        );
        assert!(report.max_rel_error < 2e-2, "{report:?}");
    }

    #[test]
    fn detects_blocked_gradient() {
        // detach() blocks gradient flow: analytic grad is None (0) while the
        // numeric gradient is clearly nonzero.
        let x = Tensor::param(Array::scalar(2.0));
        let xr = x.clone();
        let report = check_gradients(&[x], move || xr.detach().square().sum(), 1e-2, 1);
        assert!(report.max_rel_error > 0.5, "{report:?}");
    }
}
