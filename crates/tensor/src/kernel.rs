//! Cache-blocked, register-tiled f32 GEMM kernels running on the
//! persistent worker pool, plus the batch-partitioning helpers the
//! convolution ops build on.
//!
//! # Blocking scheme
//!
//! The blocked GEMM streams panels of the right-hand matrix through an
//! `MR = 4`-row register tile: each pass over a `B` row updates four output
//! rows at once, quartering `B` traffic versus the scalar loop, and the
//! branch-free inner loop over columns auto-vectorizes. Columns are
//! processed in blocks of `NC` so the active output tile and `B` panel stay
//! cache-resident for wide matrices.
//!
//! Two variants serve the backward passes:
//!
//! * [`matmul_at_b_into`] — `C = Aᵀ·B` with `A` stored `[k, m]`
//!   (weight/`dB`-style gradients), read transposed in place;
//! * [`matmul_a_bt_into`] — `C = A·Bᵀ` with `B` stored `[n, k]`
//!   (input/`dA`-style gradients): `Bᵀ` is packed once into the scratch
//!   arena with a blocked transpose, then fed to the row-tiled GEMM — far
//!   better ILP than per-element dot products.
//!
//! # Threading model
//!
//! Large GEMMs split the *output rows* into contiguous blocks, one
//! [`pool`] task per block. Convolutions parallelize over the batch
//! dimension via [`par_batch2_with`]. In both cases every output element
//! is produced by exactly one task with a thread-count-independent
//! operation order, so results are **bitwise identical** for any
//! `EDD_NUM_THREADS` setting — see [`num_threads`].
//!
//! The scalar triple loop is kept as [`matmul_naive`], the reference
//! oracle the property-based suites compare the blocked kernels against.

pub mod pack;
pub mod pool;
pub mod select;

use pool::SendPtr;
use std::ops::Range;

/// Rows per register tile in the blocked kernels.
pub const MR: usize = 4;

/// Columns per register tile on the scalar (baseline-ISA) path: each of
/// the `MR` rows keeps an `NR`-lane accumulator live across the whole `k`
/// loop, so every output element is stored exactly once. The runtime AVX2
/// path widens this to 16 lanes — see `gemm_tiled` for why that cannot
/// change results.
pub const NR: usize = 8;

/// Below this many multiply-adds a GEMM runs single-threaded; spawn
/// overhead dominates for smaller problems.
const PAR_MIN_MULADDS: usize = 1 << 18;

/// Below this many elements an elementwise pass runs on the calling
/// thread; pool dispatch costs more than the traversal.
pub const PAR_MIN_ELEMS: usize = 1 << 15;

/// Fixed reduction chunk length. Total sums are computed as an eight-lane
/// [`sum8`] per chunk plus a final [`sum8`] over the chunk partials; the
/// chunk length never depends on the thread count, so the result is
/// bitwise identical no matter how chunks are distributed over workers.
const REDUCE_CHUNK: usize = 1 << 15;

pub use pool::{num_threads, set_num_threads};

/// Output coordinates `o` (over `0..out_limit`) whose sampled input index
/// `o*stride + kc - pad` lands inside `[0, in_limit)`, as a half-open
/// range. Shared by the convolution lowerings (`im2col`/`col2im`) and the
/// depthwise kernels so their inner loops run branch-free.
#[must_use]
pub fn valid_out_range(
    kc: usize,
    pad: usize,
    stride: usize,
    in_limit: usize,
    out_limit: usize,
) -> (usize, usize) {
    let lo = if kc >= pad {
        0
    } else {
        (pad - kc).div_ceil(stride)
    };
    if in_limit + pad <= kc {
        return (0, 0);
    }
    let hi = ((in_limit - 1 + pad - kc) / stride + 1).min(out_limit);
    (lo.min(hi), hi)
}

/// Splits `0..n` into at most `parts` contiguous, non-empty, balanced
/// ranges (earlier ranges get the remainder).
#[must_use]
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

// ---------------------------------------------------------------------------
// Reference oracle
// ---------------------------------------------------------------------------

/// Scalar reference GEMM: `C[m,n] = A[m,k] · B[k,n]`, freshly allocated.
///
/// This is the unblocked, single-threaded i-k-j loop the optimized kernels
/// are validated against. Per output element it accumulates in ascending
/// `k` order — the same association the blocked kernel uses.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
#[must_use]
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_naive: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_naive: bad rhs length");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Blocked kernels (single-threaded building blocks)
// ---------------------------------------------------------------------------

/// `A`-element accessor for a 4-row tile: returns the scalars multiplying
/// `B` row `kk` for output rows `i..i+4`. The two GEMM orientations differ
/// only in this indexing.
pub(crate) trait LhsTile: Copy + Sync {
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR];
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32;
}

/// `A` stored row-major `[m, k]` (plain GEMM).
#[derive(Clone, Copy)]
pub(crate) struct RowMajorLhs {
    pub(crate) k: usize,
}

impl LhsTile for RowMajorLhs {
    #[inline(always)]
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR] {
        [
            a[i * self.k + kk],
            a[(i + 1) * self.k + kk],
            a[(i + 2) * self.k + kk],
            a[(i + 3) * self.k + kk],
        ]
    }

    #[inline(always)]
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32 {
        a[i * self.k + kk]
    }
}

/// `A` stored `[k, m]`, used as `Aᵀ`: output rows map to *columns* of `a`,
/// contiguous within each `kk` row. `i0` offsets into the full matrix when
/// a thread owns a row block.
#[derive(Clone, Copy)]
pub(crate) struct TransposedLhs {
    pub(crate) m: usize,
    pub(crate) i0: usize,
}

impl LhsTile for TransposedLhs {
    #[inline(always)]
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR] {
        let base = kk * self.m + self.i0 + i;
        [a[base], a[base + 1], a[base + 2], a[base + 3]]
    }

    #[inline(always)]
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32 {
        a[kk * self.m + self.i0 + i]
    }
}

/// Register-tiled `out[mb, n] = lhs-tile · b[k, n]`, single-threaded,
/// overwritten.
///
/// The `MR x NRV` microkernel keeps an accumulator tile live across the
/// entire `k` loop and stores each output element exactly once, instead of
/// re-walking the output rows per `k` step. Every element — tile, row-tail,
/// or column-tail — accumulates its products in ascending `kk` order through
/// a single accumulator chain, so results are bitwise independent of how
/// rows are partitioned — and of `NRV`: widening the tile only changes how
/// many *independent* chains run side by side, never the order within one.
/// The scalar path uses `NRV = NR` (8: two xmm per row fits the SSE2
/// register file); the AVX2 path uses 16 (two ymm per row → eight add
/// chains, enough to hide the 4-cycle `vaddps` latency).
#[inline(always)]
fn gemm_tiled<L: LhsTile, const NRV: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    let mut i = 0;
    while i + MR <= mb {
        let mut j = 0;
        while j + NRV <= n {
            let mut acc = [[0.0f32; NRV]; MR];
            for kk in 0..k {
                let bv: &[f32; NRV] = b[kk * n + j..kk * n + j + NRV]
                    .try_into()
                    .expect("NRV chunk");
                let av = lhs.scalars(a, i, kk);
                for (accr, &ar) in acc.iter_mut().zip(&av) {
                    for (l, &bl) in accr.iter_mut().zip(bv) {
                        *l += ar * bl;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NRV].copy_from_slice(accr);
            }
            j += NRV;
        }
        // Column tail: scalar accumulators, still ascending-kk.
        while j < n {
            let mut acc = [0.0f32; MR];
            for kk in 0..k {
                let bv = b[kk * n + j];
                let av = lhs.scalars(a, i, kk);
                for (l, &ar) in acc.iter_mut().zip(&av) {
                    *l += ar * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
            j += 1;
        }
        i += MR;
    }
    // Row tail: one row at a time with NRV-lane column tiles.
    while i < mb {
        let mut j = 0;
        while j + NRV <= n {
            let mut acc = [0.0f32; NRV];
            for kk in 0..k {
                let bv: &[f32; NRV] = b[kk * n + j..kk * n + j + NRV]
                    .try_into()
                    .expect("NRV chunk");
                let ar = lhs.scalar(a, i, kk);
                for (l, &bl) in acc.iter_mut().zip(bv) {
                    *l += ar * bl;
                }
            }
            out[i * n + j..i * n + j + NRV].copy_from_slice(&acc);
            j += NRV;
        }
        while j < n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += lhs.scalar(a, i, kk) * b[kk * n + j];
            }
            out[i * n + j] = acc;
            j += 1;
        }
        i += 1;
    }
}

// ---------------------------------------------------------------------------
// SIMD dispatch
// ---------------------------------------------------------------------------
//
// The block kernels are plain scalar loops over fixed-width lane groups
// (the 4x8 GEMM tile, the 8-lane reduction accumulators). Compiling the
// same loops under AVX2 maps each lane group onto one ymm register instead
// of two xmm registers — instruction selection changes, the float
// associations do not, so both paths produce bit-identical results and the
// runtime dispatch is a pure performance decision (verified by the
// `avx2_paths_match_scalar_bitwise` test below).

/// True when the CPU supports AVX2 and `EDD_SIMD` is not set to `scalar`
/// (the escape hatch for comparing code paths). Decided once, then served
/// from a relaxed atomic.
#[cfg(target_arch = "x86_64")]
#[inline]
pub(crate) fn use_avx2() -> bool {
    use std::sync::atomic::{AtomicU8, Ordering};
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 undecided, 1 off, 2 on
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let setting = std::env::var("EDD_SIMD").ok();
            if let Some(v) = setting.as_deref() {
                // Recognized values: "scalar" forces the scalar path,
                // "avx2"/"auto"/"" ask for the default dispatch. Anything
                // else behaves like auto but deserves a one-time warning
                // instead of a silent fallback.
                if !matches!(v, "scalar" | "avx2" | "auto" | "") {
                    static WARNED: std::sync::Once = std::sync::Once::new();
                    WARNED.call_once(|| {
                        eprintln!(
                            "warning: unrecognized EDD_SIMD value {v:?} (expected \
                             \"scalar\", \"avx2\", or \"auto\"); using auto dispatch"
                        );
                    });
                }
            }
            let on = setting.as_deref().is_none_or(|v| v != "scalar")
                && std::arch::is_x86_feature_detected!("avx2");
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Human-readable label of the active SIMD dispatch path (`"avx2"` or
/// `"scalar"`), recorded in bench records so trajectories across machines
/// stay comparable.
#[must_use]
pub fn simd_label() -> &'static str {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        return "avx2";
    }
    "scalar"
}

/// Declares a `#[target_feature(enable = "avx2")]` twin of a scalar kernel
/// and a dispatching front that picks it when the CPU allows. The twin just
/// calls the (`inline(always)`) scalar body, so there is exactly one source
/// of truth per kernel.
macro_rules! avx2_dispatch {
    ($(#[$meta:meta])* $vis:vis $name:ident / $scalar:ident / $avx2:ident,
     ($($arg:ident : $ty:ty),* $(,)?) $(-> $ret:ty)?) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) $(-> $ret)? {
            #[cfg(target_arch = "x86_64")]
            if $crate::kernel::use_avx2() {
                // SAFETY: AVX2 support verified at runtime just above.
                return unsafe { $avx2($($arg),*) };
            }
            $scalar($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2")]
        #[allow(clippy::too_many_arguments)]
        unsafe fn $avx2($($arg: $ty),*) $(-> $ret)? {
            $scalar($($arg),*)
        }
    };
}

pub(crate) use avx2_dispatch;

// The GEMM fronts are dispatched by hand (not via `avx2_dispatch!`) because
// the two ISAs want different tile widths: the AVX2 twins instantiate
// `gemm_tiled` with 16-lane column tiles (eight independent add chains per
// 4-row tile — enough to hide `vaddps` latency), while the scalar bodies
// keep `NR = 8` (16-lane tiles under SSE2 would need 16 xmm accumulators
// and spill). Per-element accumulation order is identical either way — see
// the `gemm_tiled` docs — so the paths stay bitwise interchangeable.

/// `out[mb, n] = a_block[mb, k] · b[k, n]`, single-threaded, overwritten.
fn gemm_block(out: &mut [f32], a: &[f32], b: &[f32], mb: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { gemm_block_avx2(out, a, b, mb, k, n) };
    }
    gemm_tiled::<_, NR>(out, a, b, RowMajorLhs { k }, mb, k, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_block_avx2(out: &mut [f32], a: &[f32], b: &[f32], mb: usize, k: usize, n: usize) {
    gemm_tiled::<_, 16>(out, a, b, RowMajorLhs { k }, mb, k, n);
}

/// `out[mb, n] = aᵀ-block · b` for output rows `[i0, i0+mb)`, where the
/// full `a` is stored `[k, m]` and `b` is `[k, n]`. Single-threaded.
#[allow(clippy::too_many_arguments)] // mirrors the GEMM dimension tuple
fn at_b_block(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    mb: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if use_avx2() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { at_b_block_avx2(out, a, b, i0, mb, k, m, n) };
    }
    gemm_tiled::<_, NR>(out, a, b, TransposedLhs { m, i0 }, mb, k, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::too_many_arguments)]
unsafe fn at_b_block_avx2(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    mb: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    gemm_tiled::<_, 16>(out, a, b, TransposedLhs { m, i0 }, mb, k, n);
}

avx2_dispatch! {
    /// Sum with a fixed eight-lane association: breaks the sequential float
    /// dependency chain of a naive `iter().sum()` (so it vectorizes) while
    /// staying deterministic for a given slice length.
    #[must_use]
    pub sum8 / sum8_scalar / sum8_avx2,
    (x: &[f32]) -> f32
}

#[inline(always)]
fn sum8_scalar(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xb[l];
        }
    }
    let mut tail = 0.0f32;
    for &v in &x[chunks * 8..] {
        tail += v;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

avx2_dispatch! {
    /// Sum of squared deviations `Σ (x - mu)²` with the same fixed eight-lane
    /// association as [`sum8`]. The variance reduction of batch normalization.
    #[must_use]
    pub sq_dev_sum8 / sq_dev_sum8_scalar / sq_dev_sum8_avx2,
    (x: &[f32], mu: f32) -> f32
}

#[inline(always)]
fn sq_dev_sum8_scalar(x: &[f32], mu: f32) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        for l in 0..8 {
            let d = xb[l] - mu;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for &v in &x[chunks * 8..] {
        let d = v - mu;
        tail += d * d;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

avx2_dispatch! {
    /// Dot product with a fixed eight-lane association, so the result does not
    /// depend on how work is partitioned (and the lanes map onto SIMD).
    #[must_use]
    pub dot8 / dot8_scalar / dot8_avx2,
    (x: &[f32], y: &[f32]) -> f32
}

#[inline(always)]
fn dot8_scalar(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        let yb = &y[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xb[l] * yb[l];
        }
    }
    let mut tail = 0.0f32;
    for t in chunks * 8..x.len() {
        tail += x[t] * y[t];
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

avx2_dispatch! {
    /// Dot product of `g` with the normalized values `(x - mu) * inv_std`,
    /// in [`dot8`]'s exact lane association. Recomputing the normalized
    /// activation inline yields the same bits as materializing it first
    /// (same expression, same inputs), so batch norm's `dgamma` reduction
    /// can run without a saved `xhat` buffer.
    #[must_use]
    pub dot_norm8 / dot_norm8_scalar / dot_norm8_avx2,
    (g: &[f32], x: &[f32], mu: f32, inv_std: f32) -> f32
}

#[inline(always)]
fn dot_norm8_scalar(g: &[f32], x: &[f32], mu: f32, inv_std: f32) -> f32 {
    debug_assert_eq!(g.len(), x.len());
    let mut acc = [0.0f32; 8];
    let chunks = g.len() / 8;
    for c in 0..chunks {
        let gb = &g[c * 8..c * 8 + 8];
        let xb = &x[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += gb[l] * ((xb[l] - mu) * inv_std);
        }
    }
    let mut tail = 0.0f32;
    for t in chunks * 8..g.len() {
        tail += g[t] * ((x[t] - mu) * inv_std);
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

avx2_dispatch! {
    /// Fused weighted sum `dst[i] = Σ_m weights[m] * srcs[m][i]`,
    /// overwritten, ascending `m`. Per element this performs exactly the FP
    /// operations of the unfused mul-then-add_n composition (`acc = w0*t0;
    /// acc += w1*t1; ...` — each product formed, then accumulated in branch
    /// order), so the fused mixture combine is bitwise identical to the
    /// per-branch `mul` + `add_n` chain it replaces. The axpy-style
    /// branch-outer loop keeps the inner loops vectorizable; element chains
    /// are independent, so the loop interchange cannot change any bit.
    pub weighted_sum_into / weighted_sum_into_scalar / weighted_sum_into_avx2,
    (dst: &mut [f32], srcs: &[&[f32]], weights: &[f32])
}

#[inline(always)]
fn weighted_sum_into_scalar(dst: &mut [f32], srcs: &[&[f32]], weights: &[f32]) {
    debug_assert_eq!(srcs.len(), weights.len());
    let Some((s0, rest)) = srcs.split_first() else {
        dst.fill(0.0);
        return;
    };
    debug_assert_eq!(s0.len(), dst.len());
    let w0 = weights[0];
    for (d, &x) in dst.iter_mut().zip(*s0) {
        *d = w0 * x;
    }
    for (s, &w) in rest.iter().zip(&weights[1..]) {
        debug_assert_eq!(s.len(), dst.len());
        for (d, &x) in dst.iter_mut().zip(*s) {
            *d += w * x;
        }
    }
}

avx2_dispatch! {
    /// Blocked transpose `dst[c, rows] = src[rows, c]`: `src` is `[rows,
    /// cols]` row-major, `dst` is `[cols, rows]`. 32x32 tiles keep both
    /// the read and the write streams inside one cache-line working set.
    transpose_into / transpose_into_scalar / transpose_into_avx2,
    (dst: &mut [f32], src: &[f32], rows: usize, cols: usize)
}

#[inline(always)]
fn transpose_into_scalar(dst: &mut [f32], src: &[f32], rows: usize, cols: usize) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    const TB: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + TB).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + TB).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

// ---------------------------------------------------------------------------
// Public allocation-free GEMM entry points
// ---------------------------------------------------------------------------

/// `out = A[m,k] · B[k,n]`, overwriting `out`, threaded over row blocks.
///
/// Thread count comes from [`num_threads`]; small problems stay
/// single-threaded. Results are bitwise identical for any thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS {
        1
    } else {
        num_threads()
    };
    matmul_into_threads(out, a, b, m, k, n, t);
}

/// [`matmul_into`] with an explicit thread count (callers that already
/// parallelize an outer dimension pass `1`).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    matmul_into_hint(out, a, b, m, k, n, threads, false);
}

/// [`matmul_into_threads`] tagged as an im2col convolution lowering: the
/// selector classifies the call [`select::GemmClass::Conv`] so dispatch
/// counters separate convolution traffic. Arithmetic is identical to the
/// untagged front.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
#[allow(clippy::too_many_arguments)] // mirrors matmul_into_threads
pub fn matmul_conv_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    matmul_into_hint(out, a, b, m, k, n, threads, true);
}

#[allow(clippy::too_many_arguments)] // dimension tuple + control flags
fn matmul_into_hint(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    conv: bool,
) {
    assert_eq!(a.len(), m * k, "matmul_into: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_into: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_into: bad out length");
    let selected = select::select_class(m, n, conv).is_some();
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        if selected {
            select::gemm_block_select(out, a, b, RowMajorLhs { k }, m, k, n);
        } else {
            gemm_block(out, a, b, m, k, n);
        }
        return;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: partition ranges are disjoint, so each task's output
        // window is exclusive to it.
        let block = unsafe { base.slice(r.start * n, r.len() * n) };
        let ab = &a[r.start * k..r.end * k];
        if selected {
            select::gemm_block_select(block, ab, b, RowMajorLhs { k }, r.len(), k, n);
        } else {
            gemm_block(block, ab, b, r.len(), k, n);
        }
    });
}

/// `out[m,n] = Aᵀ · B` without materializing `Aᵀ`: `a` is stored `[k, m]`,
/// `b` is `[k, n]`. Used for weight-side gradients (`dB = Aᵀ·dY`,
/// `dcols = Wᵀ·dY`). Threaded over output row blocks; bitwise
/// deterministic for any thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `k`, `m`, `n`.
pub fn matmul_at_b_into(out: &mut [f32], a: &[f32], b: &[f32], k: usize, m: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS {
        1
    } else {
        num_threads()
    };
    matmul_at_b_into_threads(out, a, b, k, m, n, t);
}

/// [`matmul_at_b_into`] with an explicit thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `k`, `m`, `n`.
pub fn matmul_at_b_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), k * m, "matmul_at_b: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_at_b: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_at_b: bad out length");
    let selected = select::select_class(m, n, false).is_some();
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        if selected {
            select::gemm_block_select(out, a, b, TransposedLhs { m, i0: 0 }, m, k, n);
        } else {
            at_b_block(out, a, b, 0, m, k, m, n);
        }
        return;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint output windows.
        let block = unsafe { base.slice(r.start * n, r.len() * n) };
        if selected {
            let lhs = TransposedLhs { m, i0: r.start };
            select::gemm_block_select(block, a, b, lhs, r.len(), k, n);
        } else {
            at_b_block(block, a, b, r.start, r.len(), k, m, n);
        }
    });
}

/// `out[m,n] = A · Bᵀ` without materializing `Bᵀ`: `a` is `[m, k]`, `b` is
/// `[n, k]`. Used for input-side gradients (`dA = dY·Bᵀ`, `dW = dY·colsᵀ`).
/// Threaded over output row blocks; bitwise deterministic for any thread
/// count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_a_bt_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS {
        1
    } else {
        num_threads()
    };
    matmul_a_bt_into_threads(out, a, b, m, k, n, t);
}

/// [`matmul_a_bt_into`] with an explicit thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_a_bt_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_a_bt: bad lhs length");
    assert_eq!(b.len(), n * k, "matmul_a_bt: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_a_bt: bad out length");
    // Pack `bᵀ` into the scratch arena once ([n, k] → [k, n]) and run the
    // plain row-tiled GEMM on the packed panel. The pack is O(k·n) against
    // the GEMM's O(m·k·n), and the 4x8 accumulator-tile microkernel is
    // several times faster than forming each output as a standalone dot
    // product over `b` rows. The panel is packed before the pool fan-out
    // and shared read-only, so the result stays independent of the thread
    // count.
    let mut bt = crate::scratch::alloc(k * n);
    transpose_into(&mut bt, b, n, k);
    let selected = select::select_class(m, n, false).is_some();
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        if selected {
            select::gemm_block_select(out, a, &bt, RowMajorLhs { k }, m, k, n);
        } else {
            gemm_block(out, a, &bt, m, k, n);
        }
        return;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    let btr: &[f32] = &bt;
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint output windows.
        let block = unsafe { base.slice(r.start * n, r.len() * n) };
        let ab = &a[r.start * k..r.end * k];
        if selected {
            select::gemm_block_select(block, ab, btr, RowMajorLhs { k }, r.len(), k, n);
        } else {
            gemm_block(block, ab, btr, r.len(), k, n);
        }
    });
}

// ---------------------------------------------------------------------------
// Batch-dimension parallelism
// ---------------------------------------------------------------------------

/// Runs `f(scratch, item, slice1, slice2)` for each of `items` work items,
/// where `slice1`/`slice2` are the item's disjoint `chunk1`-/`chunk2`-sized
/// windows of `d1`/`d2`, distributing contiguous item ranges over scoped
/// threads. A chunk size of `0` hands every item an empty slice, letting
/// callers skip an output without a separate code path.
///
/// Each worker thread builds one `scratch` value via `init` and reuses it
/// across its items (e.g. an `im2col` buffer). Since every item writes only
/// its own windows, results are bitwise independent of the thread count.
///
/// # Panics
///
/// Panics if `d1`/`d2` lengths are not `items * chunk1` / `items * chunk2`.
#[allow(clippy::too_many_arguments)] // two (buffer, chunk) pairs + control
pub fn par_batch2_with<S>(
    items: usize,
    d1: &mut [f32],
    chunk1: usize,
    d2: &mut [f32],
    chunk2: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f32], &mut [f32]) + Sync,
) {
    assert_eq!(d1.len(), items * chunk1, "par_batch2_with: bad d1 length");
    assert_eq!(d2.len(), items * chunk2, "par_batch2_with: bad d2 length");
    let run_range = |range: Range<usize>, mut s1: &mut [f32], mut s2: &mut [f32]| {
        let mut scratch = init();
        for item in range {
            let (c1, t1) = std::mem::take(&mut s1).split_at_mut(chunk1);
            s1 = t1;
            let (c2, t2) = std::mem::take(&mut s2).split_at_mut(chunk2);
            s2 = t2;
            f(&mut scratch, item, c1, c2);
        }
    };
    let ranges = partition(items, threads);
    if ranges.len() <= 1 {
        if items > 0 {
            run_range(0..items, d1, d2);
        }
        return;
    }
    let base1 = SendPtr::new(d1.as_mut_ptr());
    let base2 = SendPtr::new(d2.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = ranges[t].clone();
        // SAFETY: partition ranges are disjoint and chunk strides are
        // uniform, so each task's windows of d1/d2 are exclusive to it.
        let b1 = unsafe { base1.slice(r.start * chunk1, r.len() * chunk1) };
        let b2 = unsafe { base2.slice(r.start * chunk2, r.len() * chunk2) };
        run_range(r, b1, b2);
    });
}

/// Single-output convenience wrapper over [`par_batch2_with`].
///
/// # Panics
///
/// Panics if `data.len() != items * chunk`.
pub fn par_batch_with<S>(
    items: usize,
    data: &mut [f32],
    chunk: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f32]) + Sync,
) {
    par_batch2_with(
        items,
        data,
        chunk,
        &mut [],
        0,
        threads,
        init,
        |s, i, c, _| {
            f(s, i, c);
        },
    );
}

// ---------------------------------------------------------------------------
// Elementwise parallelism
// ---------------------------------------------------------------------------

/// `dst[i] = f(src[i])`, chunked over the pool for large slices. Purely
/// elementwise, so any partitioning yields bitwise-identical results.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn par_map_into(dst: &mut [f32], src: &[f32], f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(dst.len(), src.len(), "par_map_into: length mismatch");
    let n = dst.len();
    let threads = if n < PAR_MIN_ELEMS { 1 } else { num_threads() };
    let ranges = partition(n, threads);
    if ranges.len() <= 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            *d = f(s);
        }
        return;
    }
    let base = SendPtr::new(dst.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint windows.
        let d = unsafe { base.slice(r.start, r.len()) };
        for (d, &s) in d.iter_mut().zip(&src[r.clone()]) {
            *d = f(s);
        }
    });
}

/// Pool-recycled [`par_map_into`] (the `Array::map` backend): the output
/// buffer comes from [`crate::recycle`] and is fully overwritten.
#[must_use]
pub fn par_map_vec(src: &[f32], f: impl Fn(f32) -> f32 + Sync) -> Vec<f32> {
    let mut out = crate::recycle::take(src.len());
    par_map_into(&mut out, src, f);
    out
}

/// In-place elementwise map, chunked over the pool for large slices.
pub fn par_map_inplace(data: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    let n = data.len();
    let threads = if n < PAR_MIN_ELEMS { 1 } else { num_threads() };
    let ranges = partition(n, threads);
    if ranges.len() <= 1 {
        for v in data.iter_mut() {
            *v = f(*v);
        }
        return;
    }
    let base = SendPtr::new(data.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint windows.
        for v in unsafe { base.slice(r.start, r.len()) } {
            *v = f(*v);
        }
    });
}

/// Fused same-length binary map: `out[i] = f(a[i], b[i])`, freshly
/// allocated, chunked over the pool for large slices. One pass and one
/// allocation where `map` + `mul` would take two of each — the gradient
/// hot path for elementwise activations.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn par_zip_vec(a: &[f32], b: &[f32], f: impl Fn(f32, f32) -> f32 + Sync) -> Vec<f32> {
    assert_eq!(a.len(), b.len(), "par_zip_vec: length mismatch");
    // Output storage is recycled; every element is overwritten below.
    let mut out = crate::recycle::take(a.len());
    if a.len() < PAR_MIN_ELEMS {
        for ((d, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *d = f(x, y);
        }
        return out;
    }
    let ranges = partition(out.len(), num_threads());
    let base = SendPtr::new(out.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint windows.
        let d = unsafe { base.slice(r.start, r.len()) };
        for ((d, &x), &y) in d.iter_mut().zip(&a[r.clone()]).zip(&b[r.clone()]) {
            *d = f(x, y);
        }
    });
    out
}

/// In-place binary update `f(&mut dst[i], src[i])`, chunked over the pool
/// (the gradient-accumulation hot path).
///
/// # Panics
///
/// Panics if lengths differ.
pub fn par_update2(dst: &mut [f32], src: &[f32], f: impl Fn(&mut f32, f32) + Sync) {
    assert_eq!(dst.len(), src.len(), "par_update2: length mismatch");
    let n = dst.len();
    let threads = if n < PAR_MIN_ELEMS { 1 } else { num_threads() };
    let ranges = partition(n, threads);
    if ranges.len() <= 1 {
        for (d, &s) in dst.iter_mut().zip(src) {
            f(d, s);
        }
        return;
    }
    let base = SendPtr::new(dst.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: disjoint partition ranges → disjoint windows.
        let d = unsafe { base.slice(r.start, r.len()) };
        for (d, &s) in d.iter_mut().zip(&src[r.clone()]) {
            f(d, s);
        }
    });
}

/// Runs `f(row_index, row)` over every `cols`-wide row of `data`, fanning
/// contiguous row ranges out across the worker pool when the buffer is
/// large enough. Each row is computed independently of the others, so the
/// result is bitwise identical for any thread count. The backend for the
/// softmax-family row loops.
pub fn par_rows(data: &mut [f32], cols: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
    if cols == 0 || data.is_empty() {
        return;
    }
    let rows = data.len() / cols;
    let threads = if data.len() < PAR_MIN_ELEMS {
        1
    } else {
        num_threads().min(rows)
    };
    if threads <= 1 {
        for (r, row) in data.chunks_exact_mut(cols).enumerate() {
            f(r, row);
        }
        return;
    }
    let ranges = partition(rows, threads);
    let base = SendPtr::new(data.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let rg = &ranges[t];
        for r in rg.clone() {
            // SAFETY: disjoint row ranges → disjoint row windows.
            f(r, unsafe { base.slice(r * cols, cols) });
        }
    });
}

/// Deterministic total sum: an eight-lane [`sum8`] per fixed-length chunk
/// (chunks computed in parallel, each writing its own partial), then a
/// final [`sum8`] over the partials. The chunk length is a constant, so
/// the association — and therefore every bit of the result — is identical
/// for any thread count.
#[must_use]
pub fn par_sum(x: &[f32]) -> f32 {
    if x.len() <= REDUCE_CHUNK {
        return sum8(x);
    }
    let chunks = x.len().div_ceil(REDUCE_CHUNK);
    let mut partials = vec![0.0f32; chunks];
    let threads = num_threads().min(chunks);
    par_batch_with(
        chunks,
        &mut partials,
        1,
        threads,
        || (),
        |(), ci, out| {
            let lo = ci * REDUCE_CHUNK;
            let hi = (lo + REDUCE_CHUNK).min(x.len());
            out[0] = sum8(&x[lo..hi]);
        },
    );
    sum8(&partials)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn avx2_paths_match_scalar_bitwise() {
        // The dispatched kernels must be bit-identical to their scalar
        // bodies — the AVX2 twins change instruction selection and the GEMM
        // tile width, never per-element accumulation order. On a machine
        // without AVX2 the front *is* the scalar path and this reduces to a
        // self-comparison.
        let mut rng = StdRng::seed_from_u64(77);
        // Odd dimensions exercise the row/column tails of both the 4x8
        // scalar tile and the 4x16 AVX2 tile.
        let (m, k, n) = (13usize, 37usize, 29usize);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        gemm_block(&mut got, &a, &b, m, k, n);
        gemm_tiled::<_, NR>(&mut want, &a, &b, RowMajorLhs { k }, m, k, n);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        let at = randv(k * m, &mut rng); // stored [k, m]
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        at_b_block(&mut got, &at, &b, 0, m, k, m, n);
        gemm_tiled::<_, NR>(&mut want, &at, &b, TransposedLhs { m, i0: 0 }, m, k, n);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        let src = randv(m * n, &mut rng);
        let mut got = vec![0.0f32; m * n];
        let mut want = vec![0.0f32; m * n];
        transpose_into(&mut got, &src, m, n);
        transpose_into_scalar(&mut want, &src, m, n);
        assert!(got
            .iter()
            .zip(&want)
            .all(|(x, y)| x.to_bits() == y.to_bits()));

        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let x = randv(len, &mut rng);
            let y = randv(len, &mut rng);
            assert_eq!(sum8(&x).to_bits(), sum8_scalar(&x).to_bits());
            assert_eq!(dot8(&x, &y).to_bits(), dot8_scalar(&x, &y).to_bits());
            assert_eq!(
                sq_dev_sum8(&x, 0.25).to_bits(),
                sq_dev_sum8_scalar(&x, 0.25).to_bits()
            );
        }
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        assert_eq!(partition(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(partition(2, 8), vec![0..1, 1..2]);
        assert_eq!(partition(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(partition(5, 1), vec![0..5]);
    }

    #[test]
    fn blocked_matches_naive_including_tile_remainders() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(1, 1, 1), (4, 8, 4), (5, 3, 7), (9, 16, 513), (6, 0, 3)] {
            let a = randv(m * k, &mut rng);
            let b = randv(k * n, &mut rng);
            let want = matmul_naive(&a, &b, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            matmul_into(&mut got, &a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn threaded_rows_are_bitwise_equal_to_single() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (13, 27, 31);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut st = vec![0.0f32; m * n];
        matmul_into_threads(&mut st, &a, &b, m, k, n, 1);
        for t in [2, 3, 5, 16] {
            let mut mt = vec![0.0f32; m * n];
            matmul_into_threads(&mut mt, &a, &b, m, k, n, t);
            assert_eq!(st, mt, "threads={t}");
        }
    }

    #[test]
    fn transpose_free_variants_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (6, 10, 5);
        let a = randv(k * m, &mut rng); // [k, m]
        let b = randv(k * n, &mut rng); // [k, n]
        let mut at = vec![0.0f32; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let want = matmul_naive(&at, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_at_b_into_threads(&mut got, &a, &b, k, m, n, 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0));
        }

        let a2 = randv(m * k, &mut rng); // [m, k]
        let b2 = randv(n * k, &mut rng); // [n, k]
        let mut b2t = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b2t[kk * n + j] = b2[j * k + kk];
            }
        }
        let want = matmul_naive(&a2, &b2t, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_a_bt_into_threads(&mut got, &a2, &b2, m, k, n, 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0));
        }
    }

    #[test]
    fn par_batch_covers_all_items_with_scratch_reuse() {
        let items = 7;
        let chunk = 3;
        let mut data = vec![0.0f32; items * chunk];
        par_batch_with(
            items,
            &mut data,
            chunk,
            3,
            Vec::<usize>::new,
            |seen, i, c| {
                seen.push(i);
                c.fill(i as f32 + 1.0);
            },
        );
        for i in 0..items {
            assert!(data[i * chunk..(i + 1) * chunk]
                .iter()
                .all(|&v| v == i as f32 + 1.0));
        }
    }

    #[test]
    fn par_batch2_zero_chunk_hands_empty_slices() {
        let items = 4;
        let mut d1 = vec![0.0f32; items * 2];
        par_batch2_with(
            items,
            &mut d1,
            2,
            &mut [],
            0,
            2,
            || (),
            |(), i, c1, c2| {
                assert!(c2.is_empty());
                c1.fill(i as f32);
            },
        );
        assert_eq!(d1, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn num_threads_is_cached_and_overridable() {
        // The env lookup happens once at pool init; at runtime only the
        // `set_num_threads` hook changes the partitioning count. Parsing
        // and fallback semantics are covered in `pool::tests`.
        let _guard = pool::test_lock();
        let before = num_threads();
        assert!(before >= 1);
        std::env::set_var("EDD_NUM_THREADS", "63");
        assert_eq!(num_threads(), before, "later env changes are ignored");
        std::env::remove_var("EDD_NUM_THREADS");
        set_num_threads(3);
        assert_eq!(num_threads(), 3);
        set_num_threads(before);
    }

    #[test]
    fn pool_partitions_beyond_worker_count_stay_bitwise_equal() {
        // Logical thread counts larger than the physical core count must
        // not change a single bit: every output element is written by
        // exactly one task with a fixed accumulation order.
        let mut rng = StdRng::seed_from_u64(21);
        let (m, k, n) = (29, 17, 23);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let _guard = pool::test_lock();
        let before = num_threads();
        let mut reference = vec![0.0f32; m * n];
        set_num_threads(1);
        matmul_into(&mut reference, &a, &b, m, k, n);
        for t in [2, 7, 19] {
            set_num_threads(t);
            let mut got = vec![0.0f32; m * n];
            matmul_into_threads(&mut got, &a, &b, m, k, n, t);
            let same = reference
                .iter()
                .zip(&got)
                .all(|(x, y)| x.to_bits() == y.to_bits());
            assert!(same, "logical threads={t}");
        }
        set_num_threads(before);
    }
}
