//! Cache-blocked, register-tiled f32 GEMM kernels with scoped-thread
//! parallelism, plus the batch-partitioning helpers the convolution ops
//! build on.
//!
//! # Blocking scheme
//!
//! The blocked GEMM streams panels of the right-hand matrix through an
//! `MR = 4`-row register tile: each pass over a `B` row updates four output
//! rows at once, quartering `B` traffic versus the scalar loop, and the
//! branch-free inner loop over columns auto-vectorizes. Columns are
//! processed in blocks of `NC` so the active output tile and `B` panel stay
//! cache-resident for wide matrices.
//!
//! Two transpose-free variants serve the backward passes without
//! materializing transposed operands:
//!
//! * [`matmul_at_b_into`] — `C = Aᵀ·B` with `A` stored `[k, m]`
//!   (weight/`dB`-style gradients);
//! * [`matmul_a_bt_into`] — `C = A·Bᵀ` with `B` stored `[n, k]`
//!   (input/`dA`-style gradients), computed as fixed-association
//!   eight-lane dot products.
//!
//! # Threading model
//!
//! Large GEMMs split the *output rows* into contiguous blocks, one scoped
//! thread (`std::thread::scope`, no dependencies) per block. Convolutions
//! parallelize over the batch dimension via [`par_batch2_with`]. In both
//! cases every output element is produced by exactly one thread with a
//! thread-count-independent operation order, so results are **bitwise
//! identical** for any `EDD_NUM_THREADS` setting — see [`num_threads`].
//!
//! The scalar triple loop is kept as [`matmul_naive`], the reference
//! oracle the property-based suites compare the blocked kernels against.

use std::ops::Range;

/// Rows per register tile in the blocked kernels.
pub const MR: usize = 4;

/// Columns per register tile: each of the `MR` rows keeps an `NR`-lane
/// accumulator live across the whole `k` loop (maps onto one 256-bit SIMD
/// register per row), so every output element is stored exactly once.
pub const NR: usize = 8;

/// Below this many multiply-adds a GEMM runs single-threaded; spawn
/// overhead dominates for smaller problems.
const PAR_MIN_MULADDS: usize = 1 << 18;

/// Worker-thread count for kernel operations.
///
/// Reads `EDD_NUM_THREADS` on every call (so tests and embedding processes
/// can change it at runtime); unset, empty, or unparsable values fall back
/// to `std::thread::available_parallelism()`. The result is further capped
/// by each operation's natural grain (output rows, batch images).
#[must_use]
pub fn num_threads() -> usize {
    std::env::var("EDD_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get))
}

/// Output coordinates `o` (over `0..out_limit`) whose sampled input index
/// `o*stride + kc - pad` lands inside `[0, in_limit)`, as a half-open
/// range. Shared by the convolution lowerings (`im2col`/`col2im`) and the
/// depthwise kernels so their inner loops run branch-free.
#[must_use]
pub fn valid_out_range(
    kc: usize,
    pad: usize,
    stride: usize,
    in_limit: usize,
    out_limit: usize,
) -> (usize, usize) {
    let lo = if kc >= pad {
        0
    } else {
        (pad - kc).div_ceil(stride)
    };
    if in_limit + pad <= kc {
        return (0, 0);
    }
    let hi = ((in_limit - 1 + pad - kc) / stride + 1).min(out_limit);
    (lo.min(hi), hi)
}

/// Splits `0..n` into at most `parts` contiguous, non-empty, balanced
/// ranges (earlier ranges get the remainder).
#[must_use]
pub fn partition(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1).min(n.max(1));
    let base = n / parts;
    let extra = n % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        if len == 0 {
            break;
        }
        out.push(start..start + len);
        start += len;
    }
    out
}

// ---------------------------------------------------------------------------
// Reference oracle
// ---------------------------------------------------------------------------

/// Scalar reference GEMM: `C[m,n] = A[m,k] · B[k,n]`, freshly allocated.
///
/// This is the unblocked, single-threaded i-k-j loop the optimized kernels
/// are validated against. Per output element it accumulates in ascending
/// `k` order — the same association the blocked kernel uses.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
#[must_use]
pub fn matmul_naive(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    assert_eq!(a.len(), m * k, "matmul_naive: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_naive: bad rhs length");
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * bv;
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Blocked kernels (single-threaded building blocks)
// ---------------------------------------------------------------------------

/// `A`-element accessor for a 4-row tile: returns the scalars multiplying
/// `B` row `kk` for output rows `i..i+4`. The two GEMM orientations differ
/// only in this indexing.
trait LhsTile: Copy + Sync {
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR];
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32;
}

/// `A` stored row-major `[m, k]` (plain GEMM).
#[derive(Clone, Copy)]
struct RowMajorLhs {
    k: usize,
}

impl LhsTile for RowMajorLhs {
    #[inline(always)]
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR] {
        [
            a[i * self.k + kk],
            a[(i + 1) * self.k + kk],
            a[(i + 2) * self.k + kk],
            a[(i + 3) * self.k + kk],
        ]
    }

    #[inline(always)]
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32 {
        a[i * self.k + kk]
    }
}

/// `A` stored `[k, m]`, used as `Aᵀ`: output rows map to *columns* of `a`,
/// contiguous within each `kk` row. `i0` offsets into the full matrix when
/// a thread owns a row block.
#[derive(Clone, Copy)]
struct TransposedLhs {
    m: usize,
    i0: usize,
}

impl LhsTile for TransposedLhs {
    #[inline(always)]
    fn scalars(&self, a: &[f32], i: usize, kk: usize) -> [f32; MR] {
        let base = kk * self.m + self.i0 + i;
        [a[base], a[base + 1], a[base + 2], a[base + 3]]
    }

    #[inline(always)]
    fn scalar(&self, a: &[f32], i: usize, kk: usize) -> f32 {
        a[kk * self.m + self.i0 + i]
    }
}

/// Register-tiled `out[mb, n] = lhs-tile · b[k, n]`, single-threaded,
/// overwritten.
///
/// The `MR x NR` microkernel keeps a 4x8 accumulator tile live across the
/// entire `k` loop (one 8-lane vector per row) and stores each output
/// element exactly once, instead of re-walking the output rows per `k`
/// step. Every element — tile, row-tail, or column-tail — accumulates its
/// products in ascending `kk` order through a single accumulator chain, so
/// results are bitwise independent of how rows are partitioned.
fn gemm_tiled<L: LhsTile>(out: &mut [f32], a: &[f32], b: &[f32], lhs: L, mb: usize, k: usize, n: usize) {
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    let mut i = 0;
    while i + MR <= mb {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [[0.0f32; NR]; MR];
            for kk in 0..k {
                let bv: &[f32; NR] = b[kk * n + j..kk * n + j + NR].try_into().expect("NR chunk");
                let av = lhs.scalars(a, i, kk);
                for (accr, &ar) in acc.iter_mut().zip(&av) {
                    for (l, &bl) in accr.iter_mut().zip(bv) {
                        *l += ar * bl;
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + NR].copy_from_slice(accr);
            }
            j += NR;
        }
        // Column tail: scalar accumulators, still ascending-kk.
        while j < n {
            let mut acc = [0.0f32; MR];
            for kk in 0..k {
                let bv = b[kk * n + j];
                let av = lhs.scalars(a, i, kk);
                for (l, &ar) in acc.iter_mut().zip(&av) {
                    *l += ar * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
            j += 1;
        }
        i += MR;
    }
    // Row tail: one row at a time with NR-lane column tiles.
    while i < mb {
        let mut j = 0;
        while j + NR <= n {
            let mut acc = [0.0f32; NR];
            for kk in 0..k {
                let bv: &[f32; NR] = b[kk * n + j..kk * n + j + NR].try_into().expect("NR chunk");
                let ar = lhs.scalar(a, i, kk);
                for (l, &bl) in acc.iter_mut().zip(bv) {
                    *l += ar * bl;
                }
            }
            out[i * n + j..i * n + j + NR].copy_from_slice(&acc);
            j += NR;
        }
        while j < n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += lhs.scalar(a, i, kk) * b[kk * n + j];
            }
            out[i * n + j] = acc;
            j += 1;
        }
        i += 1;
    }
}

/// `out[mb, n] = a_block[mb, k] · b[k, n]`, single-threaded, overwritten.
fn gemm_block(out: &mut [f32], a: &[f32], b: &[f32], mb: usize, k: usize, n: usize) {
    gemm_tiled(out, a, b, RowMajorLhs { k }, mb, k, n);
}

/// `out[mb, n] = aᵀ-block · b` for output rows `[i0, i0+mb)`, where the
/// full `a` is stored `[k, m]` and `b` is `[k, n]`. Single-threaded.
#[allow(clippy::too_many_arguments)] // mirrors the GEMM dimension tuple
fn at_b_block(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    i0: usize,
    mb: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    gemm_tiled(out, a, b, TransposedLhs { m, i0 }, mb, k, n);
}

/// Sum with a fixed eight-lane association: breaks the sequential float
/// dependency chain of a naive `iter().sum()` (so it vectorizes) while
/// staying deterministic for a given slice length.
#[must_use]
pub fn sum8(x: &[f32]) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xb[l];
        }
    }
    let mut tail = 0.0f32;
    for &v in &x[chunks * 8..] {
        tail += v;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// Sum of squared deviations `Σ (x - mu)²` with the same fixed eight-lane
/// association as [`sum8`]. The variance reduction of batch normalization.
#[must_use]
pub fn sq_dev_sum8(x: &[f32], mu: f32) -> f32 {
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        for l in 0..8 {
            let d = xb[l] - mu;
            acc[l] += d * d;
        }
    }
    let mut tail = 0.0f32;
    for &v in &x[chunks * 8..] {
        let d = v - mu;
        tail += d * d;
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// Dot product with a fixed eight-lane association, so the result does not
/// depend on how work is partitioned (and the lanes map onto SIMD).
#[must_use]
pub fn dot8(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    let mut acc = [0.0f32; 8];
    let chunks = x.len() / 8;
    for c in 0..chunks {
        let xb = &x[c * 8..c * 8 + 8];
        let yb = &y[c * 8..c * 8 + 8];
        for l in 0..8 {
            acc[l] += xb[l] * yb[l];
        }
    }
    let mut tail = 0.0f32;
    for t in chunks * 8..x.len() {
        tail += x[t] * y[t];
    }
    (((acc[0] + acc[4]) + (acc[1] + acc[5])) + ((acc[2] + acc[6]) + (acc[3] + acc[7]))) + tail
}

/// `out[mb, n] = a_block[mb, k] · bᵀ` with `b` stored `[n, k]`: both
/// operand rows are contiguous, so each output element is one dot product.
fn a_bt_block(out: &mut [f32], a: &[f32], b: &[f32], mb: usize, k: usize, n: usize) {
    for i in 0..mb {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in o_row.iter_mut().enumerate() {
            *o = dot8(a_row, &b[j * k..(j + 1) * k]);
        }
    }
}

// ---------------------------------------------------------------------------
// Public allocation-free GEMM entry points
// ---------------------------------------------------------------------------

/// `out = A[m,k] · B[k,n]`, overwriting `out`, threaded over row blocks.
///
/// Thread count comes from [`num_threads`]; small problems stay
/// single-threaded. Results are bitwise identical for any thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS { 1 } else { num_threads() };
    matmul_into_threads(out, a, b, m, k, n, t);
}

/// [`matmul_into`] with an explicit thread count (callers that already
/// parallelize an outer dimension pass `1`).
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_into: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_into: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_into: bad out length");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        gemm_block(out, a, b, m, k, n);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * n);
            rest = tail;
            let a_block = &a[r.start * k..r.end * k];
            let mb = r.len();
            s.spawn(move || gemm_block(block, a_block, b, mb, k, n));
        }
    });
}

/// `out[m,n] = Aᵀ · B` without materializing `Aᵀ`: `a` is stored `[k, m]`,
/// `b` is `[k, n]`. Used for weight-side gradients (`dB = Aᵀ·dY`,
/// `dcols = Wᵀ·dY`). Threaded over output row blocks; bitwise
/// deterministic for any thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `k`, `m`, `n`.
pub fn matmul_at_b_into(out: &mut [f32], a: &[f32], b: &[f32], k: usize, m: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS { 1 } else { num_threads() };
    matmul_at_b_into_threads(out, a, b, k, m, n, t);
}

/// [`matmul_at_b_into`] with an explicit thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `k`, `m`, `n`.
pub fn matmul_at_b_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    m: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), k * m, "matmul_at_b: bad lhs length");
    assert_eq!(b.len(), k * n, "matmul_at_b: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_at_b: bad out length");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        at_b_block(out, a, b, 0, m, k, m, n);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * n);
            rest = tail;
            let (i0, mb) = (r.start, r.len());
            s.spawn(move || at_b_block(block, a, b, i0, mb, k, m, n));
        }
    });
}

/// `out[m,n] = A · Bᵀ` without materializing `Bᵀ`: `a` is `[m, k]`, `b` is
/// `[n, k]`. Used for input-side gradients (`dA = dY·Bᵀ`, `dW = dY·colsᵀ`).
/// Threaded over output row blocks; bitwise deterministic for any thread
/// count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_a_bt_into(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    let t = if m * n * k < PAR_MIN_MULADDS { 1 } else { num_threads() };
    matmul_a_bt_into_threads(out, a, b, m, k, n, t);
}

/// [`matmul_a_bt_into`] with an explicit thread count.
///
/// # Panics
///
/// Panics if slice lengths are inconsistent with `m`, `k`, `n`.
pub fn matmul_a_bt_into_threads(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "matmul_a_bt: bad lhs length");
    assert_eq!(b.len(), n * k, "matmul_a_bt: bad rhs length");
    assert_eq!(out.len(), m * n, "matmul_a_bt: bad out length");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        a_bt_block(out, a, b, m, k, n);
        return;
    }
    std::thread::scope(|s| {
        let mut rest = out;
        for r in ranges {
            let (block, tail) = std::mem::take(&mut rest).split_at_mut(r.len() * n);
            rest = tail;
            let a_block = &a[r.start * k..r.end * k];
            let mb = r.len();
            s.spawn(move || a_bt_block(block, a_block, b, mb, k, n));
        }
    });
}

// ---------------------------------------------------------------------------
// Batch-dimension parallelism
// ---------------------------------------------------------------------------

/// Runs `f(scratch, item, slice1, slice2)` for each of `items` work items,
/// where `slice1`/`slice2` are the item's disjoint `chunk1`-/`chunk2`-sized
/// windows of `d1`/`d2`, distributing contiguous item ranges over scoped
/// threads. A chunk size of `0` hands every item an empty slice, letting
/// callers skip an output without a separate code path.
///
/// Each worker thread builds one `scratch` value via `init` and reuses it
/// across its items (e.g. an `im2col` buffer). Since every item writes only
/// its own windows, results are bitwise independent of the thread count.
///
/// # Panics
///
/// Panics if `d1`/`d2` lengths are not `items * chunk1` / `items * chunk2`.
#[allow(clippy::too_many_arguments)] // two (buffer, chunk) pairs + control
pub fn par_batch2_with<S>(
    items: usize,
    d1: &mut [f32],
    chunk1: usize,
    d2: &mut [f32],
    chunk2: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f32], &mut [f32]) + Sync,
) {
    assert_eq!(d1.len(), items * chunk1, "par_batch2_with: bad d1 length");
    assert_eq!(d2.len(), items * chunk2, "par_batch2_with: bad d2 length");
    let run_range = |range: Range<usize>, mut s1: &mut [f32], mut s2: &mut [f32]| {
        let mut scratch = init();
        for item in range {
            let (c1, t1) = std::mem::take(&mut s1).split_at_mut(chunk1);
            s1 = t1;
            let (c2, t2) = std::mem::take(&mut s2).split_at_mut(chunk2);
            s2 = t2;
            f(&mut scratch, item, c1, c2);
        }
    };
    let ranges = partition(items, threads);
    if ranges.len() <= 1 {
        if items > 0 {
            run_range(0..items, d1, d2);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut rest1 = d1;
        let mut rest2 = d2;
        let run_range = &run_range;
        for r in ranges {
            let (b1, t1) = std::mem::take(&mut rest1).split_at_mut(r.len() * chunk1);
            rest1 = t1;
            let (b2, t2) = std::mem::take(&mut rest2).split_at_mut(r.len() * chunk2);
            rest2 = t2;
            s.spawn(move || run_range(r, b1, b2));
        }
    });
}

/// Single-output convenience wrapper over [`par_batch2_with`].
///
/// # Panics
///
/// Panics if `data.len() != items * chunk`.
pub fn par_batch_with<S>(
    items: usize,
    data: &mut [f32],
    chunk: usize,
    threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize, &mut [f32]) + Sync,
) {
    par_batch2_with(items, data, chunk, &mut [], 0, threads, init, |s, i, c, _| {
        f(s, i, c);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randv(len: usize, rng: &mut StdRng) -> Vec<f32> {
        (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
    }

    #[test]
    fn partition_is_contiguous_and_balanced() {
        assert_eq!(partition(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(partition(2, 8), vec![0..1, 1..2]);
        assert_eq!(partition(0, 4), Vec::<Range<usize>>::new());
        assert_eq!(partition(5, 1), vec![0..5]);
    }

    #[test]
    fn blocked_matches_naive_including_tile_remainders() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(1, 1, 1), (4, 8, 4), (5, 3, 7), (9, 16, 513), (6, 0, 3)] {
            let a = randv(m * k, &mut rng);
            let b = randv(k * n, &mut rng);
            let want = matmul_naive(&a, &b, m, k, n);
            let mut got = vec![f32::NAN; m * n];
            matmul_into(&mut got, &a, &b, m, k, n);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0), "{m}x{k}x{n}");
            }
        }
    }

    #[test]
    fn threaded_rows_are_bitwise_equal_to_single() {
        let mut rng = StdRng::seed_from_u64(8);
        let (m, k, n) = (13, 27, 31);
        let a = randv(m * k, &mut rng);
        let b = randv(k * n, &mut rng);
        let mut st = vec![0.0f32; m * n];
        matmul_into_threads(&mut st, &a, &b, m, k, n, 1);
        for t in [2, 3, 5, 16] {
            let mut mt = vec![0.0f32; m * n];
            matmul_into_threads(&mut mt, &a, &b, m, k, n, t);
            assert_eq!(st, mt, "threads={t}");
        }
    }

    #[test]
    fn transpose_free_variants_match_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (6, 10, 5);
        let a = randv(k * m, &mut rng); // [k, m]
        let b = randv(k * n, &mut rng); // [k, n]
        let mut at = vec![0.0f32; m * k];
        for kk in 0..k {
            for i in 0..m {
                at[i * k + kk] = a[kk * m + i];
            }
        }
        let want = matmul_naive(&at, &b, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_at_b_into_threads(&mut got, &a, &b, k, m, n, 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-5 * w.abs().max(1.0));
        }

        let a2 = randv(m * k, &mut rng); // [m, k]
        let b2 = randv(n * k, &mut rng); // [n, k]
        let mut b2t = vec![0.0f32; k * n];
        for j in 0..n {
            for kk in 0..k {
                b2t[kk * n + j] = b2[j * k + kk];
            }
        }
        let want = matmul_naive(&a2, &b2t, m, k, n);
        let mut got = vec![0.0f32; m * n];
        matmul_a_bt_into_threads(&mut got, &a2, &b2, m, k, n, 3);
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0));
        }
    }

    #[test]
    fn par_batch_covers_all_items_with_scratch_reuse() {
        let items = 7;
        let chunk = 3;
        let mut data = vec![0.0f32; items * chunk];
        par_batch_with(items, &mut data, chunk, 3, Vec::<usize>::new, |seen, i, c| {
            seen.push(i);
            c.fill(i as f32 + 1.0);
        });
        for i in 0..items {
            assert!(data[i * chunk..(i + 1) * chunk]
                .iter()
                .all(|&v| v == i as f32 + 1.0));
        }
    }

    #[test]
    fn par_batch2_zero_chunk_hands_empty_slices() {
        let items = 4;
        let mut d1 = vec![0.0f32; items * 2];
        par_batch2_with(items, &mut d1, 2, &mut [], 0, 2, || (), |(), i, c1, c2| {
            assert!(c2.is_empty());
            c1.fill(i as f32);
        });
        assert_eq!(d1, vec![0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]);
    }

    #[test]
    fn num_threads_reads_env_per_call() {
        // Serial within this one test to avoid races on the process env.
        std::env::set_var("EDD_NUM_THREADS", "3");
        assert_eq!(num_threads(), 3);
        std::env::set_var("EDD_NUM_THREADS", "not-a-number");
        let fallback = num_threads();
        assert!(fallback >= 1);
        std::env::set_var("EDD_NUM_THREADS", "0");
        assert_eq!(num_threads(), fallback);
        std::env::remove_var("EDD_NUM_THREADS");
        assert_eq!(num_threads(), fallback);
    }
}
