//! Panel packing for the shape-specialized GEMM blueprints.
//!
//! Two layouts live here:
//!
//! * **f32 LHS panels** — `MR`-row interleaved slabs (`panel[kk*MR + r] =
//!   A[i+r, kk]`) packed per row block inside the blueprint kernels, so the
//!   inner loop reads its four `A` scalars from one contiguous, bounds-free
//!   address instead of four strided rows. Packing copies values without
//!   touching the arithmetic, so the ascending-`k` accumulation chain per
//!   output element — the bitwise-determinism invariant of the f32 kernels
//!   — is unchanged.
//! * **int8 panels** for the maddubs microkernel
//!   ([`crate::qkernel::qmatmul_prepacked_into`]):
//!   - the LHS is stored dense with every row zero-padded to a multiple of
//!     4 taps ([`pack_lhs_i8`]), so the kernel can broadcast 4 consecutive
//!     `A` bytes as one dword for any `k`;
//!   - the RHS is blocked into `[ceil(n/8)]` panels of `[k4/4]` groups of
//!     `8 cols x 4 taps` bytes ([`pack_rhs_i8`]) — one 32-byte group is
//!     exactly one AVX2 register load feeding `_mm256_maddubs_epi16`.
//!
//! Zero padding is exact: symmetric quantization fixes the zero point at
//! integer 0, so padded taps contribute nothing.
//!
//! Weight-side panels are packed **once** at model-compile time and cached
//! next to the layer (`QConv2d`/`QLinear` in `edd-nn`); activation-side
//! panels are repacked per call into scratch. [`crate::stats`] counts both
//! (`pack_panel_hits` / `pack_panel_misses` / `pack_panels_built`).

use super::{LhsTile, MR};

/// Packs one `MR`-row slab of the LHS into `panel[kk*MR + r]` order.
/// `panel` must hold `k * MR` values; rows come from `lhs` at base row `i`.
#[inline(always)]
pub(crate) fn pack_a_panel<L: LhsTile>(panel: &mut [f32], a: &[f32], lhs: L, i: usize, k: usize) {
    debug_assert!(panel.len() >= k * MR);
    for kk in 0..k {
        let s = lhs.scalars(a, i, kk);
        panel[kk * MR..kk * MR + MR].copy_from_slice(&s);
    }
}

/// Number of taps per packed int8 K-group (one dword broadcast).
pub const QK_GROUP: usize = 4;

/// Columns per packed int8 RHS panel (one maddubs register covers
/// `QNP * QK_GROUP` bytes).
pub const QNP: usize = 8;

/// `k` rounded up to a whole number of K-groups.
#[must_use]
pub fn padded_k(k: usize) -> usize {
    k.div_ceil(QK_GROUP) * QK_GROUP
}

/// Length in bytes of a [`pack_lhs_i8`] buffer for an `[m, k]` matrix.
#[must_use]
pub fn packed_lhs_len(m: usize, k: usize) -> usize {
    m * padded_k(k)
}

/// Packs an `[m, k]` int8 matrix row-major with each row zero-padded to
/// [`padded_k`] taps. The result doubles as a plain dense matrix with
/// logical depth `padded_k(k)` (padded taps multiply against anything as
/// zero), which is how the `EDD_GEMM=generic` path consumes it.
///
/// # Panics
///
/// Panics on inconsistent buffer lengths.
pub fn pack_lhs_i8(dst: &mut [i8], a: &[i8], m: usize, k: usize) {
    let k4 = padded_k(k);
    assert_eq!(dst.len(), m * k4, "pack_lhs_i8: bad dst length");
    assert_eq!(a.len(), m * k, "pack_lhs_i8: bad src length");
    if k4 == 0 {
        return; // k == 0: nothing to pack.
    }
    for (drow, arow) in dst.chunks_exact_mut(k4).zip(a.chunks_exact(k)) {
        drow[..k].copy_from_slice(arow);
        drow[k..].fill(0);
    }
}

/// Length in bytes of a [`pack_rhs_i8`] buffer for a `[k, n]` matrix:
/// `ceil(n/QNP)` panels x `padded_k(k)/QK_GROUP` groups x 32 bytes.
#[must_use]
pub fn packed_rhs_len(k: usize, n: usize) -> usize {
    n.div_ceil(QNP) * padded_k(k) * QNP
}

/// Packs a `[k, n]` int8 matrix into maddubs panel order: panel `jp` holds
/// columns `jp*8 .. jp*8+8`, as `k4/4` consecutive 32-byte groups of
/// `[col0 k0..k3, col1 k0..k3, ..., col7 k0..k3]`. Out-of-range taps and
/// columns pack as 0.
///
/// # Panics
///
/// Panics on inconsistent buffer lengths.
pub fn pack_rhs_i8(dst: &mut [i8], b: &[i8], k: usize, n: usize) {
    assert_eq!(
        dst.len(),
        packed_rhs_len(k, n),
        "pack_rhs_i8: bad dst length"
    );
    assert_eq!(b.len(), k * n, "pack_rhs_i8: bad src length");
    let groups = padded_k(k) / QK_GROUP;
    let panels = n.div_ceil(QNP);
    let group_bytes = QNP * QK_GROUP;
    for jp in 0..panels {
        let j0 = jp * QNP;
        let width = (n - j0).min(QNP);
        let pbase = jp * groups * group_bytes;
        for g in 0..groups {
            let grp = &mut dst[pbase + g * group_bytes..pbase + (g + 1) * group_bytes];
            let t0 = g * QK_GROUP;
            let taps = k.saturating_sub(t0).min(QK_GROUP);
            for c in 0..QNP {
                let cell = &mut grp[c * QK_GROUP..(c + 1) * QK_GROUP];
                if c < width {
                    for (t, d) in cell.iter_mut().enumerate() {
                        *d = if t < taps {
                            b[(t0 + t) * n + j0 + c]
                        } else {
                            0
                        };
                    }
                } else {
                    cell.fill(0);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lhs_pads_rows_to_k_groups() {
        let a: Vec<i8> = (1..=6).collect(); // 2x3
        let mut dst = vec![9i8; packed_lhs_len(2, 3)];
        pack_lhs_i8(&mut dst, &a, 2, 3);
        assert_eq!(padded_k(3), 4);
        assert_eq!(dst, vec![1, 2, 3, 0, 4, 5, 6, 0]);
    }

    #[test]
    fn rhs_panel_layout_interleaves_cols_by_tap_groups() {
        // 5x3 matrix: one panel (n=3 < 8), two K-groups (k4 = 8).
        let k = 5;
        let n = 3;
        let b: Vec<i8> = (0..(k * n) as i8).collect();
        let mut dst = vec![9i8; packed_rhs_len(k, n)];
        pack_rhs_i8(&mut dst, &b, k, n);
        // Group 0, col 1 holds B[0..4, 1] = 1, 4, 7, 10.
        assert_eq!(&dst[4..8], &[1, 4, 7, 10]);
        // Group 1, col 0 holds B[4, 0] then zero-padded taps.
        assert_eq!(&dst[32..36], &[12, 0, 0, 0]);
        // Columns beyond n pack to zero.
        assert_eq!(&dst[3 * 4..8 * 4], &[0; 20]);
    }

    #[test]
    fn zero_k_packs_all_zero() {
        let mut lhs = vec![7i8; packed_lhs_len(3, 0)];
        pack_lhs_i8(&mut lhs, &[], 3, 0);
        assert!(lhs.is_empty());
        let mut rhs = vec![7i8; packed_rhs_len(0, 4)];
        pack_rhs_i8(&mut rhs, &[], 0, 4);
        assert!(rhs.is_empty());
    }
}
