//! Lazily-initialized global worker pool with a chunked parallel-for API.
//!
//! Every parallel region in the kernel layer used to spawn fresh OS threads
//! through `std::thread::scope`; at supernet scale that meant thousands of
//! spawns per training step. This module replaces them with one persistent
//! pool that is created on first use and lives for the process lifetime.
//!
//! # Execution model
//!
//! [`run`]`(tasks, f)` executes `f(0)`, `f(1)`, …, `f(tasks - 1)` exactly
//! once each and returns when all of them have finished. Workers and the
//! calling thread claim task indices from a shared atomic counter, so the
//! caller always participates (a `run` never blocks without making
//! progress, even with zero workers). Nested `run` calls from inside a
//! worker execute their tasks inline on that worker — the pool never
//! deadlocks on re-entrancy, and inner parallel regions simply serialize.
//!
//! # Logical threads vs. physical workers
//!
//! [`num_threads`] is the *logical* thread count: callers use it to decide
//! how many chunks to partition work into. It is read from
//! `EDD_NUM_THREADS` **once** at first use (unset / empty / unparsable /
//! zero fall back to `std::thread::available_parallelism`) and can be
//! overridden at runtime with [`set_num_threads`] — the test and embedder
//! hook. The pool grows its physical worker set lazily up to
//! `num_threads() - 1` (the caller is the extra thread), but correctness
//! and results never depend on how many workers actually exist: each task
//! writes a disjoint slice of the output, so any interleaving of task
//! execution yields bitwise-identical results. That is what makes
//! `set_num_threads(7)` on a two-core machine a meaningful determinism
//! test rather than a lie.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on the logical thread count (and thus on spawned workers);
/// a guard against `EDD_NUM_THREADS=100000` typos, not a tuning knob.
const MAX_THREADS: usize = 256;

/// Cached logical thread count; `0` means "not initialized yet".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parses an `EDD_NUM_THREADS`-style setting. `None`, empty, unparsable,
/// and `0` all mean "use the platform default" (returned as `None` here so
/// the fallback stays in one place).
fn parse_thread_setting(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The logical worker-thread count used to partition kernel work.
///
/// Reads `EDD_NUM_THREADS` once, on the first call in the process; unset,
/// empty, unparsable or zero values fall back to
/// `std::thread::available_parallelism()`. Later env changes are ignored —
/// use [`set_num_threads`] to override at runtime.
#[must_use]
pub fn num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let init = parse_thread_setting(std::env::var("EDD_NUM_THREADS").ok().as_deref())
        .unwrap_or_else(default_threads)
        .min(MAX_THREADS);
    // First writer wins so concurrent initial calls agree on one value.
    match NUM_THREADS.compare_exchange(0, init, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => init,
        Err(prev) => prev,
    }
}

/// Overrides the logical thread count at runtime (tests, embedders).
///
/// Affects how work is partitioned from the next kernel call on; the
/// physical worker set only ever grows, so shrinking the logical count
/// simply leaves some workers idle. `n` is clamped to `1..=256`.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// One parallel-for region: a lifetime-erased task closure plus the
/// counters that track claiming and completion.
struct Job {
    /// Pointer to the caller's `&dyn Fn(usize)`; valid until `run` returns,
    /// which is guaranteed to happen only after `remaining` hits zero.
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    tasks: usize,
    /// Tasks not yet finished executing.
    remaining: AtomicUsize,
}

// SAFETY: `task` is only dereferenced for claimed indices `< tasks`, and
// `run` keeps the referent alive until `remaining == 0` (i.e. until every
// dereference has completed).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes tasks until the index counter is exhausted.
    /// Returns `true` if this call finished the job's last task.
    fn work(&self) -> bool {
        let mut finished_last = false;
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.tasks {
                return finished_last;
            }
            // SAFETY: idx < tasks, so the caller of `run` is still blocked
            // in `wait` and the closure is alive.
            unsafe { (*self.task)(idx) };
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                finished_last = true;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

struct PoolState {
    /// Jobs with unclaimed tasks, oldest first. Jobs are queued by address;
    /// the `usize` doubles as a removal key.
    queue: VecDeque<*const Job>,
    /// Physical workers spawned so far.
    workers: usize,
    /// Pool generation, bumped on every push so sleeping workers re-check.
    epoch: u64,
}

// SAFETY: raw job pointers are only dereferenced while the owning `run`
// call keeps the `Job` alive (see `Job` safety comment).
unsafe impl Send for PoolState {}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers that the queue changed.
    work_cv: Condvar,
    /// Signals callers that some job finished its last task.
    done_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set while a pool worker (or a caller inside `run`) is executing
    /// tasks, so nested parallel regions run inline instead of re-queueing.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
            epoch: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

/// Body of a physical worker thread: sleep on the queue, help the front
/// job, drop it from the queue once its tasks are all claimed.
fn worker_loop(pool: &'static Pool) {
    IN_PARALLEL.with(|f| f.set(true));
    let mut state = pool.state.lock().expect("pool poisoned");
    loop {
        if let Some(&job_ptr) = state.queue.front() {
            // SAFETY: queued jobs are kept alive by their `run` caller
            // until all tasks complete; `work` claims before executing.
            let job: &Job = unsafe { &*job_ptr };
            if job.next.load(Ordering::Relaxed) >= job.tasks {
                // Fully claimed; retire it from the queue (it may still be
                // executing on other threads, which is fine).
                state.queue.retain(|&p| p != job_ptr);
                continue;
            }
            drop(state);
            if job.work() {
                // Last task of the job: wake its caller.
                let guard = pool.state.lock().expect("pool poisoned");
                pool.done_cv.notify_all();
                state = guard;
            } else {
                state = pool.state.lock().expect("pool poisoned");
            }
        } else {
            state = pool.work_cv.wait(state).expect("pool poisoned");
        }
    }
}

/// Ensures at least `num_threads() - 1` workers exist (the caller of a
/// parallel region is the remaining thread).
fn ensure_workers(state: &mut PoolState) {
    let target = num_threads().saturating_sub(1);
    while state.workers < target {
        let id = state.workers;
        let spawned = std::thread::Builder::new()
            .name(format!("edd-pool-{id}"))
            .spawn(|| worker_loop(pool()));
        match spawned {
            Ok(_) => state.workers += 1,
            Err(_) => break, // resource exhaustion: run with what we have
        }
    }
}

/// Executes `f(0)..f(tasks - 1)` exactly once each, distributing tasks over
/// the global worker pool, and returns once all have completed.
///
/// The calling thread participates, so this makes progress even with zero
/// workers. Tasks must be independent: each should write only its own
/// disjoint portion of any shared output so results are bitwise identical
/// for every worker count and interleaving. Nested calls (from inside a
/// task) execute inline on the current thread.
pub fn run(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    // With one logical thread there is nobody to share with: skip the job
    // queue and its per-task atomics entirely. (Physical workers may exist
    // from an earlier, larger setting — they would only add contention.)
    let inline = tasks == 1 || num_threads() == 1 || IN_PARALLEL.with(std::cell::Cell::get);
    if inline {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let pool = pool();
    // SAFETY: lifetime erasure only — `run` does not return until every
    // dereference of this pointer (each for a claimed index) has finished.
    let task: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(f)
    };
    let job = Job {
        task,
        next: AtomicUsize::new(0),
        tasks,
        remaining: AtomicUsize::new(tasks),
    };
    {
        let mut state = pool.state.lock().expect("pool poisoned");
        ensure_workers(&mut state);
        state.queue.push_back(std::ptr::addr_of!(job));
        state.epoch = state.epoch.wrapping_add(1);
    }
    pool.work_cv.notify_all();

    // Help with our own job (tasks execute inline w.r.t. nesting).
    IN_PARALLEL.with(|flag| {
        flag.set(true);
        job.work();
        flag.set(false);
    });

    // All tasks are claimed now (our claim loop ran dry), so remove the job
    // from the queue if a worker has not already retired it, then wait for
    // stragglers still executing their claimed tasks.
    let mut state = pool.state.lock().expect("pool poisoned");
    let job_ptr = std::ptr::addr_of!(job);
    state.queue.retain(|&p| p != job_ptr);
    while !job.is_done() {
        state = pool.done_cv.wait(state).expect("pool poisoned");
    }
    drop(state);
}

/// A raw mutable base pointer that may be shared across pool tasks.
///
/// The standard borrow rules cannot express "each task writes a disjoint
/// window of one buffer", so the kernel layer erases the borrow with this
/// wrapper and re-materializes per-task slices. Callers must guarantee
/// disjointness; every use in this crate derives the windows from
/// [`super::partition`], whose ranges never overlap.
#[derive(Clone, Copy)]
pub(crate) struct SendPtr(*mut f32);

unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

impl SendPtr {
    pub(crate) fn new(p: *mut f32) -> Self {
        SendPtr(p)
    }

    /// Re-materializes the window `[offset, offset + len)` as a mutable
    /// slice.
    ///
    /// # Safety
    ///
    /// The window must lie inside the original allocation and must not
    /// overlap any window handed to a concurrently running task.
    #[allow(clippy::mut_from_ref)] // the whole point of the wrapper
    pub(crate) unsafe fn slice(&self, offset: usize, len: usize) -> &mut [f32] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// Serializes tests that mutate or assert on the global thread count
/// (cargo runs tests in one process, many threads).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parse_thread_setting_fallback_semantics() {
        assert_eq!(parse_thread_setting(Some("3")), Some(3));
        assert_eq!(parse_thread_setting(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_setting(Some("0")), None);
        assert_eq!(parse_thread_setting(Some("")), None);
        assert_eq!(parse_thread_setting(Some("not-a-number")), None);
        assert_eq!(parse_thread_setting(None), None);
    }

    #[test]
    fn set_num_threads_overrides_and_clamps() {
        let _guard = test_lock();
        let before = num_threads();
        assert!(before >= 1);
        set_num_threads(5);
        assert_eq!(num_threads(), 5);
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(1 << 20);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(before);
    }

    #[test]
    fn run_executes_every_task_exactly_once() {
        for tasks in [0usize, 1, 2, 7, 64] {
            let counts: Vec<AtomicU32> = (0..tasks).map(|_| AtomicU32::new(0)).collect();
            run(tasks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} of {tasks}");
            }
        }
    }

    #[test]
    fn run_with_more_tasks_than_threads() {
        let _guard = test_lock();
        let before = num_threads();
        set_num_threads(2);
        let counts: Vec<AtomicU32> = (0..33).map(|_| AtomicU32::new(0)).collect();
        run(33, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        set_num_threads(before);
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let outer: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        run(4, &|i| {
            let inner: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(0)).collect();
            run(3, &|j| {
                inner[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(inner.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            outer[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(outer.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_runs_reuse_the_pool() {
        for round in 0..50 {
            let sum = AtomicU32::new(0);
            run(8, &|i| {
                sum.fetch_add(i as u32 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 36, "round {round}");
        }
    }

    #[test]
    fn disjoint_writes_through_send_ptr() {
        let mut data = vec![0.0f32; 24];
        let base = SendPtr::new(data.as_mut_ptr());
        run(6, &|i| {
            let chunk = unsafe { base.slice(i * 4, 4) };
            chunk.fill(i as f32 + 1.0);
        });
        for i in 0..6 {
            assert!(data[i * 4..(i + 1) * 4].iter().all(|&v| v == i as f32 + 1.0));
        }
    }
}
