//! Lazily-initialized global worker pool with a chunked parallel-for API.
//!
//! Every parallel region in the kernel layer used to spawn fresh OS threads
//! through `std::thread::scope`; at supernet scale that meant thousands of
//! spawns per training step. This module replaces them with one persistent
//! pool that is created on first use and lives for the process lifetime.
//!
//! # Execution model
//!
//! [`run`]`(tasks, f)` executes `f(0)`, `f(1)`, …, `f(tasks - 1)` exactly
//! once each and returns when all of them have finished. Workers and the
//! calling thread claim task indices from a shared atomic counter, so the
//! caller always participates (a `run` never blocks without making
//! progress, even with zero workers). Nested `run` calls from inside a
//! worker execute their tasks inline on that worker — the pool never
//! deadlocks on re-entrancy, and inner parallel regions simply serialize.
//!
//! # Logical threads vs. physical workers
//!
//! [`num_threads`] is the *logical* thread count: callers use it to decide
//! how many chunks to partition work into. It is read from
//! `EDD_NUM_THREADS` **once** at first use (unset / empty / unparsable /
//! zero fall back to `std::thread::available_parallelism`) and can be
//! overridden at runtime with [`set_num_threads`] — the test and embedder
//! hook. The pool grows its physical worker set lazily up to
//! `num_threads() - 1` (the caller is the extra thread), but correctness
//! and results never depend on how many workers actually exist: each task
//! writes a disjoint slice of the output, so any interleaving of task
//! execution yields bitwise-identical results. That is what makes
//! `set_num_threads(7)` on a two-core machine a meaningful determinism
//! test rather than a lie.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};

/// Upper bound on the logical thread count (and thus on spawned workers);
/// a guard against `EDD_NUM_THREADS=100000` typos, not a tuning knob.
const MAX_THREADS: usize = 256;

/// Cached logical thread count; `0` means "not initialized yet".
static NUM_THREADS: AtomicUsize = AtomicUsize::new(0);

/// Parses an `EDD_NUM_THREADS`-style setting. `None`, empty, unparsable,
/// and `0` all mean "use the platform default" (returned as `None` here so
/// the fallback stays in one place).
fn parse_thread_setting(raw: Option<&str>) -> Option<usize> {
    raw.and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t >= 1)
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// One-time warning when `EDD_NUM_THREADS` is set to something unusable
/// (non-numeric or `0`), so the silent fallback to the platform default is
/// at least visible. An unset or empty variable is a deliberate "use the
/// default" and stays quiet.
fn warn_invalid_thread_setting(raw: Option<&str>) {
    static WARNED: std::sync::Once = std::sync::Once::new();
    if let Some(s) = raw {
        if !s.trim().is_empty() && parse_thread_setting(Some(s)).is_none() {
            WARNED.call_once(|| {
                eprintln!(
                    "warning: invalid EDD_NUM_THREADS value {s:?} (expected a positive \
                     integer); falling back to the platform default of {} threads",
                    default_threads()
                );
            });
        }
    }
}

/// The logical worker-thread count used to partition kernel work.
///
/// Reads `EDD_NUM_THREADS` once, on the first call in the process; unset,
/// empty, unparsable or zero values fall back to
/// `std::thread::available_parallelism()`. Later env changes are ignored —
/// use [`set_num_threads`] to override at runtime.
#[must_use]
pub fn num_threads() -> usize {
    let n = NUM_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let raw = std::env::var("EDD_NUM_THREADS").ok();
    warn_invalid_thread_setting(raw.as_deref());
    let init = parse_thread_setting(raw.as_deref())
        .unwrap_or_else(default_threads)
        .min(MAX_THREADS);
    // First writer wins so concurrent initial calls agree on one value.
    match NUM_THREADS.compare_exchange(0, init, Ordering::Relaxed, Ordering::Relaxed) {
        Ok(_) => init,
        Err(prev) => prev,
    }
}

/// Overrides the logical thread count at runtime (tests, embedders).
///
/// Affects how work is partitioned from the next kernel call on; the
/// physical worker set only ever grows, so shrinking the logical count
/// simply leaves some workers idle. `n` is clamped to `1..=256`.
pub fn set_num_threads(n: usize) {
    NUM_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// One parallel-for region: a lifetime-erased task closure plus the
/// counters that track claiming, completion, and job-pointer liveness.
struct Job {
    /// Pointer to the caller's `&dyn Fn(usize)`; valid until `run` returns,
    /// which is guaranteed to happen only after `remaining` hits zero and
    /// no worker still holds this job (`accessors == 0`, observed under the
    /// pool lock).
    task: *const (dyn Fn(usize) + Sync),
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of tasks.
    tasks: usize,
    /// Tasks not yet finished executing.
    remaining: AtomicUsize,
    /// Workers currently between "took this job off the queue front" and
    /// "re-acquired the pool lock after `work` returned". Only modified
    /// while holding the pool lock; the caller of `run` refuses to return
    /// (and free this stack frame) until it observes zero under that same
    /// lock, so every worker access to the job happens-before the free.
    accessors: AtomicUsize,
    /// First panic payload caught from a task, re-thrown on the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

// SAFETY: `task` is only dereferenced for claimed indices `< tasks`, and
// `run` keeps the referent alive until `remaining == 0` (every dereference
// completed) and `accessors == 0` (no worker still holds the job pointer).
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and executes tasks until the index counter is exhausted or
    /// this call finishes the job's last task.
    ///
    /// Returning immediately after the final `remaining` decrement matters
    /// for soundness: once `remaining` hits zero the caller may observe
    /// completion, so no code path may touch the job's atomics after that
    /// decrement (the old "loop once more and fetch_add `next`" pattern
    /// raced the caller freeing the job).
    ///
    /// Task panics are caught here — never unwound through the pool — and
    /// stashed for the caller to re-throw, so a panicking task cannot kill
    /// a worker thread (which would strand `remaining` above zero and
    /// deadlock the caller) or unwind the caller out of `run` while
    /// workers still hold the job pointer.
    fn work(&self) {
        loop {
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.tasks {
                return;
            }
            // SAFETY: idx < tasks, so the caller of `run` is still blocked
            // in `wait` and the closure is alive.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| unsafe {
                (*self.task)(idx)
            }));
            if let Err(payload) = outcome {
                let mut slot = self
                    .panic
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                // First panic wins; later ones are dropped like std::thread.
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
                return;
            }
        }
    }

    fn is_done(&self) -> bool {
        self.remaining.load(Ordering::Acquire) == 0
    }
}

struct PoolState {
    /// Jobs with unclaimed tasks, oldest first. Jobs are queued by address;
    /// the `usize` doubles as a removal key.
    queue: VecDeque<*const Job>,
    /// Physical workers spawned so far.
    workers: usize,
    /// Pool generation, bumped on every push so sleeping workers re-check.
    epoch: u64,
}

// SAFETY: raw job pointers are only dereferenced while the owning `run`
// call keeps the `Job` alive (see `Job` safety comment).
unsafe impl Send for PoolState {}

struct Pool {
    state: Mutex<PoolState>,
    /// Signals workers that the queue changed.
    work_cv: Condvar,
    /// Signals callers that some job finished its last task.
    done_cv: Condvar,
}

static POOL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Set while a pool worker (or a caller inside `run`) is executing
    /// tasks, so nested parallel regions run inline instead of re-queueing.
    static IN_PARALLEL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            queue: VecDeque::new(),
            workers: 0,
            epoch: 0,
        }),
        work_cv: Condvar::new(),
        done_cv: Condvar::new(),
    })
}

/// Body of a physical worker thread: sleep on the queue, help the front
/// job, drop it from the queue once its tasks are all claimed.
fn worker_loop(pool: &'static Pool) {
    IN_PARALLEL.with(|f| f.set(true));
    let mut state = pool.state.lock().expect("pool poisoned");
    loop {
        if let Some(&job_ptr) = state.queue.front() {
            // SAFETY: a job still in the queue cannot have been freed —
            // its `run` caller removes it from the queue under this lock
            // before it can observe completion and return.
            let job: &Job = unsafe { &*job_ptr };
            if job.next.load(Ordering::Relaxed) >= job.tasks {
                // Fully claimed; retire it from the queue (it may still be
                // executing on other threads, which is fine).
                state.queue.retain(|&p| p != job_ptr);
                continue;
            }
            // Register as an in-flight accessor BEFORE dropping the lock:
            // from here until the matching decrement below, the caller's
            // completion wait sees `accessors > 0` and keeps the job alive,
            // even if every task finishes the instant the lock is released.
            job.accessors.fetch_add(1, Ordering::Relaxed);
            drop(state);
            job.work();
            state = pool.state.lock().expect("pool poisoned");
            // Deregister under the lock; the caller cannot observe the
            // zero (and free the job) until this critical section ends,
            // so the `is_done` dereference below is still in-bounds.
            let last_accessor = job.accessors.fetch_sub(1, Ordering::Relaxed) == 1;
            if last_accessor && job.is_done() {
                // Job complete and no worker still holds it: wake the
                // caller. (If the caller itself ran the last task it
                // re-checks the condition under the lock, no signal
                // needed; if another accessor is still out, that one
                // signals when it deregisters.)
                pool.done_cv.notify_all();
            }
        } else {
            state = pool.work_cv.wait(state).expect("pool poisoned");
        }
    }
}

/// Ensures at least `num_threads() - 1` workers exist (the caller of a
/// parallel region is the remaining thread).
fn ensure_workers(state: &mut PoolState) {
    let target = num_threads().saturating_sub(1);
    while state.workers < target {
        let id = state.workers;
        let spawned = std::thread::Builder::new()
            .name(format!("edd-pool-{id}"))
            .spawn(|| worker_loop(pool()));
        match spawned {
            Ok(_) => {
                state.workers += 1;
                crate::stats::record_worker_spawned();
            }
            Err(_) => break, // resource exhaustion: run with what we have
        }
    }
}

/// Executes `f(0)..f(tasks - 1)` exactly once each, distributing tasks over
/// the global worker pool, and returns once all have completed.
///
/// The calling thread participates, so this makes progress even with zero
/// workers. Tasks must be independent: each should write only its own
/// disjoint portion of any shared output so results are bitwise identical
/// for every worker count and interleaving. Nested calls (from inside a
/// task) execute inline on the current thread.
pub fn run(tasks: usize, f: &(dyn Fn(usize) + Sync)) {
    if tasks == 0 {
        return;
    }
    // With one logical thread there is nobody to share with: skip the job
    // queue and its per-task atomics entirely. (Physical workers may exist
    // from an earlier, larger setting — they would only add contention.)
    let inline = tasks == 1 || num_threads() == 1 || IN_PARALLEL.with(std::cell::Cell::get);
    crate::stats::record_pool_job(tasks, inline);
    if inline {
        for i in 0..tasks {
            f(i);
        }
        return;
    }
    let pool = pool();
    // SAFETY: lifetime erasure only — `run` does not return until it has
    // observed, under the pool lock, that every task finished AND no
    // worker still holds the job pointer, so every dereference of this
    // pointer happens-before the referent is freed.
    let task: *const (dyn Fn(usize) + Sync) = unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(f)
    };
    let job = Job {
        task,
        next: AtomicUsize::new(0),
        tasks,
        remaining: AtomicUsize::new(tasks),
        accessors: AtomicUsize::new(0),
        panic: Mutex::new(None),
    };
    {
        let mut state = pool.state.lock().expect("pool poisoned");
        ensure_workers(&mut state);
        state.queue.push_back(std::ptr::addr_of!(job));
        state.epoch = state.epoch.wrapping_add(1);
    }
    pool.work_cv.notify_all();

    // Help with our own job (tasks execute inline w.r.t. nesting). The
    // guard restores the flag even on unwind, so a panic can never leave
    // this thread permanently marked as "inside a parallel region".
    {
        let _in_parallel = InParallelGuard::enter();
        job.work();
    }

    // All tasks are claimed now (our claim loop ran dry), so remove the job
    // from the queue if a worker has not already retired it, then wait
    // until (a) every task finished and (b) no worker is still between
    // "picked the job off the queue" and "deregistered after work()" —
    // both observed under the lock their updates are made under. Only
    // then is the stack-allocated `job` safe to free.
    let mut state = pool.state.lock().expect("pool poisoned");
    let job_ptr = std::ptr::addr_of!(job);
    state.queue.retain(|&p| p != job_ptr);
    while !(job.is_done() && job.accessors.load(Ordering::Relaxed) == 0) {
        state = pool.done_cv.wait(state).expect("pool poisoned");
    }
    drop(state);

    // Re-throw the first task panic on the caller, after the job is fully
    // quiesced (workers saw their panics caught inside `work`, so the
    // bookkeeping above completed normally).
    let payload = job
        .panic
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

/// Sets `IN_PARALLEL` for the current scope and restores the previous
/// value on drop, unwind included.
struct InParallelGuard {
    prev: bool,
}

impl InParallelGuard {
    fn enter() -> Self {
        InParallelGuard {
            prev: IN_PARALLEL.with(|f| f.replace(true)),
        }
    }
}

impl Drop for InParallelGuard {
    fn drop(&mut self) {
        let prev = self.prev;
        IN_PARALLEL.with(|f| f.set(prev));
    }
}

/// A raw mutable base pointer that may be shared across pool tasks.
///
/// The standard borrow rules cannot express "each task writes a disjoint
/// window of one buffer", so the kernel layer erases the borrow with this
/// wrapper and re-materializes per-task slices. Callers must guarantee
/// disjointness; every use in this crate derives the windows from
/// [`super::partition`], whose ranges never overlap. Generic over the
/// element type so the f32 kernels and the integer `qkernel` layer share
/// one wrapper (defaulting to `f32`, the overwhelmingly common case).
#[derive(Clone, Copy)]
pub(crate) struct SendPtr<T = f32>(*mut T);

// SAFETY: the wrapper only moves the *address* across threads; all element
// types used (`f32`, `i8`, `i32`) are plain data, and disjointness of the
// re-materialized windows is the caller's documented obligation.
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}

impl<T> SendPtr<T> {
    pub(crate) fn new(p: *mut T) -> Self {
        SendPtr(p)
    }

    /// Re-materializes the window `[offset, offset + len)` as a mutable
    /// slice.
    ///
    /// # Safety
    ///
    /// The window must lie inside the original allocation and must not
    /// overlap any window handed to a concurrently running task.
    #[allow(clippy::mut_from_ref)] // the whole point of the wrapper
    pub(crate) unsafe fn slice(&self, offset: usize, len: usize) -> &mut [T] {
        std::slice::from_raw_parts_mut(self.0.add(offset), len)
    }
}

/// Serializes tests that mutate or assert on the global thread count
/// (cargo runs tests in one process, many threads).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn parse_thread_setting_fallback_semantics() {
        assert_eq!(parse_thread_setting(Some("3")), Some(3));
        assert_eq!(parse_thread_setting(Some(" 8 ")), Some(8));
        assert_eq!(parse_thread_setting(Some("0")), None);
        assert_eq!(parse_thread_setting(Some("")), None);
        assert_eq!(parse_thread_setting(Some("not-a-number")), None);
        assert_eq!(parse_thread_setting(None), None);
    }

    #[test]
    fn set_num_threads_overrides_and_clamps() {
        let _guard = test_lock();
        let before = num_threads();
        assert!(before >= 1);
        set_num_threads(5);
        assert_eq!(num_threads(), 5);
        set_num_threads(0);
        assert_eq!(num_threads(), 1);
        set_num_threads(1 << 20);
        assert_eq!(num_threads(), MAX_THREADS);
        set_num_threads(before);
    }

    #[test]
    fn run_executes_every_task_exactly_once() {
        for tasks in [0usize, 1, 2, 7, 64] {
            let counts: Vec<AtomicU32> = (0..tasks).map(|_| AtomicU32::new(0)).collect();
            run(tasks, &|i| {
                counts[i].fetch_add(1, Ordering::Relaxed);
            });
            for (i, c) in counts.iter().enumerate() {
                assert_eq!(c.load(Ordering::Relaxed), 1, "task {i} of {tasks}");
            }
        }
    }

    #[test]
    fn run_with_more_tasks_than_threads() {
        let _guard = test_lock();
        let before = num_threads();
        set_num_threads(2);
        let counts: Vec<AtomicU32> = (0..33).map(|_| AtomicU32::new(0)).collect();
        run(33, &|i| {
            counts[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        set_num_threads(before);
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let outer: Vec<AtomicU32> = (0..4).map(|_| AtomicU32::new(0)).collect();
        run(4, &|i| {
            let inner: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(0)).collect();
            run(3, &|j| {
                inner[j].fetch_add(1, Ordering::Relaxed);
            });
            assert!(inner.iter().all(|c| c.load(Ordering::Relaxed) == 1));
            outer[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(outer.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn sequential_runs_reuse_the_pool() {
        for round in 0..50 {
            let sum = AtomicU32::new(0);
            run(8, &|i| {
                sum.fetch_add(i as u32 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 36, "round {round}");
        }
    }

    #[test]
    fn rapid_tiny_jobs_stress_job_lifetime() {
        // Hammers the window where a job completes (and its stack frame
        // dies) immediately after a worker peeks it off the queue: tiny
        // task counts maximize the chance a straggler races the caller's
        // return. Under the accessor-count protocol this must be quiet.
        let _guard = test_lock();
        let before = num_threads();
        set_num_threads(4);
        for round in 0..2000 {
            let sum = AtomicU32::new(0);
            run(3, &|i| {
                sum.fetch_add(i as u32 + 1, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 6, "round {round}");
        }
        set_num_threads(before);
    }

    #[test]
    fn panicking_task_propagates_and_pool_recovers() {
        let _guard = test_lock();
        let before = num_threads();
        set_num_threads(4);
        let result = std::panic::catch_unwind(|| {
            run(16, &|i| {
                assert!(i != 7, "task 7 exploded");
            });
        });
        assert!(result.is_err(), "task panic must reach the caller");
        // The panic must not leave this thread flagged as inside a
        // parallel region (which would silently serialize everything).
        assert!(!IN_PARALLEL.with(std::cell::Cell::get));
        // All workers must have survived (panics are caught, not
        // unwound through worker threads) and `remaining` must have been
        // fully drained — otherwise these runs deadlock or drop tasks.
        for _ in 0..8 {
            let sum = AtomicU32::new(0);
            run(16, &|i| {
                sum.fetch_add(i as u32, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120);
        }
        set_num_threads(before);
    }

    #[test]
    fn disjoint_writes_through_send_ptr() {
        let mut data = vec![0.0f32; 24];
        let base = SendPtr::new(data.as_mut_ptr());
        run(6, &|i| {
            let chunk = unsafe { base.slice(i * 4, 4) };
            chunk.fill(i as f32 + 1.0);
        });
        for i in 0..6 {
            assert!(data[i * 4..(i + 1) * 4]
                .iter()
                .all(|&v| v == i as f32 + 1.0));
        }
    }
}
