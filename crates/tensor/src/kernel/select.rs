//! Shape-specialized GEMM selection (the "cubek-style" kernel chooser).
//!
//! One blocked microkernel cannot be right for every problem the supernet
//! and the integer engine produce: a `1xK · KxN` vector-matrix product has
//! no row tile to amortize `B` traffic over, a `MxK · Kx4` classifier GEMM
//! never fills a 16-lane column strip, and the im2col convolutions sit in
//! between. The selector classifies each GEMM call by shape
//! ([`GemmClass`]) and dispatches a per-class blueprint:
//!
//! * [`GemmClass::VecMat`] (`m < MR`) — row-at-a-time kernel with wide
//!   unchecked column strips; no `A` panel (nothing to reuse).
//! * [`GemmClass::SkinnyN`] (`n < NR`) — packed `A` panel with the whole
//!   (narrow) output row held in one accumulator tile; no column strips.
//! * [`GemmClass::Square`] / [`GemmClass::Conv`] — packed `A` panel +
//!   `MR x NRV` unchecked microkernel (`super::pack::pack_a_panel`);
//!   `Conv` is the same blueprint tagged by the im2col lowering so the
//!   dispatch counters separate convolution traffic.
//!
//! **Bitwise invariant.** Every blueprint computes each output element
//! through a single accumulator chain in ascending `k` order — exactly the
//! association of [`super::matmul_naive`] and of the generic blocked
//! kernel. Packing copies operands without touching arithmetic, and the
//! strip width `NRV` only changes how many independent chains run side by
//! side. So `EDD_GEMM=generic` (which forces every call onto the generic
//! kernel) is bit-identical to `EDD_GEMM=auto` by construction, and the
//! determinism suite proves it per build.
//!
//! Dispatch decisions are counted in [`crate::stats`] (`select_*`).

use super::pack::pack_a_panel;
use super::{LhsTile, MR, NR};
use std::sync::atomic::{AtomicU8, Ordering};

/// Shape class of one GEMM problem, as seen by the selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmClass {
    /// Fewer rows than one register tile (`m < MR`): vector-matrix /
    /// skinny-M problems.
    VecMat,
    /// Fewer columns than one scalar column strip (`n < NR`).
    SkinnyN,
    /// Everything else: both dimensions fill at least one register tile.
    Square,
    /// An im2col convolution lowering (tagged by the conv ops; the
    /// blueprint is the packed general kernel, the tag separates the
    /// dispatch counters).
    Conv,
}

/// Selector mode, from `EDD_GEMM`: `auto` (default) dispatches per-class
/// blueprints, `generic` forces the single blocked kernel everywhere (the
/// determinism matrix's reference leg).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GemmMode {
    /// Shape-specialized dispatch (default).
    Auto,
    /// Force the generic blocked kernel for every problem.
    Generic,
}

/// Parses an `EDD_GEMM`-style setting into the mode to use plus whether the
/// value was unrecognized (and should be warned about once). Unset and
/// empty both mean "auto, quietly"; anything other than `auto`/`generic`
/// falls back to auto *loudly*. Pure so the fallback policy is unit-tested
/// separately from the process-wide env/warn caching, mirroring the
/// `EDD_NUM_THREADS` handling in `edd-runtime`.
fn parse_gemm_setting(raw: Option<&str>) -> (GemmMode, bool) {
    match raw {
        None | Some("") | Some("auto") => (GemmMode::Auto, false),
        Some("generic") => (GemmMode::Generic, false),
        Some(_) => (GemmMode::Auto, true),
    }
}

/// Reads `EDD_GEMM` once (relaxed-atomic cached), warning on unrecognized
/// values like the `EDD_SIMD` handling in `super::use_avx2` and the
/// `EDD_NUM_THREADS` handling in `edd-runtime`.
#[must_use]
pub fn gemm_mode() -> GemmMode {
    static STATE: AtomicU8 = AtomicU8::new(0); // 0 undecided, 1 auto, 2 generic
    match STATE.load(Ordering::Relaxed) {
        1 => GemmMode::Auto,
        2 => GemmMode::Generic,
        _ => {
            let setting = std::env::var("EDD_GEMM").ok();
            let (mode, unrecognized) = parse_gemm_setting(setting.as_deref());
            if unrecognized {
                static WARNED: std::sync::Once = std::sync::Once::new();
                WARNED.call_once(|| {
                    eprintln!(
                        "warning: unrecognized EDD_GEMM value {:?} (expected \
                         \"auto\" or \"generic\"); using auto dispatch",
                        setting.as_deref().unwrap_or_default()
                    );
                });
            }
            let code = if matches!(mode, GemmMode::Generic) {
                2
            } else {
                1
            };
            STATE.store(code, Ordering::Relaxed);
            mode
        }
    }
}

/// Label of the active selector mode (`"auto"` / `"generic"`), for bench
/// records.
#[must_use]
pub fn gemm_label() -> &'static str {
    match gemm_mode() {
        GemmMode::Auto => "auto",
        GemmMode::Generic => "generic",
    }
}

/// Classifies one GEMM problem. `conv` tags im2col convolution lowerings.
#[must_use]
pub fn classify(m: usize, n: usize, conv: bool) -> GemmClass {
    if conv {
        GemmClass::Conv
    } else if m < MR {
        GemmClass::VecMat
    } else if n < NR {
        GemmClass::SkinnyN
    } else {
        GemmClass::Square
    }
}

/// Front-level selection: returns the class to dispatch (recording it), or
/// `None` when `EDD_GEMM=generic` pins the generic kernel.
///
/// Public because the integer layers (`edd-nn`) make the same decision for
/// the prepacked qGEMM path and must feed the same `select_*` counters.
#[must_use]
pub fn select_class(m: usize, n: usize, conv: bool) -> Option<GemmClass> {
    if matches!(gemm_mode(), GemmMode::Generic) {
        crate::stats::record_select_generic();
        return None;
    }
    let class = classify(m, n, conv);
    crate::stats::record_select_dispatch(class);
    Some(class)
}

// ---------------------------------------------------------------------------
// Blueprints
// ---------------------------------------------------------------------------
//
// Hand-dispatched like the generic GEMM fronts: the AVX2 twin recompiles
// the same bodies with 16-lane column strips, the scalar body keeps NR = 8.

/// Runs the selected blueprint for one (possibly thread-partitioned) row
/// block. The shape decides the blueprint; the class tag only fed the
/// dispatch counters at the front.
pub(crate) fn gemm_block_select<L: LhsTile>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    if super::use_avx2() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { gemm_block_select_avx2(out, a, b, lhs, mb, k, n) };
    }
    gemm_block_select_body::<L, NR>(out, a, b, lhs, mb, k, n);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn gemm_block_select_avx2<L: LhsTile>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    gemm_block_select_body::<L, 16>(out, a, b, lhs, mb, k, n);
}

#[inline(always)]
fn gemm_block_select_body<L: LhsTile, const NRV: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    if k == 0 {
        out.fill(0.0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    if n < NR {
        gemm_skinny_n_body(out, a, b, lhs, mb, k, n);
    } else {
        gemm_packed_body::<L, NRV>(out, a, b, lhs, mb, k, n);
    }
}

/// Square/conv blueprint: packed `A` panels, `MR x NRV` microkernel with
/// unchecked loads, row tail via the vecmat rows.
#[inline(always)]
fn gemm_packed_body<L: LhsTile, const NRV: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    let mut panel = crate::scratch::alloc(k * MR);
    let mut i = 0;
    while i + MR <= mb {
        pack_a_panel(&mut panel, a, lhs, i, k);
        let pp: &[f32] = &panel;
        let mut j = 0;
        while j + NRV <= n {
            // SAFETY: `j + NRV <= n` and `kk < k` keep every `b` load
            // inside `b[..k*n]`; the panel holds `k*MR` values; the output
            // rows `i..i+MR` exist because `i + MR <= mb`.
            unsafe {
                let mut acc = [[0.0f32; NRV]; MR];
                let bp = b.as_ptr().add(j);
                for kk in 0..k {
                    let bk = bp.add(kk * n);
                    let mut bv = [0.0f32; NRV];
                    std::ptr::copy_nonoverlapping(bk, bv.as_mut_ptr(), NRV);
                    let ap = pp.as_ptr().add(kk * MR);
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let ar = *ap.add(r);
                        for (l, &bl) in accr.iter_mut().zip(&bv) {
                            *l += ar * bl;
                        }
                    }
                }
                for (r, accr) in acc.iter().enumerate() {
                    let op = out.as_mut_ptr().add((i + r) * n + j);
                    std::ptr::copy_nonoverlapping(accr.as_ptr(), op, NRV);
                }
            }
            j += NRV;
        }
        // Column tail: scalar accumulators off the packed panel.
        while j < n {
            let mut acc = [0.0f32; MR];
            for kk in 0..k {
                let bv = b[kk * n + j];
                let base = kk * MR;
                for (r, l) in acc.iter_mut().enumerate() {
                    *l += pp[base + r] * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
            j += 1;
        }
        i += MR;
    }
    vecmat_rows::<L, NRV>(out, a, b, lhs, i, mb, k, n);
}

/// Vector-matrix blueprint (and the packed kernel's row tail): one output
/// row at a time, NRV-wide unchecked column strips. `A` rows are read in
/// place — with fewer than `MR` rows there is no reuse a panel could buy.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn vecmat_rows<L: LhsTile, const NRV: usize>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    i0: usize,
    mb: usize,
    k: usize,
    n: usize,
) {
    for i in i0..mb {
        let mut j = 0;
        while j + NRV <= n {
            // SAFETY: as in the packed kernel — strip and `kk` stay in
            // bounds of `b`, and row `i < mb` exists in `out`.
            unsafe {
                let mut acc = [0.0f32; NRV];
                let bp = b.as_ptr().add(j);
                for kk in 0..k {
                    let ar = lhs.scalar(a, i, kk);
                    let bk = bp.add(kk * n);
                    let mut bv = [0.0f32; NRV];
                    std::ptr::copy_nonoverlapping(bk, bv.as_mut_ptr(), NRV);
                    for (l, &bl) in acc.iter_mut().zip(&bv) {
                        *l += ar * bl;
                    }
                }
                let op = out.as_mut_ptr().add(i * n + j);
                std::ptr::copy_nonoverlapping(acc.as_ptr(), op, NRV);
            }
            j += NRV;
        }
        while j < n {
            let mut acc = 0.0f32;
            for kk in 0..k {
                acc += lhs.scalar(a, i, kk) * b[kk * n + j];
            }
            out[i * n + j] = acc;
            j += 1;
        }
    }
}

/// Skinny-N blueprint (`n < NR`): packed `A` panel, the whole narrow output
/// row block lives in one `MR x NR` accumulator tile (only the first `n`
/// lanes are used), no column strips.
#[inline(always)]
fn gemm_skinny_n_body<L: LhsTile>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    lhs: L,
    mb: usize,
    k: usize,
    n: usize,
) {
    let mut panel = crate::scratch::alloc(k * MR);
    let mut i = 0;
    while i + MR <= mb {
        pack_a_panel(&mut panel, a, lhs, i, k);
        let mut acc = [[0.0f32; NR]; MR];
        for kk in 0..k {
            let brow = &b[kk * n..(kk + 1) * n];
            let base = kk * MR;
            for (r, accr) in acc.iter_mut().enumerate() {
                let ar = panel[base + r];
                for (l, &bv) in accr[..n].iter_mut().zip(brow) {
                    *l += ar * bv;
                }
            }
        }
        for (r, accr) in acc.iter().enumerate() {
            out[(i + r) * n..(i + r + 1) * n].copy_from_slice(&accr[..n]);
        }
        i += MR;
    }
    for i in i..mb {
        let mut acc = [0.0f32; NR];
        for kk in 0..k {
            let ar = lhs.scalar(a, i, kk);
            let brow = &b[kk * n..(kk + 1) * n];
            for (l, &bv) in acc[..n].iter_mut().zip(brow) {
                *l += ar * bv;
            }
        }
        out[i * n..(i + 1) * n].copy_from_slice(&acc[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifier_pins_known_shapes() {
        // 1xK . KxN: vector-matrix.
        assert_eq!(classify(1, 256, false), GemmClass::VecMat);
        // Skinny-M below the row tile.
        assert_eq!(classify(MR - 1, 64, false), GemmClass::VecMat);
        // 8xK . Kx4: output narrower than a column strip.
        assert_eq!(classify(8, 4, false), GemmClass::SkinnyN);
        // Square fills both tiles.
        assert_eq!(classify(64, 64, false), GemmClass::Square);
        assert_eq!(classify(MR, NR, false), GemmClass::Square);
        // The conv tag wins over shape.
        assert_eq!(classify(1, 1, true), GemmClass::Conv);
    }

    #[test]
    fn gemm_setting_parse_policy() {
        // Unset / empty / explicit auto: auto, no warning.
        assert_eq!(parse_gemm_setting(None), (GemmMode::Auto, false));
        assert_eq!(parse_gemm_setting(Some("")), (GemmMode::Auto, false));
        assert_eq!(parse_gemm_setting(Some("auto")), (GemmMode::Auto, false));
        assert_eq!(
            parse_gemm_setting(Some("generic")),
            (GemmMode::Generic, false)
        );
        // Anything else: fall back to auto, but loudly (one-time warning).
        for bad in ["Generic", "AUTO", " auto", "fast", "1", "maddubs"] {
            assert_eq!(parse_gemm_setting(Some(bad)), (GemmMode::Auto, true));
        }
    }

    #[test]
    fn mode_labels_are_stable() {
        // gemm_mode is process-cached; whatever it returns, the label must
        // agree with it.
        match gemm_mode() {
            GemmMode::Auto => assert_eq!(gemm_label(), "auto"),
            GemmMode::Generic => assert_eq!(gemm_label(), "generic"),
        }
    }
}
