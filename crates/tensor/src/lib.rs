//! # edd-tensor
//!
//! A from-scratch reverse-mode automatic-differentiation tensor engine,
//! built as the training substrate for the EDD (Efficient Differentiable
//! DNN architecture and implementation co-search, DAC 2020) reproduction.
//!
//! The crate provides:
//!
//! * [`Array`] — dense row-major `f32` storage with NumPy-style broadcasting,
//!   GEMM, and `im2col`/`col2im` convolution lowering;
//! * [`kernel`] — the blocked, register-tiled GEMM kernel layer underneath
//!   `Array::matmul` and the convolutions, running on a persistent worker
//!   pool ([`kernel::pool`]) sized by `EDD_NUM_THREADS` (read once, test
//!   override via [`kernel::set_num_threads`]), with a scalar reference
//!   oracle (`matmul_naive`);
//! * [`scratch`] — a thread-local bump-allocator arena for the short-lived
//!   buffers (im2col columns, gradient partials) the hot paths would
//!   otherwise `vec![0.0; n]` on every call;
//! * [`recycle`] — thread-local exact-length free lists that recycle
//!   [`Array`] value/grad storage across training steps, making the
//!   steady-state step allocation-free (every `Array` drop feeds the pool);
//! * [`Tensor`] — a define-by-run autodiff graph node with operations
//!   covering everything the EDD supernet needs: convolutions (standard and
//!   depthwise), batch normalization, pooling, softmax / cross-entropy,
//!   Gumbel-Softmax sampling, straight-through fake quantization, smooth
//!   maximum (Log-Sum-Exp), and elementwise math;
//! * [`optim`] — SGD (momentum) and Adam optimizers plus gradient clipping
//!   and a cosine learning-rate schedule;
//! * [`qkernel`] — the integer inference substrate: symmetric int8/int4
//!   quantization, i32-accumulator GEMM/depthwise kernels, and gemmlowp-style
//!   fixed-point requantization, running derived architectures entirely in
//!   integer arithmetic at their Φ-searched precisions;
//! * [`stats`] — relaxed-atomic kernel-runtime counters (pool utilization,
//!   tasks dispatched, scratch high-water) sampled by monitoring layers;
//! * [`gradcheck`] — finite-difference gradient verification used across the
//!   workspace's test suites.
//!
//! # Example
//!
//! ```
//! use edd_tensor::{Array, Tensor};
//! use edd_tensor::optim::{Optimizer, Sgd};
//!
//! // Fit y = 2x with a single weight.
//! let w = Tensor::param(Array::scalar(0.0));
//! let mut opt = Sgd::new(vec![w.clone()], 0.1, 0.0, 0.0);
//! for _ in 0..100 {
//!     opt.zero_grad();
//!     let x = Tensor::scalar(3.0);
//!     let target = Tensor::scalar(6.0);
//!     let pred = w.mul(&x).unwrap();
//!     let loss = pred.sub(&target).unwrap().square().sum();
//!     loss.backward();
//!     opt.step();
//! }
//! assert!((w.item() - 2.0).abs() < 1e-3);
//! ```

#![warn(missing_docs)]

mod array;
mod error;
pub mod gradcheck;
pub mod kernel;
mod ops;
pub mod optim;
pub mod qkernel;
pub mod recycle;
pub mod scratch;
pub mod shape;
pub mod stats;
mod tensor;

pub use array::{col2im, col2im_into, im2col, im2col_into, Array, Conv2dGeometry};
pub use error::{Result, TensorError};
pub use ops::gumbel::{gumbel_noise, gumbel_softmax, softmax_selection};
pub use ops::softmax::{accuracy, softmax_last_axis, top_k_accuracy};
pub use ops::{quantization_error, BatchNormOutput};
pub use tensor::{Tensor, ValueRef};
