//! Elementwise arithmetic ops (broadcasting) and their gradients.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::kernel::pool::{self, SendPtr};
use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise addition with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().add(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.reduce_to(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    b.accumulate_grad(&g.reduce_to(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Fused sum of `terms`, all of the same shape: one output allocation
    /// and one traversal instead of the `M − 1` intermediate tensors a
    /// chained `add` would build. Elements accumulate in ascending term
    /// order, so the result is bitwise identical to the sequential chain
    /// for any thread count. Backward is the identity into every parent.
    ///
    /// This is the combine step of the DARTS-style all-branch mixture:
    /// `M` candidate outputs blended into one activation.
    ///
    /// # Errors
    ///
    /// Returns an error when `terms` is empty or the shapes differ.
    pub fn add_n(terms: &[Tensor]) -> Result<Tensor> {
        let Some(first) = terms.first() else {
            return Err(TensorError::InvalidArgument(
                "add_n requires at least one term".into(),
            ));
        };
        let shape = first.shape();
        for t in &terms[1..] {
            if t.shape() != shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: shape,
                    rhs: t.shape(),
                    op: "add_n",
                });
            }
        }
        let guards: Vec<_> = terms.iter().map(Tensor::value).collect();
        let slices: Vec<&[f32]> = guards.iter().map(|g| g.data()).collect();
        let n = slices[0].len();
        let mut out = vec![0.0f32; n];
        let threads = if n < kernel::PAR_MIN_ELEMS {
            1
        } else {
            kernel::num_threads()
        };
        let ranges = kernel::partition(n, threads);
        let sum_range = |dst: &mut [f32], lo: usize| {
            for (i, d) in dst.iter_mut().enumerate() {
                let mut acc = slices[0][lo + i];
                for s in &slices[1..] {
                    acc += s[lo + i];
                }
                *d = acc;
            }
        };
        if ranges.len() <= 1 {
            sum_range(&mut out, 0);
        } else {
            let base = SendPtr::new(out.as_mut_ptr());
            pool::run(ranges.len(), &|t| {
                let r = &ranges[t];
                // SAFETY: disjoint partition ranges → disjoint windows.
                sum_range(unsafe { base.slice(r.start, r.len()) }, r.start);
            });
        }
        drop(slices);
        drop(guards);
        let value = Array::from_vec(out, &shape)?;
        let parents: Vec<Tensor> = terms.to_vec();
        Ok(Tensor::from_op(
            value,
            parents.clone(),
            Box::new(move |g| {
                for p in &parents {
                    if p.requires_grad() {
                        p.accumulate_grad(g);
                    }
                }
            }),
        ))
    }

    /// Elementwise subtraction with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().sub(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.reduce_to(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    let neg = g.map(|v| -v);
                    b.accumulate_grad(&neg.reduce_to(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise multiplication with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().mul(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        let (va, vb) = (self.value_clone(), other.value_clone());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let ga = g.mul(&vb).expect("broadcast-checked");
                    a.accumulate_grad(&ga.reduce_to(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    let gb = g.mul(&va).expect("broadcast-checked");
                    b.accumulate_grad(&gb.reduce_to(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise division with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().div(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        let (va, vb) = (self.value_clone(), other.value_clone());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let ga = g.div(&vb).expect("broadcast-checked");
                    a.accumulate_grad(&ga.reduce_to(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    // d/db (a/b) = -a / b^2
                    let b2 = vb.mul(&vb).expect("same-shape");
                    let gb = g
                        .mul(&va)
                        .expect("broadcast-checked")
                        .div(&b2)
                        .expect("broadcast-checked")
                        .map(|v| -v);
                    b.accumulate_grad(&gb.reduce_to(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise negation.
    #[must_use]
    pub fn neg(&self) -> Tensor {
        let value = self.value().map(|v| -v);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.map(|v| -v));
                }
            }),
        )
    }

    /// Adds a scalar constant to every element.
    #[must_use]
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let value = self.value().map(|v| v + s);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(g);
                }
            }),
        )
    }

    /// Multiplies every element by a scalar constant.
    #[must_use]
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let value = self.value().map(|v| v * s);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad(&g.map(|v| v * s));
                }
            }),
        )
    }

    /// Raises every element to the power `p` (elementwise `v^p`).
    ///
    /// Gradients use `p * v^(p-1)`; for non-integer `p` the input should be
    /// positive.
    #[must_use]
    pub fn powf(&self, p: f32) -> Tensor {
        let value = self.value().map(|v| v.powf(p));
        let a = self.clone();
        let va = self.value_clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let dv = va.map(|v| p * v.powf(p - 1.0));
                    a.accumulate_grad(&g.mul(&dv).expect("same-shape"));
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(Array::from_vec(v, s).unwrap())
    }

    #[test]
    fn add_n_matches_chained_add_and_grads_every_parent() {
        let terms: Vec<Tensor> = (0..5)
            .map(|m| t(vec![m as f32, 1.0 + m as f32, -0.5 * m as f32], &[3]))
            .collect();
        let fused = Tensor::add_n(&terms).unwrap();
        let mut chained = terms[0].clone();
        for term in &terms[1..] {
            chained = chained.add(term).unwrap();
        }
        assert_eq!(fused.value().data(), chained.value().data());
        fused.sum().backward();
        for term in &terms {
            assert_eq!(term.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn add_n_single_term_is_identity_with_grad() {
        let a = t(vec![2.0, -3.0], &[2]);
        let y = Tensor::add_n(std::slice::from_ref(&a)).unwrap();
        assert_eq!(y.value().data(), &[2.0, -3.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_n_validates() {
        assert!(Tensor::add_n(&[]).is_err());
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        assert!(Tensor::add_n(&[a, b]).is_err());
    }

    #[test]
    fn add_grad_both_sides() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![3.0, 4.0], &[2]);
        let y = a.add(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_broadcast_grad_reduces() {
        // [2,3] + [3]: bias grad sums over the batch axis.
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 3], &[3]);
        let y = a.add(&b).unwrap().sum();
        y.backward();
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn sub_grad_signs() {
        let a = t(vec![5.0], &[1]);
        let b = t(vec![3.0], &[1]);
        let y = a.sub(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0]);
        assert_eq!(b.grad().unwrap().data(), &[-1.0]);
    }

    #[test]
    fn mul_grad_cross() {
        let a = t(vec![2.0], &[1]);
        let b = t(vec![7.0], &[1]);
        let y = a.mul(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[7.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn div_grad() {
        let a = t(vec![6.0], &[1]);
        let b = t(vec![3.0], &[1]);
        let y = a.div(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0 / 3.0]);
        assert!((b.grad().unwrap().data()[0] - (-6.0 / 9.0)).abs() < 1e-6);
    }

    #[test]
    fn neg_grad() {
        let a = t(vec![4.0], &[1]);
        let y = a.neg().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[-1.0]);
    }

    #[test]
    fn scalar_ops_grad() {
        let a = t(vec![3.0], &[1]);
        let y = a.mul_scalar(5.0).add_scalar(1.0).sum();
        y.backward();
        assert_eq!(y.item(), 16.0);
        assert_eq!(a.grad().unwrap().data(), &[5.0]);
    }

    #[test]
    fn powf_grad() {
        let a = t(vec![2.0], &[1]);
        let y = a.powf(3.0).sum();
        y.backward();
        assert_eq!(y.item(), 8.0);
        assert_eq!(a.grad().unwrap().data(), &[12.0]); // 3 * 2^2
    }

    #[test]
    fn constant_branch_gets_no_grad() {
        let a = t(vec![1.0], &[1]);
        let c = Tensor::scalar(2.0);
        let y = a.mul(&c).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[2.0]);
        assert!(c.grad().is_none());
    }
}
