//! Elementwise arithmetic ops (broadcasting) and their gradients.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::kernel::pool::{self, SendPtr};
use crate::tensor::Tensor;

impl Tensor {
    /// Elementwise addition with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().add(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                let (need_a, need_b) = (a.requires_grad(), b.requires_grad());
                if need_a && need_b {
                    a.accumulate_grad_owned(g.reduce_to(&sa).expect("broadcast-checked"));
                    b.accumulate_grad_owned(g.reduce_to_owned(&sb).expect("broadcast-checked"));
                } else if need_a {
                    a.accumulate_grad_owned(g.reduce_to_owned(&sa).expect("broadcast-checked"));
                } else if need_b {
                    b.accumulate_grad_owned(g.reduce_to_owned(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Fused sum of `terms`, all of the same shape: one output allocation
    /// and one traversal instead of the `M − 1` intermediate tensors a
    /// chained `add` would build. Elements accumulate in ascending term
    /// order, so the result is bitwise identical to the sequential chain
    /// for any thread count. Backward is the identity into every parent.
    ///
    /// This is the combine step of the DARTS-style all-branch mixture:
    /// `M` candidate outputs blended into one activation.
    ///
    /// # Errors
    ///
    /// Returns an error when `terms` is empty or the shapes differ.
    pub fn add_n(terms: &[Tensor]) -> Result<Tensor> {
        let Some(first) = terms.first() else {
            return Err(TensorError::InvalidArgument(
                "add_n requires at least one term".into(),
            ));
        };
        let shape = first.shape();
        for t in &terms[1..] {
            if t.shape() != shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: shape,
                    rhs: t.shape(),
                    op: "add_n",
                });
            }
        }
        let guards: Vec<_> = terms.iter().map(Tensor::value).collect();
        let slices: Vec<&[f32]> = guards.iter().map(|g| g.data()).collect();
        let n = slices[0].len();
        // Recycled output storage; every element is written by sum_range.
        let mut out = crate::recycle::take(n);
        let threads = if n < kernel::PAR_MIN_ELEMS {
            1
        } else {
            kernel::num_threads()
        };
        let ranges = kernel::partition(n, threads);
        let sum_range = |dst: &mut [f32], lo: usize| {
            for (i, d) in dst.iter_mut().enumerate() {
                let mut acc = slices[0][lo + i];
                for s in &slices[1..] {
                    acc += s[lo + i];
                }
                *d = acc;
            }
        };
        if ranges.len() <= 1 {
            sum_range(&mut out, 0);
        } else {
            let base = SendPtr::new(out.as_mut_ptr());
            pool::run(ranges.len(), &|t| {
                let r = &ranges[t];
                // SAFETY: disjoint partition ranges → disjoint windows.
                sum_range(unsafe { base.slice(r.start, r.len()) }, r.start);
            });
        }
        drop(slices);
        drop(guards);
        let value = Array::from_vec(out, &shape)?;
        let parents: Vec<Tensor> = terms.to_vec();
        Ok(Tensor::from_op(
            value,
            parents.clone(),
            Box::new(move |g| {
                // Borrow for all but the last grad-requiring parent, which
                // takes the incoming gradient by move.
                let last = parents.iter().rposition(Tensor::requires_grad);
                for (i, p) in parents.iter().enumerate() {
                    if Some(i) != last && p.requires_grad() {
                        p.accumulate_grad(&g);
                    }
                }
                if let Some(i) = last {
                    parents[i].accumulate_grad_owned(g);
                }
            }),
        ))
    }

    /// Fused weighted combine `Σ_m weights[m] · terms[m]` of same-shape
    /// `terms` with a rank-1 `weights` tensor of length `terms.len()` — the
    /// DARTS-style mixture in one pass, without materializing the `M`
    /// scaled branch tensors a per-branch `mul` + [`Tensor::add_n`] chain
    /// would allocate.
    ///
    /// The forward value is **bitwise identical** to that unfused chain:
    /// per element the fused kernel forms each product and accumulates in
    /// ascending branch order, exactly the FP sequence of scalar-`mul`
    /// followed by `add_n` (see `kernel::weighted_sum_into`).
    ///
    /// Backward fans the `M` independent branch gradients out over the
    /// worker pool: task `m` computes `d terms[m] = g · weights[m]` and the
    /// weight gradient `d weights[m] = ⟨g, terms[m]⟩` into its own slot,
    /// and the slots are combined in ascending branch order — bitwise
    /// identical for any thread count.
    ///
    /// # Errors
    ///
    /// Returns an error when `terms` is empty, the term shapes differ, or
    /// `weights` is not rank-1 of length `terms.len()`.
    pub fn weighted_add_n(terms: &[Tensor], weights: &Tensor) -> Result<Tensor> {
        let Some(first) = terms.first() else {
            return Err(TensorError::InvalidArgument(
                "weighted_add_n requires at least one term".into(),
            ));
        };
        let shape = first.shape();
        for t in &terms[1..] {
            if t.shape() != shape {
                return Err(TensorError::ShapeMismatch {
                    lhs: shape,
                    rhs: t.shape(),
                    op: "weighted_add_n",
                });
            }
        }
        let m_count = terms.len();
        if weights.shape() != [m_count] {
            return Err(TensorError::InvalidShape {
                shape: weights.shape(),
                reason: format!("weighted_add_n weights must be rank-1 of length {m_count}"),
            });
        }
        let guards: Vec<_> = terms.iter().map(Tensor::value).collect();
        let slices: Vec<&[f32]> = guards.iter().map(|g| g.data()).collect();
        let wguard = weights.value();
        let ws = wguard.data();
        let n = slices[0].len();
        // Recycled output storage; weighted_sum_into overwrites everything.
        let mut out = crate::recycle::take(n);
        let threads = if n < kernel::PAR_MIN_ELEMS {
            1
        } else {
            kernel::num_threads()
        };
        let ranges = kernel::partition(n, threads);
        if ranges.len() <= 1 {
            kernel::weighted_sum_into(&mut out, &slices, ws);
        } else {
            let base = SendPtr::new(out.as_mut_ptr());
            pool::run(ranges.len(), &|t| {
                let r = &ranges[t];
                let sub: Vec<&[f32]> = slices.iter().map(|s| &s[r.start..r.end]).collect();
                // SAFETY: disjoint partition ranges → disjoint windows.
                kernel::weighted_sum_into(unsafe { base.slice(r.start, r.len()) }, &sub, ws);
            });
        }
        drop(slices);
        drop(guards);
        drop(wguard);
        let value = Array::from_vec(out, &shape)?;
        let branch_parents: Vec<Tensor> = terms.to_vec();
        let w_parent = weights.clone();
        let mut parents = branch_parents.clone();
        parents.push(weights.clone());
        Ok(Tensor::from_op(
            value,
            parents,
            Box::new(move |g| {
                let need_w = w_parent.requires_grad();
                let wvals: Vec<f32> = w_parent.value().data().to_vec();
                // Branch gradients are independent: fan them out over the
                // pool, each task writing only its own slot, then combine
                // in ascending branch order (thread-count invariant). Tasks
                // only *read* shared state, so aliased parents are safe —
                // all accumulation happens in the sequential combine.
                // Per-branch result slot: the term gradient (when the
                // branch requires one) and the scalar weight gradient.
                type BranchSlot = std::sync::Mutex<Option<(Option<Array>, f32)>>;
                let slots: Vec<BranchSlot> =
                    (0..m_count).map(|_| std::sync::Mutex::new(None)).collect();
                let gref = &g;
                let branches = &branch_parents;
                pool::run(m_count, &|mi| {
                    let p = &branches[mi];
                    let dt = p.requires_grad().then(|| gref.map(|v| v * wvals[mi]));
                    let dw = if need_w {
                        let tv = p.value();
                        kernel::dot8(gref.data(), tv.data())
                    } else {
                        0.0
                    };
                    *slots[mi].lock().expect("slot lock") = Some((dt, dw));
                });
                let mut dwv = Vec::with_capacity(m_count);
                for (mi, slot) in slots.into_iter().enumerate() {
                    let (dt, dw) = slot
                        .into_inner()
                        .expect("slot lock")
                        .expect("branch slot filled");
                    if let Some(dt) = dt {
                        branch_parents[mi].accumulate_grad_owned(dt);
                    }
                    dwv.push(dw);
                }
                if need_w {
                    w_parent.accumulate_grad_owned(
                        Array::from_vec(dwv, &[m_count]).expect("weights grad shape"),
                    );
                }
            }),
        ))
    }

    /// Elementwise subtraction with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().sub(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    if b.requires_grad() {
                        a.accumulate_grad_owned(g.reduce_to(&sa).expect("broadcast-checked"));
                    } else {
                        a.accumulate_grad_owned(g.reduce_to_owned(&sa).expect("broadcast-checked"));
                        return;
                    }
                }
                if b.requires_grad() {
                    let mut neg = g;
                    neg.map_inplace(|v| -v);
                    b.accumulate_grad_owned(neg.reduce_to_owned(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise multiplication with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().mul(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            // Operand values are read back through the parent handles at
            // backward time instead of cloning them into the closure at
            // forward time (value guards are dropped before accumulating,
            // since either parent may alias the other, e.g. `x.mul(&x)`).
            Box::new(move |g| {
                if a.requires_grad() {
                    let ga = {
                        let vb = b.value();
                        g.mul(&vb).expect("broadcast-checked")
                    };
                    a.accumulate_grad_owned(ga.reduce_to_owned(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    let gb = {
                        let va = a.value();
                        g.mul(&va).expect("broadcast-checked")
                    };
                    b.accumulate_grad_owned(gb.reduce_to_owned(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise division with NumPy broadcasting.
    ///
    /// # Errors
    ///
    /// Returns an error when the operand shapes do not broadcast.
    pub fn div(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().div(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        let (sa, sb) = (self.shape(), other.shape());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            // Values read back through the parent handles (guards dropped
            // before any accumulate; the parents may alias each other).
            Box::new(move |g| {
                if a.requires_grad() {
                    let ga = {
                        let vb = b.value();
                        g.div(&vb).expect("broadcast-checked")
                    };
                    a.accumulate_grad_owned(ga.reduce_to_owned(&sa).expect("broadcast-checked"));
                }
                if b.requires_grad() {
                    // d/db (a/b) = -a / b^2
                    let b2 = {
                        let vb = b.value();
                        vb.mul(&vb).expect("same-shape")
                    };
                    let mut gb = {
                        let va = a.value();
                        g.mul(&va)
                            .expect("broadcast-checked")
                            .div(&b2)
                            .expect("broadcast-checked")
                    };
                    gb.map_inplace(|v| -v);
                    b.accumulate_grad_owned(gb.reduce_to_owned(&sb).expect("broadcast-checked"));
                }
            }),
        ))
    }

    /// Elementwise negation.
    #[must_use]
    pub fn neg(&self) -> Tensor {
        let value = self.value().map(|v| -v);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut g = g;
                    g.map_inplace(|v| -v);
                    a.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Adds a scalar constant to every element.
    #[must_use]
    pub fn add_scalar(&self, s: f32) -> Tensor {
        let value = self.value().map(|v| v + s);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Multiplies every element by a scalar constant.
    #[must_use]
    pub fn mul_scalar(&self, s: f32) -> Tensor {
        let value = self.value().map(|v| v * s);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut g = g;
                    g.map_inplace(|v| v * s);
                    a.accumulate_grad_owned(g);
                }
            }),
        )
    }

    /// Raises every element to the power `p` (elementwise `v^p`).
    ///
    /// Gradients use `p * v^(p-1)`; for non-integer `p` the input should be
    /// positive.
    #[must_use]
    pub fn powf(&self, p: f32) -> Tensor {
        let value = self.value().map(|v| v.powf(p));
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let gd = {
                        let va = a.value();
                        g.zip_same(&va, |gv, v| gv * (p * v.powf(p - 1.0)))
                    };
                    a.accumulate_grad_owned(gd);
                }
            }),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(Array::from_vec(v, s).unwrap())
    }

    #[test]
    fn add_n_matches_chained_add_and_grads_every_parent() {
        let terms: Vec<Tensor> = (0..5)
            .map(|m| t(vec![m as f32, 1.0 + m as f32, -0.5 * m as f32], &[3]))
            .collect();
        let fused = Tensor::add_n(&terms).unwrap();
        let mut chained = terms[0].clone();
        for term in &terms[1..] {
            chained = chained.add(term).unwrap();
        }
        assert_eq!(fused.value().data(), chained.value().data());
        fused.sum().backward();
        for term in &terms {
            assert_eq!(term.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn add_n_single_term_is_identity_with_grad() {
        let a = t(vec![2.0, -3.0], &[2]);
        let y = Tensor::add_n(std::slice::from_ref(&a)).unwrap();
        assert_eq!(y.value().data(), &[2.0, -3.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_n_validates() {
        assert!(Tensor::add_n(&[]).is_err());
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        assert!(Tensor::add_n(&[a, b]).is_err());
    }

    /// Deterministic pseudo-random branch values for the mixture tests.
    fn mixture_terms(m_count: usize, n: usize) -> Vec<Tensor> {
        (0..m_count)
            .map(|m| {
                let v: Vec<f32> = (0..n)
                    .map(|i| ((i * 37 + m * 11) as f32 * 0.3).sin())
                    .collect();
                t(v, &[n])
            })
            .collect()
    }

    #[test]
    fn weighted_add_n_forward_is_bitwise_identical_to_unfused() {
        let terms = mixture_terms(4, 13);
        let weights = t(vec![0.37, 0.21, 0.15, 0.27], &[4]);
        let fused = Tensor::weighted_add_n(&terms, &weights).unwrap();
        // Unfused reference: per-branch scalar mul, then the add_n chain.
        let scaled: Vec<Tensor> = terms
            .iter()
            .enumerate()
            .map(|(m, term)| term.mul(&weights.select(m).unwrap()).unwrap())
            .collect();
        let unfused = Tensor::add_n(&scaled).unwrap();
        assert_eq!(fused.value().data(), unfused.value().data());
    }

    #[test]
    fn weighted_add_n_branch_grads_are_bitwise_identical_to_unfused() {
        let terms_f = mixture_terms(3, 9);
        let terms_u = mixture_terms(3, 9);
        let wv = vec![0.5, 0.3, 0.2];
        let weights_f = t(wv.clone(), &[3]);
        let weights_u = t(wv, &[3]);
        Tensor::weighted_add_n(&terms_f, &weights_f)
            .unwrap()
            .sum()
            .backward();
        let scaled: Vec<Tensor> = terms_u
            .iter()
            .enumerate()
            .map(|(m, term)| term.mul(&weights_u.select(m).unwrap()).unwrap())
            .collect();
        Tensor::add_n(&scaled).unwrap().sum().backward();
        for (tf, tu) in terms_f.iter().zip(&terms_u) {
            assert_eq!(tf.grad().unwrap().data(), tu.grad().unwrap().data());
        }
        // Weight gradients agree numerically (the fused kernel uses the
        // fixed 8-lane dot, the unfused path a broadcast-reduce).
        let gf = weights_f.grad().unwrap();
        let gu = weights_u.grad().unwrap();
        for (a, b) in gf.data().iter().zip(gu.data()) {
            assert!((a - b).abs() < 1e-5, "weight grad {a} vs {b}");
        }
    }

    #[test]
    fn weighted_add_n_gradients_match_finite_difference() {
        let m_count = 3;
        let n = 5;
        let base_w = [0.6, 0.25, 0.15];
        let loss_at = |wv: &[f32]| -> f32 {
            let terms = mixture_terms(m_count, n);
            let w = t(wv.to_vec(), &[m_count]);
            Tensor::weighted_add_n(&terms, &w)
                .unwrap()
                .square()
                .sum()
                .item()
        };
        let terms = mixture_terms(m_count, n);
        let w = t(base_w.to_vec(), &[m_count]);
        Tensor::weighted_add_n(&terms, &w)
            .unwrap()
            .square()
            .sum()
            .backward();
        let analytic = w.grad().unwrap();
        let eps = 1e-3;
        for m in 0..m_count {
            let mut hi = base_w.to_vec();
            let mut lo = base_w.to_vec();
            hi[m] += eps;
            lo[m] -= eps;
            let numeric = (loss_at(&hi) - loss_at(&lo)) / (2.0 * eps);
            let a = analytic.data()[m];
            assert!(
                (a - numeric).abs() < 1e-2 * (1.0 + numeric.abs()),
                "weight {m}: analytic {a} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn weighted_add_n_validates() {
        let w = t(vec![1.0], &[1]);
        assert!(Tensor::weighted_add_n(&[], &w).is_err());
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![1.0, 2.0, 3.0], &[3]);
        assert!(Tensor::weighted_add_n(&[a.clone(), b], &w).is_err());
        // Weights must be rank-1 of length M.
        let w2 = t(vec![1.0, 0.0], &[2]);
        assert!(Tensor::weighted_add_n(std::slice::from_ref(&a), &w2).is_err());
        let wmat = t(vec![1.0], &[1, 1]);
        assert!(Tensor::weighted_add_n(std::slice::from_ref(&a), &wmat).is_err());
    }

    #[test]
    fn add_grad_both_sides() {
        let a = t(vec![1.0, 2.0], &[2]);
        let b = t(vec![3.0, 4.0], &[2]);
        let y = a.add(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0]);
        assert_eq!(b.grad().unwrap().data(), &[1.0, 1.0]);
    }

    #[test]
    fn add_broadcast_grad_reduces() {
        // [2,3] + [3]: bias grad sums over the batch axis.
        let a = t(vec![0.0; 6], &[2, 3]);
        let b = t(vec![0.0; 3], &[3]);
        let y = a.add(&b).unwrap().sum();
        y.backward();
        assert_eq!(b.grad().unwrap().data(), &[2.0, 2.0, 2.0]);
    }

    #[test]
    fn sub_grad_signs() {
        let a = t(vec![5.0], &[1]);
        let b = t(vec![3.0], &[1]);
        let y = a.sub(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0]);
        assert_eq!(b.grad().unwrap().data(), &[-1.0]);
    }

    #[test]
    fn mul_grad_cross() {
        let a = t(vec![2.0], &[1]);
        let b = t(vec![7.0], &[1]);
        let y = a.mul(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[7.0]);
        assert_eq!(b.grad().unwrap().data(), &[2.0]);
    }

    #[test]
    fn div_grad() {
        let a = t(vec![6.0], &[1]);
        let b = t(vec![3.0], &[1]);
        let y = a.div(&b).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0 / 3.0]);
        assert!((b.grad().unwrap().data()[0] - (-6.0 / 9.0)).abs() < 1e-6);
    }

    #[test]
    fn neg_grad() {
        let a = t(vec![4.0], &[1]);
        let y = a.neg().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[-1.0]);
    }

    #[test]
    fn scalar_ops_grad() {
        let a = t(vec![3.0], &[1]);
        let y = a.mul_scalar(5.0).add_scalar(1.0).sum();
        y.backward();
        assert_eq!(y.item(), 16.0);
        assert_eq!(a.grad().unwrap().data(), &[5.0]);
    }

    #[test]
    fn powf_grad() {
        let a = t(vec![2.0], &[1]);
        let y = a.powf(3.0).sum();
        y.backward();
        assert_eq!(y.item(), 8.0);
        assert_eq!(a.grad().unwrap().data(), &[12.0]); // 3 * 2^2
    }

    #[test]
    fn constant_branch_gets_no_grad() {
        let a = t(vec![1.0], &[1]);
        let c = Tensor::scalar(2.0);
        let y = a.mul(&c).unwrap().sum();
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[2.0]);
        assert!(c.grad().is_none());
    }
}
