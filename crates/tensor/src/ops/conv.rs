//! 2-D convolution ops (standard and depthwise) in NCHW layout, with
//! GEMM-lowered forward (`im2col`) and hand-derived backward passes.
//!
//! Both convolutions run on the [`crate::kernel`] layer: the batch
//! dimension is split over scoped threads (each image's output slice is
//! disjoint, so results are bitwise independent of `EDD_NUM_THREADS`),
//! per-worker `im2col`/`dcols` buffers are reused across a worker's
//! images, and the backward GEMMs use the transpose-free kernel variants.

use crate::array::{col2im_into, im2col_into, Array, Conv2dGeometry};
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::scratch;
use crate::tensor::Tensor;

use crate::kernel::valid_out_range;

kernel::avx2_dispatch! {
    /// One depthwise output plane as `k*k` shifted-scaled row accumulations
    /// over precomputed valid ranges: branch-free inner loops (vectorizable
    /// for stride 1), and per output element the taps still accumulate in
    /// `(ky, kx)` order — the same association as the scalar reference loop.
    #[allow(clippy::too_many_arguments)] // plain plane geometry, kept flat
    dw_plane_forward / dw_plane_forward_scalar / dw_plane_forward_avx2,
    (
        dst: &mut [f32],
        src: &[f32],
        ker: &[f32],
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
        oh: usize,
        ow: usize,
    )
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw_plane_forward_scalar(
    dst: &mut [f32],
    src: &[f32],
    ker: &[f32],
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    // The search space's depthwise kernels are 3/5/7 at stride 1; route
    // them to the const-width stencil (fully unrolled tap chain, one pass
    // over the plane) and keep the tap-by-tap loop as the general fallback.
    if stride == 1 {
        match k {
            3 => return dw_plane_s1::<3>(dst, src, ker, h, w, pad, oh, ow),
            5 => return dw_plane_s1::<5>(dst, src, ker, h, w, pad, oh, ow),
            7 => return dw_plane_s1::<7>(dst, src, ker, h, w, pad, oh, ow),
            _ => {}
        }
    }
    dw_plane_taps(dst, src, ker, h, w, k, stride, pad, oh, ow);
}

/// Lanes per depthwise column group: eight outputs share one pass over the
/// taps, giving eight independent accumulator chains (one SIMD register)
/// instead of one serial `K*K`-add chain per element. Rows with at least
/// 16 outputs use the double-width group (two registers, one tap broadcast
/// for both) — the supernet's 16x16 feature planes are exactly one group.
const DW_GROUP: usize = 8;

/// Double-width depthwise group (see [`DW_GROUP`]).
const DW_GROUP2: usize = 16;

/// One `G`-wide group of stride-1 depthwise outputs anchored at column
/// `g0` of output row `oy`. Each lane accumulates its taps in ascending
/// `(ky, kx)` order — the group width only changes how many independent
/// chains run side by side, never the association within a chain.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw_group_s1<const K: usize, const G: usize>(
    drow: &mut [f32],
    padded: &[f32],
    ker: &[f32],
    pw: usize,
    oy: usize,
    pad: usize,
    ky0: usize,
    ky1: usize,
    g0: usize,
) {
    let mut acc = [0.0f32; G];
    for ky in ky0..ky1 {
        let sy = oy + ky - pad;
        let srow = &padded[sy * pw + g0..sy * pw + g0 + K - 1 + G];
        let krow = &ker[ky * K..ky * K + K];
        for kx in 0..K {
            let kv = krow[kx];
            let s = &srow[kx..kx + G];
            for (a, &sv) in acc.iter_mut().zip(s) {
                *a += kv * sv;
            }
        }
    }
    drow[g0..g0 + G].copy_from_slice(&acc);
}

/// Stride-1 depthwise stencil with a compile-time kernel width.
///
/// The plane is first copied into a horizontally zero-padded scratch image
/// (`ow + K - 1` columns) so *every* output column sees a full, branch-free
/// `kx` tap range; vertical clipping stays range-based per output row.
/// Outputs are produced in eight-lane groups (the last group is anchored at
/// `ow - 8` and may recompute a few columns of its predecessor).
///
/// Bitwise identity with the tap-skipping fallback: per element the taps
/// accumulate in ascending `(ky, kx)` order either way, and the extra
/// zero-pad taps contribute `kv * ±0.0`. Because every accumulator starts
/// at `+0.0`, it can never *become* `-0.0` (in round-to-nearest `x + (-x)`
/// is `+0.0` for `x != 0`, and `+0.0 + -0.0` is `+0.0`), and adding `±0.0`
/// to a non-negative-zero float is exact identity — so the padded chain
/// passes through exactly the same partial values as the skipping chain.
#[inline(always)]
#[allow(clippy::too_many_arguments)] // plain plane geometry, kept flat
fn dw_plane_s1<const K: usize>(
    dst: &mut [f32],
    src: &[f32],
    ker: &[f32],
    h: usize,
    w: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    let pw = ow + K - 1; // padded row width: sx = ox + kx spans [0, ow + K - 1)
    let mut padded = crate::scratch::alloc(h * pw);
    for sy in 0..h {
        let prow = &mut padded[sy * pw..(sy + 1) * pw];
        prow[..pad].fill(0.0);
        prow[pad..pad + w].copy_from_slice(&src[sy * w..(sy + 1) * w]);
        prow[pad + w..].fill(0.0);
    }
    let padded: &[f32] = &padded;
    for oy in 0..oh {
        // Valid `ky` taps for this output row (rows are not padded).
        let ky0 = pad.saturating_sub(oy);
        let ky1 = (h + pad).saturating_sub(oy).min(K);
        let drow = &mut dst[oy * ow..(oy + 1) * ow];
        if ow >= DW_GROUP2 {
            let mut gx = 0;
            loop {
                let g0 = gx.min(ow - DW_GROUP2);
                dw_group_s1::<K, DW_GROUP2>(drow, padded, ker, pw, oy, pad, ky0, ky1, g0);
                if g0 == ow - DW_GROUP2 {
                    break;
                }
                gx += DW_GROUP2;
            }
        } else if ow >= DW_GROUP {
            let mut gx = 0;
            loop {
                let g0 = gx.min(ow - DW_GROUP);
                dw_group_s1::<K, DW_GROUP>(drow, padded, ker, pw, oy, pad, ky0, ky1, g0);
                if g0 == ow - DW_GROUP {
                    break;
                }
                gx += DW_GROUP;
            }
        } else {
            for (ox, d) in drow.iter_mut().enumerate() {
                let mut acc = 0.0f32;
                for ky in ky0..ky1 {
                    let sy = oy + ky - pad;
                    let srow = &padded[sy * pw + ox..sy * pw + ox + K];
                    let krow = &ker[ky * K..ky * K + K];
                    for (kv, &sv) in krow.iter().zip(srow) {
                        acc += kv * sv;
                    }
                }
                *d = acc;
            }
        }
    }
}

/// General tap-by-tap depthwise plane: `k*k` shifted-scaled row
/// accumulations over precomputed valid ranges.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw_plane_taps(
    dst: &mut [f32],
    src: &[f32],
    ker: &[f32],
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    dst.fill(0.0);
    for ky in 0..k {
        let (oy0, oy1) = valid_out_range(ky, pad, stride, h, oh);
        for kx in 0..k {
            let kv = ker[ky * k + kx];
            let (ox0, ox1) = valid_out_range(kx, pad, stride, w, ow);
            if ox0 >= ox1 {
                continue;
            }
            for oy in oy0..oy1 {
                // In-bounds by construction of the valid ranges.
                let sy = oy * stride + ky - pad;
                let sx0 = ox0 * stride + kx - pad;
                let dst_row = &mut dst[oy * ow + ox0..oy * ow + ox1];
                if stride == 1 {
                    let src_row = &src[sy * w + sx0..sy * w + sx0 + (ox1 - ox0)];
                    for (d, &s) in dst_row.iter_mut().zip(src_row) {
                        *d += kv * s;
                    }
                } else {
                    let src_row = &src[sy * w..(sy + 1) * w];
                    for (j, d) in dst_row.iter_mut().enumerate() {
                        *d += kv * src_row[sx0 + j * stride];
                    }
                }
            }
        }
    }
}

kernel::avx2_dispatch! {
    /// Depthwise backward for one (image, channel) plane in tap-gather
    /// form: the `k*k` taps walk precomputed valid output ranges, so the
    /// inner loops are branch-free — `dx` rows accumulate shifted axpy
    /// passes over contiguous `gy` rows and each `dw` tap reduces row dot
    /// products ([`kernel::dot8`], fixed eight-lane association). Per `dx`
    /// element the taps apply in ascending `(ky, kx)` order and the caller
    /// reduces per-image `dw` partials in batch order, so results stay
    /// bitwise identical across thread counts and SIMD modes.
    #[allow(clippy::too_many_arguments)] // plain plane geometry, kept flat
    dw_plane_backward / dw_plane_backward_scalar / dw_plane_backward_avx2,
    (
        dx: Option<&mut [f32]>,
        dw: Option<&mut [f32]>,
        src: &[f32],
        ker: &[f32],
        gy: &[f32],
        h: usize,
        w: usize,
        k: usize,
        stride: usize,
        pad: usize,
        oh: usize,
        ow: usize,
    )
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn dw_plane_backward_scalar(
    dx: Option<&mut [f32]>,
    dw: Option<&mut [f32]>,
    src: &[f32],
    ker: &[f32],
    gy: &[f32],
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
) {
    if let Some(dx) = dx {
        for ky in 0..k {
            let (oy0, oy1) = valid_out_range(ky, pad, stride, h, oh);
            for kx in 0..k {
                let kv = ker[ky * k + kx];
                let (ox0, ox1) = valid_out_range(kx, pad, stride, w, ow);
                if ox0 >= ox1 {
                    continue;
                }
                for oy in oy0..oy1 {
                    // In-bounds by construction of the valid ranges.
                    let sy = oy * stride + ky - pad;
                    let sx0 = ox0 * stride + kx - pad;
                    let gy_row = &gy[oy * ow + ox0..oy * ow + ox1];
                    if stride == 1 {
                        let dst_row = &mut dx[sy * w + sx0..sy * w + sx0 + (ox1 - ox0)];
                        for (d, &g) in dst_row.iter_mut().zip(gy_row) {
                            *d += kv * g;
                        }
                    } else {
                        let dst_row = &mut dx[sy * w..(sy + 1) * w];
                        for (j, &g) in gy_row.iter().enumerate() {
                            dst_row[sx0 + j * stride] += kv * g;
                        }
                    }
                }
            }
        }
    }
    if let Some(dw) = dw {
        for ky in 0..k {
            let (oy0, oy1) = valid_out_range(ky, pad, stride, h, oh);
            for kx in 0..k {
                let (ox0, ox1) = valid_out_range(kx, pad, stride, w, ow);
                if ox0 >= ox1 {
                    continue;
                }
                let mut acc = 0.0f32;
                for oy in oy0..oy1 {
                    let sy = oy * stride + ky - pad;
                    let sx0 = ox0 * stride + kx - pad;
                    let gy_row = &gy[oy * ow + ox0..oy * ow + ox1];
                    if stride == 1 {
                        acc += kernel::dot8(gy_row, &src[sy * w + sx0..sy * w + sx0 + (ox1 - ox0)]);
                    } else {
                        let src_row = &src[sy * w..(sy + 1) * w];
                        let mut row = 0.0f32;
                        for (j, &g) in gy_row.iter().enumerate() {
                            row += g * src_row[sx0 + j * stride];
                        }
                        acc += row;
                    }
                }
                dw[ky * k + kx] += acc;
            }
        }
    }
}

/// Validates NCHW input and returns `(batch, channels, h, w)`.
fn nchw(shape: &[usize], op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if shape.len() != 4 {
        return Err(TensorError::InvalidShape {
            shape: shape.to_vec(),
            reason: format!("{op} expects NCHW rank-4 input"),
        });
    }
    Ok((shape[0], shape[1], shape[2], shape[3]))
}

impl Tensor {
    /// Standard 2-D convolution.
    ///
    /// * `self` — input `[batch, in_c, h, w]`
    /// * `weight` — `[out_c, in_c, k, k]`
    /// * `bias` — optional `[out_c]`
    ///
    /// Lowered to GEMM via `im2col`; the backward pass recomputes the column
    /// matrix rather than caching it, trading FLOPs for memory (the graphs
    /// built by the EDD supernet hold many convolution nodes alive at once).
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches or a kernel larger than the
    /// padded input.
    pub fn conv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        padding: usize,
    ) -> Result<Tensor> {
        let x_shape = self.shape();
        let w_shape = weight.shape();
        let (b, in_c, h, w) = nchw(&x_shape, "conv2d")?;
        if w_shape.len() != 4 || w_shape[1] != in_c || w_shape[2] != w_shape[3] {
            return Err(TensorError::ShapeMismatch {
                lhs: x_shape.clone(),
                rhs: w_shape.clone(),
                op: "conv2d",
            });
        }
        let (out_c, k) = (w_shape[0], w_shape[2]);
        if stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be >= 1".into()));
        }
        if h + 2 * padding < k || w + 2 * padding < k {
            return Err(TensorError::InvalidShape {
                shape: x_shape.clone(),
                reason: format!("kernel {k} larger than padded input {h}x{w}+{padding}"),
            });
        }
        if let Some(bt) = bias {
            if bt.shape() != [out_c] {
                return Err(TensorError::ShapeMismatch {
                    lhs: bt.shape(),
                    rhs: vec![out_c],
                    op: "conv2d bias",
                });
            }
        }
        let geom = Conv2dGeometry {
            in_channels: in_c,
            in_h: h,
            in_w: w,
            kernel: k,
            stride,
            padding,
        };
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let ckk = in_c * k * k;
        let plane = oh * ow;
        // For a 1x1 stride-1 unpadded convolution the im2col matrix *is*
        // the input image ([in_c, h*w] == [ckk, plane], byte for byte), and
        // col2im is the identity scatter. Index the image directly instead
        // of copying it — results are bitwise unchanged. This is the hot
        // shape: MBConv expand/project convolutions are all 1x1.
        let identity_cols = k == 1 && stride == 1 && padding == 0;
        let w2 = weight.value().reshape(&[out_c, ckk])?;
        let img = in_c * h * w;
        // The batched GEMM below overwrites every output element, so the
        // buffer can start uninitialized (pool-recycled without zeroing).
        let mut out = Array::uninit(&[b, out_c, oh, ow]);
        {
            let w2d = w2.data();
            // Input read through the value guard (no clone); the guard is
            // dropped at the end of this block.
            let xv = self.value();
            let xd = xv.data();
            // Parallelize over the batch; each worker reuses one
            // arena-backed column buffer (im2col overwrites every entry,
            // so the stale contents are fine). With a single image the
            // inner GEMM threads instead.
            let threads = kernel::num_threads().min(b);
            let inner = if threads > 1 {
                1
            } else {
                kernel::num_threads()
            };
            kernel::par_batch_with(
                b,
                out.data_mut(),
                out_c * plane,
                threads,
                || scratch::alloc(if identity_cols { 0 } else { ckk * plane }),
                |cols, bi, dst| {
                    let x_img = &xd[bi * img..(bi + 1) * img];
                    if identity_cols {
                        // 1x1 channel mixing is a plain GEMM, not an im2col
                        // lowering: let the selector classify it by shape.
                        kernel::matmul_into_threads(dst, w2d, x_img, out_c, ckk, plane, inner);
                    } else {
                        im2col_into(cols, x_img, &geom);
                        kernel::matmul_conv_into_threads(dst, w2d, cols, out_c, ckk, plane, inner);
                    }
                },
            );
        }
        if let Some(bt) = bias {
            let bv = bt.value_clone();
            let plane = oh * ow;
            for bi in 0..b {
                for c in 0..out_c {
                    let base = (bi * out_c + c) * plane;
                    let bval = bv.data()[c];
                    for v in &mut out.data_mut()[base..base + plane] {
                        *v += bval;
                    }
                }
            }
        }

        let x_t = self.clone();
        let w_t = weight.clone();
        let b_t = bias.cloned();
        let w2_saved = w2;
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bt) = bias {
            parents.push(bt.clone());
        }
        Ok(Tensor::from_op(
            out,
            parents,
            Box::new(move |g| {
                let plane = oh * ow;
                // Bias gradient: sum over batch and spatial dims.
                if let Some(bt) = &b_t {
                    if bt.requires_grad() {
                        let mut db = Array::zeros(&[out_c]);
                        for bi in 0..b {
                            for c in 0..out_c {
                                let base = (bi * out_c + c) * plane;
                                db.data_mut()[c] +=
                                    g.data()[base..base + plane].iter().sum::<f32>();
                            }
                        }
                        bt.accumulate_grad_owned(db);
                    }
                }
                let need_x = x_t.requires_grad();
                let need_w = w_t.requires_grad();
                if !need_x && !need_w {
                    return;
                }
                let ckk = in_c * k * k;
                // Per-image output buffers (chunk size 0 when a gradient is
                // not needed): disjoint writes keep the batch-parallel pass
                // bitwise independent of the thread count.
                let xlen = if need_x { img } else { 0 };
                let wlen = if need_w { out_c * ckk } else { 0 };
                let mut dxd = crate::recycle::take_zeroed(b * xlen);
                let mut dwp = scratch::alloc_zeroed(b * wlen);
                {
                    let gd = g.data();
                    // The input is re-read through the parent handle at
                    // backward time (read lock on a distinct node); the
                    // guard drops with this block, before accumulation.
                    let xv = x_t.value();
                    let xd = xv.data();
                    let w2d = w2_saved.data();
                    let threads = kernel::num_threads().min(b);
                    let inner = if threads > 1 {
                        1
                    } else {
                        kernel::num_threads()
                    };
                    kernel::par_batch2_with(
                        b,
                        &mut dxd,
                        xlen,
                        &mut dwp,
                        wlen,
                        threads,
                        // Recomputed column matrix plus its gradient
                        // (arena-backed, fully overwritten before reads),
                        // reused across the worker's images. The 1x1
                        // stride-1 case needs neither buffer.
                        || {
                            let cols_len = if identity_cols { 0 } else { ckk * plane };
                            (
                                scratch::alloc(cols_len),
                                scratch::alloc(if need_x { cols_len } else { 0 }),
                            )
                        },
                        |(cols, dcols), bi, dxs, dws| {
                            let x_img = &xd[bi * img..(bi + 1) * img];
                            let gy = &gd[bi * out_c * plane..(bi + 1) * out_c * plane];
                            if identity_cols {
                                if need_w {
                                    // dW2 = dY · Xᵀ directly on the image.
                                    kernel::matmul_a_bt_into_threads(
                                        dws, gy, x_img, out_c, plane, ckk, inner,
                                    );
                                }
                                if need_x {
                                    // dX = W2ᵀ · dY straight into the image
                                    // gradient slot (col2im is the identity).
                                    kernel::matmul_at_b_into_threads(
                                        dxs, w2d, gy, out_c, ckk, plane, inner,
                                    );
                                }
                                return;
                            }
                            im2col_into(cols, x_img, &geom);
                            if need_w {
                                // dW2 = dY · colsᵀ, transpose-free.
                                kernel::matmul_a_bt_into_threads(
                                    dws, gy, cols, out_c, plane, ckk, inner,
                                );
                            }
                            if need_x {
                                // dcols = W2ᵀ · dY, transpose-free.
                                kernel::matmul_at_b_into_threads(
                                    dcols, w2d, gy, out_c, ckk, plane, inner,
                                );
                                col2im_into(dcols, &geom, dxs);
                            }
                        },
                    );
                }
                if need_w {
                    // Reduce per-image partials in fixed image order, so the
                    // weight gradient is identical for any thread count.
                    let mut dw2 = Array::zeros(&[out_c, ckk]);
                    if wlen > 0 {
                        for part in dwp.chunks_exact(wlen) {
                            for (d, &s) in dw2.data_mut().iter_mut().zip(part) {
                                *d += s;
                            }
                        }
                    }
                    w_t.accumulate_grad_owned(
                        dw2.reshape(&[out_c, in_c, k, k]).expect("weight reshape"),
                    );
                }
                if need_x {
                    let dx = Array::from_vec(dxd, &[b, in_c, h, w]).expect("dx shape");
                    x_t.accumulate_grad_owned(dx);
                }
            }),
        ))
    }

    /// Depthwise 2-D convolution: each channel is convolved with its own
    /// `k×k` filter.
    ///
    /// * `self` — input `[batch, c, h, w]`
    /// * `weight` — `[c, k, k]`
    /// * `bias` — optional `[c]`
    ///
    /// # Errors
    ///
    /// Returns an error on rank/shape mismatches.
    pub fn dwconv2d(
        &self,
        weight: &Tensor,
        bias: Option<&Tensor>,
        stride: usize,
        padding: usize,
    ) -> Result<Tensor> {
        let x_shape = self.shape();
        let w_shape = weight.shape();
        let (b, c, h, w) = nchw(&x_shape, "dwconv2d")?;
        if w_shape.len() != 3 || w_shape[0] != c || w_shape[1] != w_shape[2] {
            return Err(TensorError::ShapeMismatch {
                lhs: x_shape.clone(),
                rhs: w_shape.clone(),
                op: "dwconv2d",
            });
        }
        let k = w_shape[1];
        if stride == 0 {
            return Err(TensorError::InvalidArgument("stride must be >= 1".into()));
        }
        if h + 2 * padding < k || w + 2 * padding < k {
            return Err(TensorError::InvalidShape {
                shape: x_shape.clone(),
                reason: "kernel larger than padded input".into(),
            });
        }
        if let Some(bt) = bias {
            if bt.shape() != [c] {
                return Err(TensorError::ShapeMismatch {
                    lhs: bt.shape(),
                    rhs: vec![c],
                    op: "dwconv2d bias",
                });
            }
        }
        let oh = (h + 2 * padding - k) / stride + 1;
        let ow = (w + 2 * padding - k) / stride + 1;
        // Every output plane is fully written by the stencil, so the buffer
        // can start uninitialized (pool-recycled without zeroing).
        let mut out = Array::uninit(&[b, c, oh, ow]);
        {
            // Operands read through value guards (no clones); the guards
            // drop at the end of this block.
            let xv = self.value();
            let wv = weight.value();
            let xd = xv.data();
            let wd = wv.data();
            let threads = kernel::num_threads().min(b * c);
            kernel::par_batch_with(
                b * c,
                out.data_mut(),
                oh * ow,
                threads,
                || (),
                |(), pi, dst| {
                    let ci = pi % c;
                    let src = &xd[pi * h * w..(pi + 1) * h * w];
                    let ker = &wd[ci * k * k..(ci + 1) * k * k];
                    dw_plane_forward(dst, src, ker, h, w, k, stride, padding, oh, ow);
                },
            );
        }
        if let Some(bt) = bias {
            let bv = bt.value_clone();
            let plane = oh * ow;
            for bi in 0..b {
                for ci in 0..c {
                    let base = (bi * c + ci) * plane;
                    let bval = bv.data()[ci];
                    for v in &mut out.data_mut()[base..base + plane] {
                        *v += bval;
                    }
                }
            }
        }

        let x_t = self.clone();
        let w_t = weight.clone();
        let b_t = bias.cloned();
        let mut parents = vec![self.clone(), weight.clone()];
        if let Some(bt) = bias {
            parents.push(bt.clone());
        }
        Ok(Tensor::from_op(
            out,
            parents,
            Box::new(move |g| {
                let plane = oh * ow;
                if let Some(bt) = &b_t {
                    if bt.requires_grad() {
                        let mut db = Array::zeros(&[c]);
                        for bi in 0..b {
                            for ci in 0..c {
                                let base = (bi * c + ci) * plane;
                                db.data_mut()[ci] +=
                                    g.data()[base..base + plane].iter().sum::<f32>();
                            }
                        }
                        bt.accumulate_grad_owned(db);
                    }
                }
                let need_x = x_t.requires_grad();
                let need_w = w_t.requires_grad();
                if !need_x && !need_w {
                    return;
                }
                // Per-image buffers (chunk 0 when unused); dw partials are
                // reduced in image order below for thread-count-independent
                // results.
                let img = c * h * w;
                let xlen = if need_x { img } else { 0 };
                let wlen = if need_w { c * k * k } else { 0 };
                let mut dxd = crate::recycle::take_zeroed(b * xlen);
                let mut dwp = scratch::alloc_zeroed(b * wlen);
                {
                    let gd = g.data();
                    // Operands re-read through the parent handles (read
                    // locks on distinct nodes); guards drop with this
                    // block, before accumulation.
                    let xv = x_t.value();
                    let wv = w_t.value();
                    let xd = xv.data();
                    let wd = wv.data();
                    let threads = kernel::num_threads().min(b);
                    kernel::par_batch2_with(
                        b,
                        &mut dxd,
                        xlen,
                        &mut dwp,
                        wlen,
                        threads,
                        || (),
                        |(), bi, dxs, dws| {
                            for ci in 0..c {
                                let src = &xd[(bi * c + ci) * h * w..(bi * c + ci + 1) * h * w];
                                let ker = &wd[ci * k * k..(ci + 1) * k * k];
                                let gy = &gd[(bi * c + ci) * plane..(bi * c + ci + 1) * plane];
                                let dx = if need_x {
                                    Some(&mut dxs[ci * h * w..(ci + 1) * h * w])
                                } else {
                                    None
                                };
                                let dwt = if need_w {
                                    Some(&mut dws[ci * k * k..(ci + 1) * k * k])
                                } else {
                                    None
                                };
                                dw_plane_backward(
                                    dx, dwt, src, ker, gy, h, w, k, stride, padding, oh, ow,
                                );
                            }
                        },
                    );
                }
                if need_w {
                    let mut dw = Array::zeros(&[c, k, k]);
                    if wlen > 0 {
                        for part in dwp.chunks_exact(wlen) {
                            for (d, &s) in dw.data_mut().iter_mut().zip(part) {
                                *d += s;
                            }
                        }
                    }
                    w_t.accumulate_grad_owned(dw);
                }
                if need_x {
                    let dx = Array::from_vec(dxd, &[b, c, h, w]).expect("dx shape");
                    x_t.accumulate_grad_owned(dx);
                }
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conv1x1_is_channel_mixing() {
        // A 1x1 conv with identity-ish weights passes channels through.
        let x = Tensor::param(
            Array::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap(),
        );
        // weight [2,2,1,1] = identity
        let w = Tensor::param(Array::from_vec(vec![1.0, 0.0, 0.0, 1.0], &[2, 2, 1, 1]).unwrap());
        let y = x.conv2d(&w, None, 1, 0).unwrap();
        assert_eq!(y.value().data(), x.value().data());
    }

    #[test]
    fn conv2d_known_values() {
        // 1 channel 3x3 input, 2x2 kernel of ones, stride 1, no padding:
        // each output = sum of 2x2 window.
        let x = Tensor::param(
            Array::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap(),
        );
        let w = Tensor::param(Array::ones(&[1, 1, 2, 2]));
        let y = x.conv2d(&w, None, 1, 0).unwrap();
        assert_eq!(y.shape(), vec![1, 1, 2, 2]);
        assert_eq!(y.value().data(), &[12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn conv2d_bias_adds_per_channel() {
        let x = Tensor::param(Array::zeros(&[1, 1, 2, 2]));
        let w = Tensor::param(Array::ones(&[3, 1, 1, 1]));
        let bias = Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap());
        let y = x.conv2d(&w, Some(&bias), 1, 0).unwrap();
        let v = y.value();
        assert_eq!(&v.data()[0..4], &[1.0; 4]);
        assert_eq!(&v.data()[4..8], &[2.0; 4]);
        assert_eq!(&v.data()[8..12], &[3.0; 4]);
    }

    #[test]
    fn conv2d_stride_and_padding_shapes() {
        let x = Tensor::param(Array::zeros(&[2, 3, 32, 32]));
        let w = Tensor::param(Array::zeros(&[8, 3, 3, 3]));
        let y = x.conv2d(&w, None, 2, 1).unwrap();
        assert_eq!(y.shape(), vec![2, 8, 16, 16]);
    }

    #[test]
    fn conv2d_validates_shapes() {
        let x = Tensor::param(Array::zeros(&[1, 3, 8, 8]));
        let w_bad_in = Tensor::param(Array::zeros(&[4, 2, 3, 3]));
        assert!(x.conv2d(&w_bad_in, None, 1, 1).is_err());
        let w = Tensor::param(Array::zeros(&[4, 3, 3, 3]));
        let b_bad = Tensor::param(Array::zeros(&[5]));
        assert!(x.conv2d(&w, Some(&b_bad), 1, 1).is_err());
        assert!(x.conv2d(&w, None, 0, 1).is_err());
        let x3 = Tensor::param(Array::zeros(&[3, 8, 8]));
        assert!(x3.conv2d(&w, None, 1, 1).is_err());
    }

    #[test]
    fn conv2d_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = Tensor::param(Array::randn(&[1, 2, 5, 5], 1.0, &mut rng));
        let w = Tensor::param(Array::randn(&[3, 2, 3, 3], 0.5, &mut rng));
        let bias = Tensor::param(Array::randn(&[3], 0.5, &mut rng));
        let f =
            |x: &Tensor, w: &Tensor, b: &Tensor| x.conv2d(w, Some(b), 2, 1).unwrap().square().sum();
        let loss = f(&x, &w, &bias);
        loss.backward();
        // Check a few weight entries by central differences.
        let eps = 1e-2;
        for idx in [0usize, 7, 20] {
            let orig = w.value().data()[idx];
            w.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f(&x, &w, &bias).item();
            w.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f(&x, &w, &bias).item();
            w.update_value(|a| a.data_mut()[idx] = orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = w.grad().unwrap().data()[idx];
            assert!(
                (num - ana).abs() / num.abs().max(1.0) < 5e-2,
                "idx {idx}: numeric {num} vs analytic {ana}"
            );
        }
        // And an input entry.
        let idx = 12;
        let orig = x.value().data()[idx];
        x.update_value(|a| a.data_mut()[idx] = orig + eps);
        let lp = f(&x, &w, &bias).item();
        x.update_value(|a| a.data_mut()[idx] = orig - eps);
        let lm = f(&x, &w, &bias).item();
        x.update_value(|a| a.data_mut()[idx] = orig);
        let num = (lp - lm) / (2.0 * eps);
        let ana = x.grad().unwrap().data()[idx];
        assert!((num - ana).abs() / num.abs().max(1.0) < 5e-2);
    }

    #[test]
    fn dwconv_known_values() {
        // 2 channels, k=1 kernels [2],[3] scale channels independently.
        let x = Tensor::param(
            Array::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap(),
        );
        let w = Tensor::param(Array::from_vec(vec![2.0, 3.0], &[2, 1, 1]).unwrap());
        let y = x.dwconv2d(&w, None, 1, 0).unwrap();
        assert_eq!(
            y.value().data(),
            &[0.0, 2.0, 4.0, 6.0, 12.0, 15.0, 18.0, 21.0]
        );
    }

    #[test]
    fn dwconv_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let x = Tensor::param(Array::randn(&[2, 3, 6, 6], 1.0, &mut rng));
        let w = Tensor::param(Array::randn(&[3, 3, 3], 0.5, &mut rng));
        let f = |x: &Tensor, w: &Tensor| x.dwconv2d(w, None, 2, 1).unwrap().square().sum();
        let loss = f(&x, &w);
        loss.backward();
        let eps = 1e-2;
        for idx in [0usize, 13, 26] {
            let orig = w.value().data()[idx];
            w.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f(&x, &w).item();
            w.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f(&x, &w).item();
            w.update_value(|a| a.data_mut()[idx] = orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = w.grad().unwrap().data()[idx];
            assert!(
                (num - ana).abs() / num.abs().max(1.0) < 5e-2,
                "idx {idx}: numeric {num} vs analytic {ana}"
            );
        }
    }

    #[test]
    fn dwconv_validates_shapes() {
        let x = Tensor::param(Array::zeros(&[1, 3, 8, 8]));
        let w_bad = Tensor::param(Array::zeros(&[2, 3, 3]));
        assert!(x.dwconv2d(&w_bad, None, 1, 1).is_err());
        let w = Tensor::param(Array::zeros(&[3, 3, 3]));
        assert!(x.dwconv2d(&w, None, 0, 1).is_err());
        let b_bad = Tensor::param(Array::zeros(&[4]));
        assert!(x.dwconv2d(&w, Some(&b_bad), 1, 1).is_err());
    }

    #[test]
    fn dwconv_stride_downsamples() {
        let x = Tensor::param(Array::zeros(&[1, 4, 16, 16]));
        let w = Tensor::param(Array::zeros(&[4, 5, 5]));
        let y = x.dwconv2d(&w, None, 2, 2).unwrap();
        assert_eq!(y.shape(), vec![1, 4, 8, 8]);
    }
}
