//! Gumbel-Softmax sampling — the differentiable discrete-choice primitive
//! used by EDD for both operator selection (`Θ`) and quantization selection
//! (`Φ`).
//!
//! `gumbel_softmax(logits, τ)` draws Gumbel noise `g_i = −ln(−ln u_i)` and
//! returns `softmax((logits + g) / τ)`. As `τ → 0` the samples approach
//! one-hot; the *hard* variant forwards an exact one-hot via the
//! straight-through estimator while backpropagating through the soft sample.

use crate::array::Array;
use crate::error::Result;
use crate::tensor::Tensor;
use rand::Rng;

/// Draws standard Gumbel(0,1) noise with the given shape.
///
/// The uniform draws are sequential (the RNG stream — and therefore the
/// sampled architecture trajectory — is independent of thread count); only
/// the `−ln(−ln u)` transform fans out over the worker pool for large
/// shapes.
#[must_use]
pub fn gumbel_noise<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Array {
    let n = crate::shape::num_elements(shape);
    let mut data: Vec<f32> = (0..n).map(|_| rng.gen_range(f32::EPSILON..1.0)).collect();
    crate::kernel::par_map_inplace(&mut data, |u| -(-u.ln()).ln());
    Array::from_vec(data, shape).expect("length matches shape")
}

/// Differentiable Gumbel-Softmax sample over the last axis of `logits`.
///
/// * `tau` — temperature; smaller is closer to one-hot.
/// * `hard` — if true, forward an exact one-hot (argmax of the soft sample)
///   with straight-through gradients; if false, forward the soft sample.
///
/// Composed from primitive differentiable ops, so gradients flow to
/// `logits` automatically. The Gumbel noise is treated as a constant.
///
/// # Errors
///
/// Returns an error for rank-0 logits.
pub fn gumbel_softmax<R: Rng + ?Sized>(
    logits: &Tensor,
    tau: f32,
    hard: bool,
    rng: &mut R,
) -> Result<Tensor> {
    let shape = logits.shape();
    let noise = Tensor::constant(gumbel_noise(&shape, rng));
    let soft = logits.add(&noise)?.mul_scalar(1.0 / tau).softmax()?;
    if !hard {
        return Ok(soft);
    }
    // Straight-through: y = onehot − detach(soft) + soft.
    let sval = soft.value_clone();
    let c = *shape.last().expect("rank >= 1 checked by softmax");
    let mut onehot = Array::zeros(&shape);
    crate::kernel::par_rows(onehot.data_mut(), c, |r, out| {
        let row = &sval.data()[r * c..(r + 1) * c];
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        out[best] = 1.0;
    });
    let hard_const = Tensor::constant(onehot);
    hard_const.sub(&soft.detach())?.add(&soft)
}

/// Deterministic softmax selection (no Gumbel noise) — the plain DARTS-style
/// mixture used as an ablation against Gumbel-Softmax sampling.
///
/// # Errors
///
/// Returns an error for rank-0 logits.
pub fn softmax_selection(logits: &Tensor, tau: f32) -> Result<Tensor> {
    logits.mul_scalar(1.0 / tau).softmax()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noise_has_gumbel_mean() {
        // Gumbel(0,1) mean is the Euler–Mascheroni constant ~0.5772.
        let mut rng = StdRng::seed_from_u64(9);
        let g = gumbel_noise(&[20_000], &mut rng);
        assert!((g.mean() - 0.5772).abs() < 0.02, "mean {}", g.mean());
    }

    #[test]
    fn soft_sample_sums_to_one() {
        let mut rng = StdRng::seed_from_u64(1);
        let logits = Tensor::param(Array::from_vec(vec![1.0, 0.0, -1.0], &[3]).unwrap());
        let y = gumbel_softmax(&logits, 1.0, false, &mut rng).unwrap();
        assert!((y.value().data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn hard_sample_is_one_hot() {
        let mut rng = StdRng::seed_from_u64(2);
        let logits = Tensor::param(Array::from_vec(vec![2.0, 0.0, -2.0], &[3]).unwrap());
        let y = gumbel_softmax(&logits, 0.5, true, &mut rng).unwrap();
        let v = y.value();
        let ones = v.data().iter().filter(|&&x| (x - 1.0).abs() < 1e-6).count();
        let zeros = v.data().iter().filter(|&&x| x.abs() < 1e-6).count();
        assert_eq!(ones, 1);
        assert_eq!(zeros, 2);
    }

    #[test]
    fn hard_sample_backprops_to_logits() {
        let mut rng = StdRng::seed_from_u64(3);
        let logits = Tensor::param(Array::from_vec(vec![1.0, 0.5, 0.0], &[3]).unwrap());
        let y = gumbel_softmax(&logits, 1.0, true, &mut rng).unwrap();
        let w = Tensor::constant(Array::from_vec(vec![3.0, 2.0, 1.0], &[3]).unwrap());
        y.mul(&w).unwrap().sum().backward();
        let g = logits.grad().unwrap();
        assert!(
            g.data().iter().any(|&v| v != 0.0),
            "gradient must reach logits"
        );
        // softmax-style gradients sum to ~0 per row
        assert!(g.data().iter().sum::<f32>().abs() < 1e-5);
    }

    #[test]
    fn low_temperature_concentrates() {
        // With a strong logit gap and low tau, the dominant class is picked
        // nearly always.
        let mut rng = StdRng::seed_from_u64(4);
        let logits = Tensor::param(Array::from_vec(vec![4.0, 0.0], &[2]).unwrap());
        let mut wins = 0;
        for _ in 0..200 {
            let y = gumbel_softmax(&logits, 0.1, true, &mut rng).unwrap();
            if y.value().data()[0] > 0.5 {
                wins += 1;
            }
        }
        assert!(wins > 180, "dominant class won only {wins}/200");
    }

    #[test]
    fn sampling_frequency_tracks_logits() {
        // Empirical selection frequencies follow softmax(logits).
        let mut rng = StdRng::seed_from_u64(5);
        let logits = Tensor::param(Array::from_vec(vec![1.0, 0.0], &[2]).unwrap());
        let trials = 2000;
        let mut first = 0;
        for _ in 0..trials {
            let y = gumbel_softmax(&logits, 1.0, true, &mut rng).unwrap();
            if y.value().data()[0] > 0.5 {
                first += 1;
            }
        }
        let p = first as f32 / trials as f32;
        let expect = 1.0f32.exp() / (1.0f32.exp() + 1.0);
        assert!((p - expect).abs() < 0.05, "freq {p} vs softmax {expect}");
    }

    #[test]
    fn softmax_selection_is_deterministic() {
        let logits = Tensor::param(Array::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        let a = softmax_selection(&logits, 1.0).unwrap();
        let b = softmax_selection(&logits, 1.0).unwrap();
        assert_eq!(a.value().data(), b.value().data());
    }

    #[test]
    fn batched_rows_each_one_hot() {
        let mut rng = StdRng::seed_from_u64(6);
        let logits = Tensor::param(Array::zeros(&[4, 3]));
        let y = gumbel_softmax(&logits, 0.5, true, &mut rng).unwrap();
        let v = y.value();
        for r in 0..4 {
            let row = &v.data()[r * 3..(r + 1) * 3];
            assert!((row.iter().sum::<f32>() - 1.0).abs() < 1e-5);
            assert_eq!(row.iter().filter(|&&x| (x - 1.0).abs() < 1e-6).count(), 1);
        }
    }
}
