//! Matrix multiplication with gradients.

use crate::error::Result;
use crate::tensor::Tensor;

impl Tensor {
    /// 2-D matrix multiplication `[m, k] x [k, n] -> [m, n]`.
    ///
    /// Gradients: `dA = dY · Bᵀ`, `dB = Aᵀ · dY`, both computed with the
    /// transpose-free kernel variants (`matmul_a_bt` / `matmul_at_b`) so
    /// the backward pass never materializes a transposed operand.
    ///
    /// # Errors
    ///
    /// Returns an error unless both operands are rank-2 with matching inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Result<Tensor> {
        let value = self.value().matmul(&other.value())?;
        let (a, b) = (self.clone(), other.clone());
        Ok(Tensor::from_op(
            value,
            vec![self.clone(), other.clone()],
            // Operand values are read back through the parent handles at
            // backward time (guards dropped before accumulating, since the
            // operands may alias, e.g. `x.matmul(&x)`).
            Box::new(move |g| {
                if a.requires_grad() {
                    let da = {
                        let vb = b.value();
                        g.matmul_a_bt(&vb).expect("shapes consistent")
                    };
                    a.accumulate_grad_owned(da);
                }
                if b.requires_grad() {
                    let db = {
                        let va = a.value();
                        va.matmul_at_b(&g).expect("shapes consistent")
                    };
                    b.accumulate_grad_owned(db);
                }
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;

    #[test]
    fn matmul_forward_and_grads() {
        let a = Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]).unwrap());
        let b = Tensor::param(Array::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]).unwrap());
        let y = a.matmul(&b).unwrap();
        assert_eq!(y.value().data(), &[19.0, 22.0, 43.0, 50.0]);
        y.sum().backward();
        // dA = ones(2,2) @ B^T
        assert_eq!(a.grad().unwrap().data(), &[11.0, 15.0, 11.0, 15.0]);
        // dB = A^T @ ones(2,2)
        assert_eq!(b.grad().unwrap().data(), &[4.0, 4.0, 6.0, 6.0]);
    }

    #[test]
    fn matmul_shape_errors_propagate() {
        let a = Tensor::param(Array::ones(&[2, 3]));
        let b = Tensor::param(Array::ones(&[2, 3]));
        assert!(a.matmul(&b).is_err());
    }
}
