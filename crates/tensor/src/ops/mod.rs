//! Differentiable operations on [`crate::Tensor`], grouped by family.

mod arith;
mod conv;
pub mod gumbel;
mod matmul;
mod norm;
mod pool;
mod reduce;
mod shape_ops;
pub mod softmax;
mod unary;

pub use norm::BatchNormOutput;
pub use unary::quantization_error;
