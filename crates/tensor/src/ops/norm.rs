//! Fused 2-D batch normalization (training mode) with hand-derived backward.
//!
//! Inference-mode normalization is composed from broadcast primitives in the
//! `edd-nn` layer; the fused op here handles the batch-statistics path where
//! the mean/variance themselves depend on the input. A ReLU6-fused variant
//! ([`Tensor::batch_norm2d_relu6_train`]) folds the activation used by the
//! MBConv candidate ops into the same node, saving one full-tensor op node
//! (and its gradient buffer) per normalization.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::kernel::pool::{self, SendPtr};
use crate::tensor::Tensor;

/// Runs `f(ci)` for every channel, over the worker pool when the tensor is
/// large enough for the dispatch to pay off and inline otherwise — the
/// same `PAR_MIN_ELEMS` gating the elementwise kernels use, so tiny
/// batch-norm layers never pay job-queue overhead. Results are identical
/// either way: each `f(ci)` owns channel `ci`'s outputs exclusively.
fn per_channel(c: usize, elems: usize, f: &(dyn Fn(usize) + Sync)) {
    if elems < kernel::PAR_MIN_ELEMS {
        for ci in 0..c {
            f(ci);
        }
    } else {
        pool::run(c, f);
    }
}

/// Output of [`Tensor::batch_norm2d_train`]: the normalized activations plus
/// the batch statistics needed to update running estimates.
#[derive(Debug, Clone)]
pub struct BatchNormOutput {
    /// Normalized, scaled and shifted activations (same shape as the input).
    pub output: Tensor,
    /// Per-channel batch mean `[c]`.
    pub batch_mean: Array,
    /// Per-channel (biased) batch variance `[c]`.
    pub batch_var: Array,
}

/// Shared implementation of training-mode batch norm, optionally fusing the
/// ReLU6 activation into the same op node.
///
/// The fused path is bitwise identical to `batch_norm2d_train` followed by
/// `relu6()`: the forward clamp applies the same expression to the same
/// pre-activation, and the backward masks the incoming gradient with the
/// ReLU6 derivative of the recomputed pre-activation
/// `y = gamma * xhat + beta` (same inputs, same expression, same bits as the
/// forward) before running the exact same per-channel reduction loops the
/// unfused backward runs.
fn bn2d_train_impl(
    x: &Tensor,
    gamma: &Tensor,
    beta: &Tensor,
    eps: f32,
    fuse_relu6: bool,
) -> Result<BatchNormOutput> {
    let shape = x.shape();
    if shape.len() != 4 {
        return Err(TensorError::InvalidShape {
            shape,
            reason: "batch_norm2d expects NCHW".into(),
        });
    }
    let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
    if gamma.shape() != [c] || beta.shape() != [c] {
        return Err(TensorError::ShapeMismatch {
            lhs: gamma.shape(),
            rhs: vec![c],
            op: "batch_norm2d gamma/beta",
        });
    }
    let n = (b * h * w) as f32;
    let plane = h * w;
    let elems = b * c * plane;
    let gval = gamma.value_clone();
    let bval = beta.value_clone();

    let mut mean = Array::zeros(&[c]);
    let mut var = Array::zeros(&[c]);
    // Every plane of the output is written below, so it can start
    // uninitialized (pool-recycled without zeroing). The normalized
    // activations are NOT materialized: the backward recomputes
    // `(x - mu) * inv_std` from the parent input and the saved statistics
    // — same expression, same inputs, same bits — which saves a
    // full-tensor buffer and its write pass on every training step.
    let mut out = Array::uninit(&shape);
    {
        // The input is read through the value guard for the whole forward
        // pass instead of being cloned; the guard drops before the op node
        // is built.
        let xv = x.value();
        let xd = xv.data();

        // Channel statistics via the kernel layer's lane-parallel
        // reductions: fixed association (deterministic) but no sequential
        // float dependency chain, so the passes vectorize.
        {
            // One pool task per channel: each task owns mean[ci]/var[ci], so
            // the SendPtr windows are disjoint and the per-channel values are
            // independent of how tasks land on workers.
            let mean_p = SendPtr::new(mean.data_mut().as_mut_ptr());
            let var_p = SendPtr::new(var.data_mut().as_mut_ptr());
            per_channel(c, elems, &|ci| {
                let mut acc = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    acc += kernel::sum8(&xd[base..base + plane]);
                }
                let mu = acc / n;
                let mut vacc = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    vacc += kernel::sq_dev_sum8(&xd[base..base + plane], mu);
                }
                (unsafe { mean_p.slice(ci, 1) })[0] = mu;
                (unsafe { var_p.slice(ci, 1) })[0] = vacc / n;
            });
        }

        // Output pass, channel-parallel with disjoint per-channel plane
        // windows: the normalized value feeds the affine (and optional
        // clamp) while still in register.
        {
            let out_p = SendPtr::new(out.data_mut().as_mut_ptr());
            per_channel(c, elems, &|ci| {
                let mu = mean.data()[ci];
                let inv_std = 1.0 / (var.data()[ci] + eps).sqrt();
                let ga = gval.data()[ci];
                let be = bval.data()[ci];
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    let xs = &xd[base..base + plane];
                    let ys = unsafe { out_p.slice(base, plane) };
                    if fuse_relu6 {
                        for (y, &x) in ys.iter_mut().zip(xs) {
                            let v = (x - mu) * inv_std;
                            *y = (ga * v + be).clamp(0.0, 6.0);
                        }
                    } else {
                        for (y, &x) in ys.iter_mut().zip(xs) {
                            let v = (x - mu) * inv_std;
                            *y = ga * v + be;
                        }
                    }
                }
            });
        }
    }

    let x_t = x.clone();
    let g_t = gamma.clone();
    let b_t = beta.clone();
    // Saved forward products are captured by value: the backward closure
    // must never read its own output tensor (it runs under that node's
    // write lock), and mean/var are not recoverable from the parents
    // without re-running the reductions. The normalized activations are
    // recomputed from the parent input plus these statistics instead of
    // being saved.
    let mean_saved = mean.clone();
    let var_saved = var.clone();
    let gval_saved = gval;
    let bval_saved = bval;
    let output = Tensor::from_op(
        out,
        vec![x.clone(), gamma.clone(), beta.clone()],
        Box::new(move |g| {
            // The parent input is read through its value guard for the
            // whole backward pass; normalized activations are recomputed
            // per element as `(x - mu) * inv_std` — identical bits to the
            // buffer the forward used to save. The guard is scoped so it
            // drops before gradients are accumulated into the parents.
            let (dbeta, dgamma, dx) = {
                let xv = x_t.value();
                let xd = xv.data();

                // With the fused activation, first mask the incoming
                // gradient by the ReLU6 derivative of the recomputed
                // pre-activation — after this the remaining math is exactly
                // the plain BN backward, so fused and unfused gradients
                // agree bit for bit.
                let masked = if fuse_relu6 {
                    let mut gs = Array::uninit(&[b, c, h, w]);
                    {
                        let gs_p = SendPtr::new(gs.data_mut().as_mut_ptr());
                        per_channel(c, elems, &|ci| {
                            let mu = mean_saved.data()[ci];
                            let inv_std = 1.0 / (var_saved.data()[ci] + eps).sqrt();
                            let ga = gval_saved.data()[ci];
                            let be = bval_saved.data()[ci];
                            for bi in 0..b {
                                let base = (bi * c + ci) * plane;
                                let gsl = &g.data()[base..base + plane];
                                let xs = &xd[base..base + plane];
                                let ms = unsafe { gs_p.slice(base, plane) };
                                for ((m, &gv), &x) in ms.iter_mut().zip(gsl).zip(xs) {
                                    let y = ga * ((x - mu) * inv_std) + be;
                                    *m = gv * if y > 0.0 && y < 6.0 { 1.0 } else { 0.0 };
                                }
                            }
                        });
                    }
                    Some(gs)
                } else {
                    None
                };
                let gd: &[f32] = match &masked {
                    Some(a) => a.data(),
                    None => g.data(),
                };

                // Per-channel reductions of the (masked) output gradient,
                // channel-parallel with disjoint [ci] output slots.
                let mut dbeta = Array::zeros(&[c]);
                let mut dgamma = Array::zeros(&[c]);
                {
                    let dbeta_p = SendPtr::new(dbeta.data_mut().as_mut_ptr());
                    let dgamma_p = SendPtr::new(dgamma.data_mut().as_mut_ptr());
                    per_channel(c, elems, &|ci| {
                        let mu = mean_saved.data()[ci];
                        let inv_std = 1.0 / (var_saved.data()[ci] + eps).sqrt();
                        let mut sb = 0.0f32;
                        let mut sg = 0.0f32;
                        for bi in 0..b {
                            let base = (bi * c + ci) * plane;
                            let gs = &gd[base..base + plane];
                            sb += kernel::sum8(gs);
                            sg += kernel::dot_norm8(gs, &xd[base..base + plane], mu, inv_std);
                        }
                        (unsafe { dbeta_p.slice(ci, 1) })[0] = sb;
                        (unsafe { dgamma_p.slice(ci, 1) })[0] = sg;
                    });
                }
                let dx = if x_t.requires_grad() {
                    // dx = gamma * inv_std / n * (n*g - sum(g) - xhat * sum(g*xhat)),
                    // computed before dbeta/dgamma are moved into their parents.
                    let mut dx = Array::uninit(&[b, c, h, w]);
                    {
                        let dx_p = SendPtr::new(dx.data_mut().as_mut_ptr());
                        per_channel(c, elems, &|ci| {
                            let mu = mean_saved.data()[ci];
                            let inv_std = 1.0 / (var_saved.data()[ci] + eps).sqrt();
                            let ga = gval_saved.data()[ci];
                            let sg = dbeta.data()[ci];
                            let sgx = dgamma.data()[ci];
                            let k = ga * inv_std / n;
                            for bi in 0..b {
                                let base = (bi * c + ci) * plane;
                                let gs = &gd[base..base + plane];
                                let xs = &xd[base..base + plane];
                                let ds = unsafe { dx_p.slice(base, plane) };
                                for ((d, &gv), &x) in ds.iter_mut().zip(gs).zip(xs) {
                                    let xh = (x - mu) * inv_std;
                                    *d = k * (n * gv - sg - xh * sgx);
                                }
                            }
                        });
                    }
                    Some(dx)
                } else {
                    None
                };
                (dbeta, dgamma, dx)
            };
            if let Some(dx) = dx {
                x_t.accumulate_grad_owned(dx);
            }
            if b_t.requires_grad() {
                b_t.accumulate_grad_owned(dbeta);
            }
            if g_t.requires_grad() {
                g_t.accumulate_grad_owned(dgamma);
            }
        }),
    );
    Ok(BatchNormOutput {
        output,
        batch_mean: mean,
        batch_var: var,
    })
}

impl Tensor {
    /// Training-mode batch normalization over an NCHW input using batch
    /// statistics computed over the `(batch, h, w)` axes.
    ///
    /// `gamma` and `beta` are per-channel scale and shift `[c]`. Gradients
    /// flow to the input, `gamma` and `beta`, including the dependence of
    /// the batch statistics on the input.
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4 and `gamma`/`beta` have
    /// shape `[c]`.
    pub fn batch_norm2d_train(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<BatchNormOutput> {
        bn2d_train_impl(self, gamma, beta, eps, false)
    }

    /// Training-mode batch normalization fused with a ReLU6 activation in a
    /// single op node: `relu6(batch_norm2d_train(x))`.
    ///
    /// Forward and backward are bitwise identical to the unfused
    /// composition, but the graph carries one node instead of two — no
    /// intermediate pre-activation tensor, no separate activation gradient
    /// buffer. This is the normalization+activation used by MobileNet-style
    /// blocks (the EDD supernet's candidate ops).
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4 and `gamma`/`beta` have
    /// shape `[c]`.
    pub fn batch_norm2d_relu6_train(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<BatchNormOutput> {
        bn2d_train_impl(self, gamma, beta, eps, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::param(Array::randn(&[4, 2, 3, 3], 2.0, &mut rng));
        let gamma = Tensor::param(Array::ones(&[2]));
        let beta = Tensor::param(Array::zeros(&[2]));
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        let v = bn.output.value();
        // per-channel mean ~0, var ~1
        let n = 4 * 3 * 3;
        for ci in 0..2 {
            let mut acc = 0.0f32;
            let mut acc2 = 0.0f32;
            for bi in 0..4 {
                let base = (bi * 2 + ci) * 9;
                for &val in &v.data()[base..base + 9] {
                    acc += val;
                    acc2 += val * val;
                }
            }
            let mean = acc / n as f32;
            let var = acc2 / n as f32 - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_shift() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::param(Array::randn(&[2, 1, 2, 2], 1.0, &mut rng));
        let gamma = Tensor::param(Array::from_vec(vec![3.0], &[1]).unwrap());
        let beta = Tensor::param(Array::from_vec(vec![5.0], &[1]).unwrap());
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        let v = bn.output.value();
        let mean: f32 = v.data().iter().sum::<f32>() / 8.0;
        assert!((mean - 5.0).abs() < 1e-4);
    }

    #[test]
    fn batch_stats_reported() {
        let x = Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap());
        let gamma = Tensor::param(Array::ones(&[1]));
        let beta = Tensor::param(Array::zeros(&[1]));
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        assert!((bn.batch_mean.data()[0] - 2.5).abs() < 1e-6);
        assert!((bn.batch_var.data()[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::param(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let gamma = Tensor::param(Array::rand_uniform(&[2], 0.5, 1.5, &mut rng));
        let beta = Tensor::param(Array::randn(&[2], 0.3, &mut rng));
        // Weighted loss so gradients differ per element.
        let wts = Tensor::constant(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let f = |x: &Tensor, ga: &Tensor, be: &Tensor| {
            x.batch_norm2d_train(ga, be, 1e-5)
                .unwrap()
                .output
                .mul(&wts)
                .unwrap()
                .sum()
        };
        f(&x, &gamma, &beta).backward();
        let eps = 1e-2;
        // input entry
        for idx in [0usize, 17, 30] {
            let orig = x.value().data()[idx];
            x.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = x.grad().unwrap().data()[idx];
            assert!(
                (num - ana).abs() < 5e-2 * num.abs().max(1.0),
                "x[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // gamma entry
        let orig = gamma.value().data()[0];
        gamma.update_value(|a| a.data_mut()[0] = orig + eps);
        let lp = f(&x, &gamma, &beta).item();
        gamma.update_value(|a| a.data_mut()[0] = orig - eps);
        let lm = f(&x, &gamma, &beta).item();
        gamma.update_value(|a| a.data_mut()[0] = orig);
        let num = (lp - lm) / (2.0 * eps);
        let ana = gamma.grad().unwrap().data()[0];
        assert!((num - ana).abs() < 5e-2 * num.abs().max(1.0));
    }

    #[test]
    fn validates_shapes() {
        let x = Tensor::param(Array::zeros(&[2, 3, 4, 4]));
        let g_bad = Tensor::param(Array::zeros(&[2]));
        let b_ok = Tensor::param(Array::zeros(&[3]));
        assert!(x.batch_norm2d_train(&g_bad, &b_ok, 1e-5).is_err());
        let x3 = Tensor::param(Array::zeros(&[3, 4, 4]));
        let g3 = Tensor::param(Array::zeros(&[4]));
        assert!(x3.batch_norm2d_train(&g3, &g3, 1e-5).is_err());
    }

    /// Builds matching (x, gamma, beta) parameter pairs for comparing the
    /// fused and unfused paths on identical values.
    fn fused_test_inputs(seed: u64) -> [(Tensor, Tensor, Tensor); 2] {
        let mut rng = StdRng::seed_from_u64(seed);
        let xv = Array::randn(&[3, 4, 5, 5], 1.5, &mut rng);
        let gv = Array::rand_uniform(&[4], 0.5, 1.5, &mut rng);
        let bv = Array::randn(&[4], 1.0, &mut rng);
        [
            (
                Tensor::param(xv.clone()),
                Tensor::param(gv.clone()),
                Tensor::param(bv.clone()),
            ),
            (Tensor::param(xv), Tensor::param(gv), Tensor::param(bv)),
        ]
    }

    #[test]
    fn fused_relu6_forward_is_bitwise_identical_to_unfused() {
        let [(x1, g1, b1), (x2, g2, b2)] = fused_test_inputs(7);
        let unfused = x1.batch_norm2d_train(&g1, &b1, 1e-5).unwrap();
        let fused = x2.batch_norm2d_relu6_train(&g2, &b2, 1e-5).unwrap();
        let reference = unfused.output.relu6();
        assert_eq!(reference.value().data(), fused.output.value().data());
        assert_eq!(unfused.batch_mean.data(), fused.batch_mean.data());
        assert_eq!(unfused.batch_var.data(), fused.batch_var.data());
    }

    #[test]
    fn fused_relu6_backward_is_bitwise_identical_to_unfused() {
        let [(x1, g1, b1), (x2, g2, b2)] = fused_test_inputs(11);
        let mut rng = StdRng::seed_from_u64(13);
        let wts = Tensor::constant(Array::randn(&[3, 4, 5, 5], 1.0, &mut rng));
        x1.batch_norm2d_train(&g1, &b1, 1e-5)
            .unwrap()
            .output
            .relu6()
            .mul(&wts)
            .unwrap()
            .sum()
            .backward();
        x2.batch_norm2d_relu6_train(&g2, &b2, 1e-5)
            .unwrap()
            .output
            .mul(&wts)
            .unwrap()
            .sum()
            .backward();
        assert_eq!(x1.grad().unwrap().data(), x2.grad().unwrap().data());
        assert_eq!(g1.grad().unwrap().data(), g2.grad().unwrap().data());
        assert_eq!(b1.grad().unwrap().data(), b2.grad().unwrap().data());
    }

    #[test]
    fn fused_relu6_gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(17);
        let x = Tensor::param(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let gamma = Tensor::param(Array::rand_uniform(&[2], 0.8, 1.2, &mut rng));
        // Shift the pre-activations to ~3 so most land inside (0, 6) where
        // ReLU6 is differentiable.
        let beta = Tensor::param(Array::full(&[2], 3.0));
        let wts = Tensor::constant(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let f = |x: &Tensor, ga: &Tensor, be: &Tensor| {
            x.batch_norm2d_relu6_train(ga, be, 1e-5)
                .unwrap()
                .output
                .mul(&wts)
                .unwrap()
                .sum()
        };
        f(&x, &gamma, &beta).backward();
        let eps = 1e-2;
        // Only probe entries whose pre-activation sits safely inside the
        // linear region, away from the clamp kinks at 0 and 6.
        let pre = {
            let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
            bn.output.value_clone()
        };
        let mut checked = 0;
        for idx in 0..pre.len() {
            let y = pre.data()[idx];
            if !(0.5..=5.5).contains(&y) {
                continue;
            }
            let orig = x.value().data()[idx];
            x.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = x.grad().unwrap().data()[idx];
            assert!(
                (num - ana).abs() < 5e-2 * num.abs().max(1.0),
                "x[{idx}]: numeric {num} vs analytic {ana}"
            );
            checked += 1;
            if checked >= 4 {
                break;
            }
        }
        assert!(checked > 0, "no interior activations to check");
    }
}
