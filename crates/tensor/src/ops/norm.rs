//! Fused 2-D batch normalization (training mode) with hand-derived backward.
//!
//! Inference-mode normalization is composed from broadcast primitives in the
//! `edd-nn` layer; the fused op here handles the batch-statistics path where
//! the mean/variance themselves depend on the input.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::kernel::pool::{self, SendPtr};
use crate::tensor::Tensor;

/// Runs `f(ci)` for every channel, over the worker pool when the tensor is
/// large enough for the dispatch to pay off and inline otherwise — the
/// same `PAR_MIN_ELEMS` gating the elementwise kernels use, so tiny
/// batch-norm layers never pay job-queue overhead. Results are identical
/// either way: each `f(ci)` owns channel `ci`'s outputs exclusively.
fn per_channel(c: usize, elems: usize, f: &(dyn Fn(usize) + Sync)) {
    if elems < kernel::PAR_MIN_ELEMS {
        for ci in 0..c {
            f(ci);
        }
    } else {
        pool::run(c, f);
    }
}

/// Output of [`Tensor::batch_norm2d_train`]: the normalized activations plus
/// the batch statistics needed to update running estimates.
#[derive(Debug, Clone)]
pub struct BatchNormOutput {
    /// Normalized, scaled and shifted activations (same shape as the input).
    pub output: Tensor,
    /// Per-channel batch mean `[c]`.
    pub batch_mean: Array,
    /// Per-channel (biased) batch variance `[c]`.
    pub batch_var: Array,
}

impl Tensor {
    /// Training-mode batch normalization over an NCHW input using batch
    /// statistics computed over the `(batch, h, w)` axes.
    ///
    /// `gamma` and `beta` are per-channel scale and shift `[c]`. Gradients
    /// flow to the input, `gamma` and `beta`, including the dependence of
    /// the batch statistics on the input.
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4 and `gamma`/`beta` have
    /// shape `[c]`.
    pub fn batch_norm2d_train(
        &self,
        gamma: &Tensor,
        beta: &Tensor,
        eps: f32,
    ) -> Result<BatchNormOutput> {
        let shape = self.shape();
        if shape.len() != 4 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "batch_norm2d expects NCHW".into(),
            });
        }
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if gamma.shape() != [c] || beta.shape() != [c] {
            return Err(TensorError::ShapeMismatch {
                lhs: gamma.shape(),
                rhs: vec![c],
                op: "batch_norm2d gamma/beta",
            });
        }
        let n = (b * h * w) as f32;
        let plane = h * w;
        let elems = b * c * plane;
        let xval = self.value_clone();
        let gval = gamma.value_clone();
        let bval = beta.value_clone();

        // Channel statistics via the kernel layer's lane-parallel
        // reductions: fixed association (deterministic) but no sequential
        // float dependency chain, so the passes vectorize.
        let mut mean = Array::zeros(&[c]);
        let mut var = Array::zeros(&[c]);
        {
            // One pool task per channel: each task owns mean[ci]/var[ci], so
            // the SendPtr windows are disjoint and the per-channel values are
            // independent of how tasks land on workers.
            let mean_p = SendPtr::new(mean.data_mut().as_mut_ptr());
            let var_p = SendPtr::new(var.data_mut().as_mut_ptr());
            let xd = xval.data();
            per_channel(c, elems, &|ci| {
                let mut acc = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    acc += kernel::sum8(&xd[base..base + plane]);
                }
                let mu = acc / n;
                let mut vacc = 0.0f32;
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    vacc += kernel::sq_dev_sum8(&xd[base..base + plane], mu);
                }
                (unsafe { mean_p.slice(ci, 1) })[0] = mu;
                (unsafe { var_p.slice(ci, 1) })[0] = vacc / n;
            });
        }

        // Normalized activations (saved for backward), channel-parallel with
        // disjoint per-channel plane windows.
        let mut xhat = Array::zeros(&shape);
        let mut out = Array::zeros(&shape);
        {
            let xhat_p = SendPtr::new(xhat.data_mut().as_mut_ptr());
            let out_p = SendPtr::new(out.data_mut().as_mut_ptr());
            let xd = xval.data();
            per_channel(c, elems, &|ci| {
                let mu = mean.data()[ci];
                let inv_std = 1.0 / (var.data()[ci] + eps).sqrt();
                let ga = gval.data()[ci];
                let be = bval.data()[ci];
                for bi in 0..b {
                    let base = (bi * c + ci) * plane;
                    let xs = &xd[base..base + plane];
                    let xhs = unsafe { xhat_p.slice(base, plane) };
                    for (xh, &x) in xhs.iter_mut().zip(xs) {
                        *xh = (x - mu) * inv_std;
                    }
                    let ys = unsafe { out_p.slice(base, plane) };
                    for (y, &xh) in ys.iter_mut().zip(xhs.iter()) {
                        *y = ga * xh + be;
                    }
                }
            });
        }

        let x_t = self.clone();
        let g_t = gamma.clone();
        let b_t = beta.clone();
        let var_saved = var.clone();
        let xhat_saved = xhat;
        let gval_saved = gval;
        let output = Tensor::from_op(
            out,
            vec![self.clone(), gamma.clone(), beta.clone()],
            Box::new(move |g| {
                // Per-channel reductions of the output gradient,
                // channel-parallel with disjoint [ci] output slots.
                let mut dbeta = Array::zeros(&[c]);
                let mut dgamma = Array::zeros(&[c]);
                {
                    let dbeta_p = SendPtr::new(dbeta.data_mut().as_mut_ptr());
                    let dgamma_p = SendPtr::new(dgamma.data_mut().as_mut_ptr());
                    per_channel(c, elems, &|ci| {
                        let mut sb = 0.0f32;
                        let mut sg = 0.0f32;
                        for bi in 0..b {
                            let base = (bi * c + ci) * plane;
                            let gs = &g.data()[base..base + plane];
                            sb += kernel::sum8(gs);
                            sg += kernel::dot8(gs, &xhat_saved.data()[base..base + plane]);
                        }
                        (unsafe { dbeta_p.slice(ci, 1) })[0] = sb;
                        (unsafe { dgamma_p.slice(ci, 1) })[0] = sg;
                    });
                }
                if b_t.requires_grad() {
                    b_t.accumulate_grad(&dbeta);
                }
                if g_t.requires_grad() {
                    g_t.accumulate_grad(&dgamma);
                }
                if x_t.requires_grad() {
                    // dx = gamma * inv_std / n * (n*g - sum(g) - xhat * sum(g*xhat))
                    let mut dx = Array::zeros(&[b, c, h, w]);
                    {
                        let dx_p = SendPtr::new(dx.data_mut().as_mut_ptr());
                        per_channel(c, elems, &|ci| {
                            let inv_std = 1.0 / (var_saved.data()[ci] + eps).sqrt();
                            let ga = gval_saved.data()[ci];
                            let sg = dbeta.data()[ci];
                            let sgx = dgamma.data()[ci];
                            let k = ga * inv_std / n;
                            for bi in 0..b {
                                let base = (bi * c + ci) * plane;
                                let gs = &g.data()[base..base + plane];
                                let xhs = &xhat_saved.data()[base..base + plane];
                                let ds = unsafe { dx_p.slice(base, plane) };
                                for ((d, &gv), &xh) in ds.iter_mut().zip(gs).zip(xhs) {
                                    *d = k * (n * gv - sg - xh * sgx);
                                }
                            }
                        });
                    }
                    x_t.accumulate_grad(&dx);
                }
            }),
        );
        Ok(BatchNormOutput {
            output,
            batch_mean: mean,
            batch_var: var,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normalizes_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::param(Array::randn(&[4, 2, 3, 3], 2.0, &mut rng));
        let gamma = Tensor::param(Array::ones(&[2]));
        let beta = Tensor::param(Array::zeros(&[2]));
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        let v = bn.output.value();
        // per-channel mean ~0, var ~1
        let n = 4 * 3 * 3;
        for ci in 0..2 {
            let mut acc = 0.0f32;
            let mut acc2 = 0.0f32;
            for bi in 0..4 {
                let base = (bi * 2 + ci) * 9;
                for &val in &v.data()[base..base + 9] {
                    acc += val;
                    acc2 += val * val;
                }
            }
            let mean = acc / n as f32;
            let var = acc2 / n as f32 - mean * mean;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_scale_shift() {
        let mut rng = StdRng::seed_from_u64(4);
        let x = Tensor::param(Array::randn(&[2, 1, 2, 2], 1.0, &mut rng));
        let gamma = Tensor::param(Array::from_vec(vec![3.0], &[1]).unwrap());
        let beta = Tensor::param(Array::from_vec(vec![5.0], &[1]).unwrap());
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        let v = bn.output.value();
        let mean: f32 = v.data().iter().sum::<f32>() / 8.0;
        assert!((mean - 5.0).abs() < 1e-4);
    }

    #[test]
    fn batch_stats_reported() {
        let x = Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap());
        let gamma = Tensor::param(Array::ones(&[1]));
        let beta = Tensor::param(Array::zeros(&[1]));
        let bn = x.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
        assert!((bn.batch_mean.data()[0] - 2.5).abs() < 1e-6);
        assert!((bn.batch_var.data()[0] - 1.25).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut rng = StdRng::seed_from_u64(5);
        let x = Tensor::param(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let gamma = Tensor::param(Array::rand_uniform(&[2], 0.5, 1.5, &mut rng));
        let beta = Tensor::param(Array::randn(&[2], 0.3, &mut rng));
        // Weighted loss so gradients differ per element.
        let wts = Tensor::constant(Array::randn(&[2, 2, 3, 3], 1.0, &mut rng));
        let f = |x: &Tensor, ga: &Tensor, be: &Tensor| {
            x.batch_norm2d_train(ga, be, 1e-5)
                .unwrap()
                .output
                .mul(&wts)
                .unwrap()
                .sum()
        };
        f(&x, &gamma, &beta).backward();
        let eps = 1e-2;
        // input entry
        for idx in [0usize, 17, 30] {
            let orig = x.value().data()[idx];
            x.update_value(|a| a.data_mut()[idx] = orig + eps);
            let lp = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig - eps);
            let lm = f(&x, &gamma, &beta).item();
            x.update_value(|a| a.data_mut()[idx] = orig);
            let num = (lp - lm) / (2.0 * eps);
            let ana = x.grad().unwrap().data()[idx];
            assert!(
                (num - ana).abs() < 5e-2 * num.abs().max(1.0),
                "x[{idx}]: numeric {num} vs analytic {ana}"
            );
        }
        // gamma entry
        let orig = gamma.value().data()[0];
        gamma.update_value(|a| a.data_mut()[0] = orig + eps);
        let lp = f(&x, &gamma, &beta).item();
        gamma.update_value(|a| a.data_mut()[0] = orig - eps);
        let lm = f(&x, &gamma, &beta).item();
        gamma.update_value(|a| a.data_mut()[0] = orig);
        let num = (lp - lm) / (2.0 * eps);
        let ana = gamma.grad().unwrap().data()[0];
        assert!((num - ana).abs() < 5e-2 * num.abs().max(1.0));
    }

    #[test]
    fn validates_shapes() {
        let x = Tensor::param(Array::zeros(&[2, 3, 4, 4]));
        let g_bad = Tensor::param(Array::zeros(&[2]));
        let b_ok = Tensor::param(Array::zeros(&[3]));
        assert!(x.batch_norm2d_train(&g_bad, &b_ok, 1e-5).is_err());
        let x3 = Tensor::param(Array::zeros(&[3, 4, 4]));
        let g3 = Tensor::param(Array::zeros(&[4]));
        assert!(x3.batch_norm2d_train(&g3, &g3, 1e-5).is_err());
    }
}
