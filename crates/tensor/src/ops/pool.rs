//! Pooling ops: average pooling, global average pooling and max pooling,
//! in NCHW layout.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

impl Tensor {
    /// Average pooling with square window `k` and stride `stride` (no
    /// padding). Input `[b, c, h, w]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4 and `k <= h, w`.
    pub fn avg_pool2d(&self, k: usize, stride: usize) -> Result<Tensor> {
        let shape = self.shape();
        if shape.len() != 4 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "avg_pool2d expects NCHW".into(),
            });
        }
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if k == 0 || stride == 0 || k > h || k > w {
            return Err(TensorError::InvalidArgument(format!(
                "avg_pool2d window {k}/stride {stride} invalid for {h}x{w}"
            )));
        }
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        // Every output element is written below, so the buffer can start
        // uninitialized (pool-recycled). The input is read through the
        // value guard instead of cloned.
        let xval = self.value();
        let mut out = Array::uninit(&[b, c, oh, ow]);
        let norm = 1.0 / (k * k) as f32;
        for bc in 0..b * c {
            let src = &xval.data()[bc * h * w..(bc + 1) * h * w];
            let dst = &mut out.data_mut()[bc * oh * ow..(bc + 1) * oh * ow];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0;
                    for ky in 0..k {
                        let row = (oy * stride + ky) * w + ox * stride;
                        acc += src[row..row + k].iter().sum::<f32>();
                    }
                    dst[oy * ow + ox] = acc * norm;
                }
            }
        }
        drop(xval);
        let a = self.clone();
        Ok(Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let mut dx = Array::zeros(&[b, c, h, w]);
                for bc in 0..b * c {
                    let gy = &g.data()[bc * oh * ow..(bc + 1) * oh * ow];
                    let dst = &mut dx.data_mut()[bc * h * w..(bc + 1) * h * w];
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let gv = gy[oy * ow + ox] * norm;
                            for ky in 0..k {
                                let row = (oy * stride + ky) * w + ox * stride;
                                for v in &mut dst[row..row + k] {
                                    *v += gv;
                                }
                            }
                        }
                    }
                }
                a.accumulate_grad_owned(dx);
            }),
        ))
    }

    /// Global average pooling: `[b, c, h, w] -> [b, c]`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4.
    pub fn global_avg_pool(&self) -> Result<Tensor> {
        let shape = self.shape();
        if shape.len() != 4 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "global_avg_pool expects NCHW".into(),
            });
        }
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let plane = h * w;
        let norm = 1.0 / plane as f32;
        let xval = self.value();
        let mut out = Array::zeros(&[b, c]);
        for bc in 0..b * c {
            out.data_mut()[bc] = xval.data()[bc * plane..(bc + 1) * plane]
                .iter()
                .sum::<f32>()
                * norm;
        }
        drop(xval);
        let a = self.clone();
        Ok(Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                // Every element assigned below — uninit (pool-recycled).
                let mut dx = Array::uninit(&[b, c, h, w]);
                for bc in 0..b * c {
                    let gv = g.data()[bc] * norm;
                    for v in &mut dx.data_mut()[bc * plane..(bc + 1) * plane] {
                        *v = gv;
                    }
                }
                a.accumulate_grad_owned(dx);
            }),
        ))
    }

    /// Max pooling with square window `k` and stride `stride` (no padding).
    /// Gradient routes to the (first) argmax element of each window.
    ///
    /// # Errors
    ///
    /// Returns an error unless the input is rank-4 and `k <= h, w`.
    pub fn max_pool2d(&self, k: usize, stride: usize) -> Result<Tensor> {
        let shape = self.shape();
        if shape.len() != 4 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "max_pool2d expects NCHW".into(),
            });
        }
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        if k == 0 || stride == 0 || k > h || k > w {
            return Err(TensorError::InvalidArgument(format!(
                "max_pool2d window {k}/stride {stride} invalid for {h}x{w}"
            )));
        }
        let oh = (h - k) / stride + 1;
        let ow = (w - k) / stride + 1;
        // Output fully written below (uninit ok); input read via guard.
        let xval = self.value();
        let mut out = Array::uninit(&[b, c, oh, ow]);
        let mut argmax = vec![0usize; b * c * oh * ow];
        for bc in 0..b * c {
            let src = &xval.data()[bc * h * w..(bc + 1) * h * w];
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_i = 0;
                    for ky in 0..k {
                        for kx in 0..k {
                            let i = (oy * stride + ky) * w + ox * stride + kx;
                            if src[i] > best {
                                best = src[i];
                                best_i = i;
                            }
                        }
                    }
                    let oi = bc * oh * ow + oy * ow + ox;
                    out.data_mut()[oi] = best;
                    argmax[oi] = best_i;
                }
            }
        }
        drop(xval);
        let a = self.clone();
        Ok(Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let mut dx = Array::zeros(&[b, c, h, w]);
                for bc in 0..b * c {
                    for oi in 0..oh * ow {
                        let flat = bc * oh * ow + oi;
                        dx.data_mut()[bc * h * w + argmax[flat]] += g.data()[flat];
                    }
                }
                a.accumulate_grad_owned(dx);
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn avg_pool_known() {
        let x = Tensor::param(
            Array::from_vec((0..16).map(|v| v as f32).collect(), &[1, 1, 4, 4]).unwrap(),
        );
        let y = x.avg_pool2d(2, 2).unwrap();
        assert_eq!(y.shape(), vec![1, 1, 2, 2]);
        assert_eq!(y.value().data(), &[2.5, 4.5, 10.5, 12.5]);
    }

    #[test]
    fn avg_pool_grad_spreads_uniformly() {
        let x = Tensor::param(Array::zeros(&[1, 1, 2, 2]));
        let y = x.avg_pool2d(2, 2).unwrap();
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.25; 4]);
    }

    #[test]
    fn global_avg_pool_means_planes() {
        let x = Tensor::param(
            Array::from_vec(
                vec![1.0, 3.0, 5.0, 7.0, 10.0, 20.0, 30.0, 40.0],
                &[1, 2, 2, 2],
            )
            .unwrap(),
        );
        let y = x.global_avg_pool().unwrap();
        assert_eq!(y.shape(), vec![1, 2]);
        assert_eq!(y.value().data(), &[4.0, 25.0]);
    }

    #[test]
    fn global_avg_pool_grad() {
        let x = Tensor::param(Array::zeros(&[2, 3, 4, 4]));
        let y = x.global_avg_pool().unwrap();
        y.sum().backward();
        let g = x.grad().unwrap();
        assert!(g.data().iter().all(|&v| (v - 1.0 / 16.0).abs() < 1e-7));
    }

    #[test]
    fn max_pool_picks_max_and_routes_grad() {
        let x = Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap());
        let y = x.max_pool2d(2, 2).unwrap();
        assert_eq!(y.value().data(), &[4.0]);
        y.sum().backward();
        assert_eq!(x.grad().unwrap().data(), &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn pool_validates() {
        let x = Tensor::param(Array::zeros(&[1, 1, 2, 2]));
        assert!(x.avg_pool2d(3, 1).is_err());
        assert!(x.avg_pool2d(0, 1).is_err());
        assert!(x.max_pool2d(2, 0).is_err());
        let x3 = Tensor::param(Array::zeros(&[2, 2, 2]));
        assert!(x3.global_avg_pool().is_err());
    }
}
