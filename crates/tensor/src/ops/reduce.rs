//! Reduction ops (sum / mean, whole-tensor and per-axis) and shape ops
//! (reshape, transpose) with gradients.

use crate::array::Array;
use crate::error::Result;
use crate::tensor::Tensor;

impl Tensor {
    /// Sums all elements into a scalar.
    #[must_use]
    pub fn sum(&self) -> Tensor {
        let value = Array::scalar(self.value().sum());
        let a = self.clone();
        let shape = self.shape();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad_owned(Array::full(&shape, g.item()));
                }
            }),
        )
    }

    /// Mean over all elements, as a scalar.
    #[must_use]
    pub fn mean(&self) -> Tensor {
        let n = self.value().len() as f32;
        self.sum().mul_scalar(1.0 / n)
    }

    /// Sums over `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns an error when `axis` is out of range.
    pub fn sum_axis(&self, axis: usize) -> Result<Tensor> {
        let value = self.value().sum_axis(axis)?;
        let a = self.clone();
        let in_shape = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    // Broadcast the reduced gradient back over the summed axis.
                    let mut expanded_shape = in_shape.clone();
                    expanded_shape[axis] = 1;
                    let gb = g
                        .reshape(&expanded_shape)
                        .expect("sum_axis grad reshape")
                        .mul(&Array::ones(&in_shape))
                        .expect("sum_axis grad broadcast");
                    a.accumulate_grad_owned(gb);
                }
            }),
        ))
    }

    /// Mean over `axis`, removing it from the shape.
    ///
    /// # Errors
    ///
    /// Returns an error when `axis` is out of range.
    pub fn mean_axis(&self, axis: usize) -> Result<Tensor> {
        let n = self.shape()[axis] as f32;
        Ok(self.sum_axis(axis)?.mul_scalar(1.0 / n))
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Errors
    ///
    /// Returns an error when the volumes differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let value = self.value().reshape(shape)?;
        let a = self.clone();
        let in_shape = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad_owned(g.reshape(&in_shape).expect("reshape grad"));
                }
            }),
        ))
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns an error when the tensor is not rank-2.
    pub fn transpose2d(&self) -> Result<Tensor> {
        let value = self.value().transpose2d()?;
        let a = self.clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    a.accumulate_grad_owned(g.transpose2d().expect("transpose grad"));
                }
            }),
        ))
    }

    /// Stacks rank-0 tensors into a rank-1 tensor of length `n`, preserving
    /// gradients to each element. Useful for aggregating per-block scalars
    /// (e.g. per-block latency terms) into a vector.
    ///
    /// # Errors
    ///
    /// Returns an error if `scalars` is empty or any element is not rank-0.
    pub fn stack_scalars(scalars: &[Tensor]) -> Result<Tensor> {
        if scalars.is_empty() {
            return Err(crate::error::TensorError::InvalidArgument(
                "stack_scalars on empty slice".into(),
            ));
        }
        let mut data = Vec::with_capacity(scalars.len());
        for s in scalars {
            let v = s.value();
            if v.len() != 1 {
                return Err(crate::error::TensorError::InvalidShape {
                    shape: v.shape().to_vec(),
                    reason: "stack_scalars requires scalar elements".into(),
                });
            }
            data.push(v.item());
        }
        let value = Array::from_vec(data, &[scalars.len()])?;
        let parents: Vec<Tensor> = scalars.to_vec();
        let captured = parents.clone();
        Ok(Tensor::from_op(
            value,
            parents,
            Box::new(move |g| {
                for (i, s) in captured.iter().enumerate() {
                    if s.requires_grad() {
                        let mut gs = Array::zeros(s.value().shape());
                        gs.data_mut()[0] = g.data()[i];
                        s.accumulate_grad_owned(gs);
                    }
                }
            }),
        ))
    }

    /// Selects one element of the tensor (by flat row-major index) as a
    /// rank-0 tensor, routing the gradient back to that element only.
    ///
    /// # Errors
    ///
    /// Returns an error when `index` is out of range.
    pub fn select(&self, index: usize) -> Result<Tensor> {
        let n = self.value().len();
        if index >= n {
            return Err(crate::error::TensorError::InvalidArgument(format!(
                "select index {index} out of range for {n} elements"
            )));
        }
        let value = Array::scalar(self.value().data()[index]);
        let a = self.clone();
        let shape = self.shape();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let mut ga = Array::zeros(&shape);
                    ga.data_mut()[index] = g.item();
                    a.accumulate_grad_owned(ga);
                }
            }),
        ))
    }

    /// Differentiable Log-Sum-Exp over all elements: a smooth approximation
    /// of the maximum, `max(x) <= lse(x) <= max(x) + ln(n)`.
    ///
    /// This implements the paper's Eq. 7, used to express throughput
    /// objectives (max block latency) differentiably. Shift-invariant
    /// stabilization is applied internally.
    #[must_use]
    pub fn logsumexp(&self) -> Tensor {
        // lse(x) = m + log(sum(exp(x - m))) with m = max(x), built from
        // primitive differentiable ops (the shift is a constant).
        let m = self.value().max();
        self.add_scalar(-m).exp().sum().log().add_scalar(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(Array::from_vec(v, s).unwrap())
    }

    #[test]
    fn sum_and_grad() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let y = a.sum();
        assert_eq!(y.item(), 6.0);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn mean_grad_scales() {
        let a = t(vec![2.0, 4.0], &[2]);
        let y = a.mean();
        assert_eq!(y.item(), 3.0);
        y.backward();
        assert_eq!(a.grad().unwrap().data(), &[0.5, 0.5]);
    }

    #[test]
    fn sum_axis_grad_broadcasts_back() {
        let a = t((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = a.sum_axis(0).unwrap(); // shape [3]
        assert_eq!(y.value().data(), &[3.0, 5.0, 7.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn mean_axis_values() {
        let a = t(vec![1.0, 3.0, 5.0, 7.0], &[2, 2]);
        let y = a.mean_axis(1).unwrap();
        assert_eq!(y.value().data(), &[2.0, 6.0]);
    }

    #[test]
    fn reshape_grad_roundtrips() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let y = a.reshape(&[4]).unwrap();
        y.sum().backward();
        assert_eq!(a.grad().unwrap().shape(), &[2, 2]);
        assert!(a.reshape(&[3]).is_err());
    }

    #[test]
    fn transpose_grad_transposes_back() {
        let a = t((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let y = a.transpose2d().unwrap();
        assert_eq!(y.shape(), vec![3, 2]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().shape(), &[2, 3]);
    }

    #[test]
    fn stack_scalars_collects_and_routes_grads() {
        let xs: Vec<Tensor> = (0..3)
            .map(|i| Tensor::param(Array::scalar(i as f32)))
            .collect();
        let v = Tensor::stack_scalars(&xs).unwrap();
        assert_eq!(v.value().data(), &[0.0, 1.0, 2.0]);
        // weight each element differently to check routing
        let w = Tensor::constant(Array::from_vec(vec![1.0, 10.0, 100.0], &[3]).unwrap());
        v.mul(&w).unwrap().sum().backward();
        assert_eq!(xs[0].grad().unwrap().item(), 1.0);
        assert_eq!(xs[1].grad().unwrap().item(), 10.0);
        assert_eq!(xs[2].grad().unwrap().item(), 100.0);
    }

    #[test]
    fn stack_scalars_rejects_bad_input() {
        assert!(Tensor::stack_scalars(&[]).is_err());
        let v = t(vec![1.0, 2.0], &[2]);
        assert!(Tensor::stack_scalars(&[v]).is_err());
    }

    #[test]
    fn select_routes_gradient() {
        let a = t(vec![1.0, 2.0, 3.0], &[3]);
        let y = a.select(1).unwrap();
        assert_eq!(y.item(), 2.0);
        y.mul_scalar(10.0).backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 10.0, 0.0]);
        assert!(a.select(3).is_err());
    }

    #[test]
    fn logsumexp_bounds_max() {
        let a = t(vec![1.0, 3.0, 2.0], &[3]);
        let l = a.logsumexp().item();
        assert!(l >= 3.0 && l <= 3.0 + (3.0f32).ln() + 1e-6, "lse {l}");
    }

    #[test]
    fn logsumexp_grad_is_softmax() {
        let a = t(vec![1.0, 2.0], &[2]);
        a.logsumexp().backward();
        let g = a.grad().unwrap();
        let e1 = (1.0f32).exp();
        let e2 = (2.0f32).exp();
        assert!((g.data()[0] - e1 / (e1 + e2)).abs() < 1e-5);
        assert!((g.data()[1] - e2 / (e1 + e2)).abs() < 1e-5);
    }

    #[test]
    fn logsumexp_stable_for_large_inputs() {
        let a = t(vec![1000.0, 1000.0], &[2]);
        let l = a.logsumexp().item();
        assert!((l - (1000.0 + (2.0f32).ln())).abs() < 1e-2);
    }
}
