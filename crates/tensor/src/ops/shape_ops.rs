//! Structural ops: concatenation, narrowing (slicing) and zero-padding,
//! with gradients.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::shape::check_axis;
use crate::tensor::Tensor;

/// Copies a block-contiguous region along `axis`.
///
/// Both arrays must agree on all dims except `axis`.
fn copy_along_axis(dst: &mut Array, dst_offset: usize, src: &Array, axis: usize) {
    let dst_shape = dst.shape().to_vec();
    let src_shape = src.shape().to_vec();
    let outer: usize = src_shape[..axis].iter().product();
    let inner: usize = src_shape[axis + 1..].iter().product();
    let src_axis = src_shape[axis];
    let dst_axis = dst_shape[axis];
    for o in 0..outer {
        for a in 0..src_axis {
            let s_base = (o * src_axis + a) * inner;
            let d_base = (o * dst_axis + dst_offset + a) * inner;
            dst.data_mut()[d_base..d_base + inner]
                .copy_from_slice(&src.data()[s_base..s_base + inner]);
        }
    }
}

/// Extracts a block along `axis` (the adjoint of [`copy_along_axis`]).
fn slice_along_axis(src: &Array, axis: usize, start: usize, len: usize) -> Array {
    let src_shape = src.shape().to_vec();
    let mut out_shape = src_shape.clone();
    out_shape[axis] = len;
    // Every block of the output is copied into below — uninit is safe.
    let mut out = Array::uninit(&out_shape);
    let outer: usize = src_shape[..axis].iter().product();
    let inner: usize = src_shape[axis + 1..].iter().product();
    let src_axis = src_shape[axis];
    for o in 0..outer {
        for a in 0..len {
            let s_base = (o * src_axis + start + a) * inner;
            let d_base = (o * len + a) * inner;
            out.data_mut()[d_base..d_base + inner]
                .copy_from_slice(&src.data()[s_base..s_base + inner]);
        }
    }
    out
}

impl Tensor {
    /// Concatenates tensors along `axis`. All inputs must agree on every
    /// other dimension.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty input list, an out-of-range axis, or
    /// mismatched shapes.
    pub fn concat(tensors: &[Tensor], axis: usize) -> Result<Tensor> {
        let Some(first) = tensors.first() else {
            return Err(TensorError::InvalidArgument(
                "concat of empty tensor list".into(),
            ));
        };
        let base_shape = first.shape();
        check_axis(axis, base_shape.len())?;
        let mut axis_total = 0usize;
        for t in tensors {
            let s = t.shape();
            if s.len() != base_shape.len()
                || s.iter()
                    .zip(&base_shape)
                    .enumerate()
                    .any(|(i, (a, b))| i != axis && a != b)
            {
                return Err(TensorError::ShapeMismatch {
                    lhs: base_shape.clone(),
                    rhs: s,
                    op: "concat",
                });
            }
            axis_total += s[axis];
        }
        let mut out_shape = base_shape.clone();
        out_shape[axis] = axis_total;
        // The copies below cover the whole axis extent — uninit is safe.
        let mut value = Array::uninit(&out_shape);
        let mut offset = 0usize;
        let mut offsets = Vec::with_capacity(tensors.len());
        for t in tensors {
            copy_along_axis(&mut value, offset, &t.value(), axis);
            offsets.push(offset);
            offset += t.shape()[axis];
        }
        let captured: Vec<Tensor> = tensors.to_vec();
        Ok(Tensor::from_op(
            value,
            tensors.to_vec(),
            Box::new(move |g| {
                for (t, &off) in captured.iter().zip(&offsets) {
                    if t.requires_grad() {
                        let len = t.shape()[axis];
                        t.accumulate_grad_owned(slice_along_axis(&g, axis, off, len));
                    }
                }
            }),
        ))
    }

    /// Returns the sub-tensor of `len` entries along `axis` starting at
    /// `start` (a contiguous slice; gradients scatter back into place).
    ///
    /// # Errors
    ///
    /// Returns an error when the axis or range is out of bounds or `len`
    /// is zero.
    pub fn narrow(&self, axis: usize, start: usize, len: usize) -> Result<Tensor> {
        let shape = self.shape();
        check_axis(axis, shape.len())?;
        if len == 0 || start + len > shape[axis] {
            return Err(TensorError::InvalidArgument(format!(
                "narrow range {start}..{} out of bounds for axis of size {}",
                start + len,
                shape[axis]
            )));
        }
        let value = slice_along_axis(&self.value(), axis, start, len);
        let a = self.clone();
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    let in_shape = a.value().shape().to_vec();
                    let mut ga = Array::zeros(&in_shape);
                    copy_along_axis(&mut ga, start, &g, axis);
                    a.accumulate_grad_owned(ga);
                }
            }),
        ))
    }

    /// Zero-pads the last two (spatial) axes of an NCHW tensor by `pad` on
    /// every side.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank-4.
    pub fn pad2d(&self, pad: usize) -> Result<Tensor> {
        let shape = self.shape();
        if shape.len() != 4 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "pad2d expects NCHW".into(),
            });
        }
        let (b, c, h, w) = (shape[0], shape[1], shape[2], shape[3]);
        let (oh, ow) = (h + 2 * pad, w + 2 * pad);
        // The border must stay zero, so the output is taken zeroed; the
        // input is read through the value guard instead of cloned.
        let xv = self.value();
        let mut out = Array::zeros(&[b, c, oh, ow]);
        for bc in 0..b * c {
            for y in 0..h {
                let src = &xv.data()[bc * h * w + y * w..bc * h * w + (y + 1) * w];
                let d_base = bc * oh * ow + (y + pad) * ow + pad;
                out.data_mut()[d_base..d_base + w].copy_from_slice(src);
            }
        }
        let a = self.clone();
        Ok(Tensor::from_op(
            out,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                // Every interior row is copied — uninit (pool-recycled).
                let mut ga = Array::uninit(&[b, c, h, w]);
                for bc in 0..b * c {
                    for y in 0..h {
                        let s_base = bc * oh * ow + (y + pad) * ow + pad;
                        let d = &mut ga.data_mut()[bc * h * w + y * w..bc * h * w + (y + 1) * w];
                        d.copy_from_slice(&g.data()[s_base..s_base + w]);
                    }
                }
                a.accumulate_grad_owned(ga);
            }),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>, s: &[usize]) -> Tensor {
        Tensor::param(Array::from_vec(v, s).unwrap())
    }

    #[test]
    fn concat_axis0_values_and_grads() {
        let a = t(vec![1.0, 2.0], &[1, 2]);
        let b = t(vec![3.0, 4.0, 5.0, 6.0], &[2, 2]);
        let c = Tensor::concat(&[a.clone(), b.clone()], 0).unwrap();
        assert_eq!(c.shape(), vec![3, 2]);
        assert_eq!(c.value().data(), &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let w = Tensor::constant(
            Array::from_vec((1..=6).map(|v| v as f32).collect(), &[3, 2]).unwrap(),
        );
        c.mul(&w).unwrap().sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0, 2.0]);
        assert_eq!(b.grad().unwrap().data(), &[3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_axis1_channels() {
        // The inception-style channel concat.
        let a = t(vec![1.0; 4], &[1, 1, 2, 2]);
        let b = t(vec![2.0; 8], &[1, 2, 2, 2]);
        let c = Tensor::concat(&[a, b], 1).unwrap();
        assert_eq!(c.shape(), vec![1, 3, 2, 2]);
        assert_eq!(&c.value().data()[..4], &[1.0; 4]);
        assert_eq!(&c.value().data()[4..], &[2.0; 8]);
    }

    #[test]
    fn concat_validates() {
        assert!(Tensor::concat(&[], 0).is_err());
        let a = t(vec![0.0; 4], &[2, 2]);
        let b = t(vec![0.0; 6], &[2, 3]);
        assert!(Tensor::concat(&[a.clone(), b], 0).is_err());
        assert!(Tensor::concat(&[a], 5).is_err());
    }

    #[test]
    fn narrow_extracts_and_scatters_grad() {
        let a = t((0..6).map(|v| v as f32).collect(), &[2, 3]);
        let s = a.narrow(1, 1, 2).unwrap();
        assert_eq!(s.shape(), vec![2, 2]);
        assert_eq!(s.value().data(), &[1.0, 2.0, 4.0, 5.0]);
        s.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0, 1.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn narrow_validates() {
        let a = t(vec![0.0; 6], &[2, 3]);
        assert!(a.narrow(1, 2, 2).is_err());
        assert!(a.narrow(1, 0, 0).is_err());
        assert!(a.narrow(2, 0, 1).is_err());
    }

    #[test]
    fn narrow_then_concat_roundtrip() {
        let a = t((0..12).map(|v| v as f32).collect(), &[2, 6]);
        let left = a.narrow(1, 0, 3).unwrap();
        let right = a.narrow(1, 3, 3).unwrap();
        let back = Tensor::concat(&[left, right], 1).unwrap();
        assert_eq!(back.value().data(), a.value().data());
    }

    #[test]
    fn pad2d_centers_input() {
        let a = t(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]);
        let p = a.pad2d(1).unwrap();
        assert_eq!(p.shape(), vec![1, 1, 4, 4]);
        let v = p.value_clone();
        assert_eq!(v.data()[5], 1.0);
        assert_eq!(v.data()[6], 2.0);
        assert_eq!(v.data()[0], 0.0);
        assert_eq!(v.sum(), 10.0);
        p.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[1.0; 4]);
    }

    #[test]
    fn pad2d_rejects_non_nchw() {
        let a = t(vec![0.0; 4], &[2, 2]);
        assert!(a.pad2d(1).is_err());
    }
}
