//! Softmax-family ops: softmax, log-softmax and fused softmax cross-entropy,
//! each with a hand-derived backward pass.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::kernel;
use crate::tensor::Tensor;

/// Computes a numerically-stable softmax along the last axis of `x`,
/// returning a new array of the same shape. Rows are independent, so they
/// fan out over the worker pool for large inputs with bitwise-identical
/// results at any thread count.
#[must_use]
pub fn softmax_last_axis(x: &Array) -> Array {
    let shape = x.shape().to_vec();
    let c = (*shape.last().unwrap_or(&1)).max(1);
    let mut out = x.clone();
    kernel::par_rows(out.data_mut(), c, |_, row| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut s = 0.0;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            s += *v;
        }
        for v in row.iter_mut() {
            *v /= s;
        }
    });
    out
}

impl Tensor {
    /// Softmax along the last axis (requires rank >= 1).
    ///
    /// Backward uses the Jacobian-vector product
    /// `dx = s ⊙ (g − ⟨g, s⟩)` per row.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 input.
    pub fn softmax(&self) -> Result<Tensor> {
        let shape = self.shape();
        if shape.is_empty() {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "softmax requires rank >= 1".into(),
            });
        }
        let s = softmax_last_axis(&self.value());
        let a = self.clone();
        let s_saved = s.clone();
        Ok(Tensor::from_op(
            s,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let shape = s_saved.shape().to_vec();
                let c = *shape.last().unwrap();
                // Every element of every row is written below, so the
                // buffer can start uninitialized (pool-recycled).
                let mut dx = Array::uninit(&shape);
                kernel::par_rows(dx.data_mut(), c, |r, drow| {
                    let srow = &s_saved.data()[r * c..(r + 1) * c];
                    let grow = &g.data()[r * c..(r + 1) * c];
                    let dot: f32 = srow.iter().zip(grow).map(|(&s, &g)| s * g).sum();
                    for i in 0..c {
                        drow[i] = srow[i] * (grow[i] - dot);
                    }
                });
                a.accumulate_grad_owned(dx);
            }),
        ))
    }

    /// Log-softmax along the last axis.
    ///
    /// Backward: `dx = g − softmax(x) · Σg` per row.
    ///
    /// # Errors
    ///
    /// Returns an error for rank-0 input.
    pub fn log_softmax(&self) -> Result<Tensor> {
        let shape = self.shape();
        if shape.is_empty() {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "log_softmax requires rank >= 1".into(),
            });
        }
        let s = softmax_last_axis(&self.value());
        let value = s.map(|v| v.max(1e-30).ln());
        let a = self.clone();
        let s_saved = s;
        Ok(Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let shape = s_saved.shape().to_vec();
                let c = *shape.last().unwrap();
                // Full overwrite per row, so uninit (pool-recycled) is safe.
                let mut dx = Array::uninit(&shape);
                kernel::par_rows(dx.data_mut(), c, |r, drow| {
                    let srow = &s_saved.data()[r * c..(r + 1) * c];
                    let grow = &g.data()[r * c..(r + 1) * c];
                    let gsum: f32 = grow.iter().sum();
                    for i in 0..c {
                        drow[i] = grow[i] - srow[i] * gsum;
                    }
                });
                a.accumulate_grad_owned(dx);
            }),
        ))
    }

    /// Fused mean softmax cross-entropy between logits `[batch, classes]`
    /// and integer class `labels` (one per row); returns a scalar loss.
    ///
    /// Backward is the classic `(softmax − one-hot) / batch`.
    ///
    /// # Errors
    ///
    /// Returns an error unless the tensor is rank-2 with `labels.len()`
    /// equal to the batch dimension and every label in range.
    pub fn cross_entropy(&self, labels: &[usize]) -> Result<Tensor> {
        let shape = self.shape();
        if shape.len() != 2 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "cross_entropy expects [batch, classes] logits".into(),
            });
        }
        let (b, c) = (shape[0], shape[1]);
        if labels.len() != b {
            return Err(TensorError::InvalidArgument(format!(
                "labels length {} != batch {b}",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
            return Err(TensorError::InvalidArgument(format!(
                "label {bad} out of range for {c} classes"
            )));
        }
        let probs = softmax_last_axis(&self.value());
        let mut loss = 0.0f32;
        for (r, &lab) in labels.iter().enumerate() {
            loss -= probs.data()[r * c + lab].max(1e-30).ln();
        }
        loss /= b as f32;
        let a = self.clone();
        let labels = labels.to_vec();
        Ok(Tensor::from_op(
            Array::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let scale = g.item() / b as f32;
                let mut dx = probs.clone();
                kernel::par_rows(dx.data_mut(), c, |r, row| {
                    let lab = labels[r];
                    for (k, v) in row.iter_mut().enumerate() {
                        let t = if k == lab { 1.0 } else { 0.0 };
                        *v = (*v - t) * scale;
                    }
                });
                a.accumulate_grad_owned(dx);
            }),
        ))
    }
}

impl Tensor {
    /// Label-smoothed mean softmax cross-entropy: the target distribution
    /// puts `1 − ε` on the true class and `ε/(C−1)` on the others — the
    /// regularizer commonly used when training NAS-derived networks from
    /// scratch.
    ///
    /// Backward is `(softmax − target) / batch`.
    ///
    /// # Errors
    ///
    /// Returns an error on the same conditions as [`Tensor::cross_entropy`],
    /// or when `epsilon` is outside `[0, 1)`.
    pub fn cross_entropy_smooth(&self, labels: &[usize], epsilon: f32) -> Result<Tensor> {
        if !(0.0..1.0).contains(&epsilon) {
            return Err(TensorError::InvalidArgument(format!(
                "label smoothing epsilon {epsilon} outside [0, 1)"
            )));
        }
        let shape = self.shape();
        if shape.len() != 2 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "cross_entropy_smooth expects [batch, classes] logits".into(),
            });
        }
        let (b, c) = (shape[0], shape[1]);
        if labels.len() != b {
            return Err(TensorError::InvalidArgument(format!(
                "labels length {} != batch {b}",
                labels.len()
            )));
        }
        if let Some(&bad) = labels.iter().find(|&&l| l >= c) {
            return Err(TensorError::InvalidArgument(format!(
                "label {bad} out of range for {c} classes"
            )));
        }
        if c < 2 {
            return Err(TensorError::InvalidShape {
                shape,
                reason: "label smoothing needs at least 2 classes".into(),
            });
        }
        let on = 1.0 - epsilon;
        let off = epsilon / (c as f32 - 1.0);
        let probs = softmax_last_axis(&self.value());
        // loss = -sum_k target_k * log p_k, averaged over the batch.
        let mut loss = 0.0f32;
        for (r, &lab) in labels.iter().enumerate() {
            for k in 0..c {
                let t = if k == lab { on } else { off };
                loss -= t * probs.data()[r * c + k].max(1e-30).ln();
            }
        }
        loss /= b as f32;
        let a = self.clone();
        let labels = labels.to_vec();
        Ok(Tensor::from_op(
            Array::scalar(loss),
            vec![self.clone()],
            Box::new(move |g| {
                if !a.requires_grad() {
                    return;
                }
                let scale = g.item() / b as f32;
                let mut dx = probs.clone();
                kernel::par_rows(dx.data_mut(), c, |r, row| {
                    let lab = labels[r];
                    for (k, v) in row.iter_mut().enumerate() {
                        let t = if k == lab { on } else { off };
                        *v = (*v - t) * scale;
                    }
                });
                a.accumulate_grad_owned(dx);
            }),
        ))
    }
}

/// Top-1 accuracy of logits `[batch, classes]` against integer labels.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `labels.len()` differs from the batch.
#[must_use]
pub fn accuracy(logits: &Array, labels: &[usize]) -> f32 {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "accuracy expects [batch, classes]");
    let (b, c) = (shape[0], shape[1]);
    assert_eq!(labels.len(), b);
    let mut correct = 0usize;
    #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
    for r in 0..b {
        let row = &logits.data()[r * c..(r + 1) * c];
        let mut best = 0;
        for (i, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = i;
            }
        }
        if best == labels[r] {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

/// Top-k accuracy of logits `[batch, classes]` against integer labels.
///
/// # Panics
///
/// Panics if `logits` is not rank-2 or `labels.len()` differs from the batch.
#[must_use]
pub fn top_k_accuracy(logits: &Array, labels: &[usize], k: usize) -> f32 {
    let shape = logits.shape();
    assert_eq!(shape.len(), 2, "top_k_accuracy expects [batch, classes]");
    let (b, c) = (shape[0], shape[1]);
    assert_eq!(labels.len(), b);
    let k = k.min(c);
    let mut correct = 0usize;
    for r in 0..b {
        let row = &logits.data()[r * c..(r + 1) * c];
        let target = row[labels[r]];
        // Count entries strictly greater than the target's score.
        let higher = row.iter().filter(|&&v| v > target).count();
        if higher < k {
            correct += 1;
        }
    }
    correct as f32 / b as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x =
            Tensor::param(Array::from_vec(vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0], &[2, 3]).unwrap());
        let s = x.softmax().unwrap();
        let v = s.value();
        let r0: f32 = v.data()[..3].iter().sum();
        let r1: f32 = v.data()[3..].iter().sum();
        assert!((r0 - 1.0).abs() < 1e-6 && (r1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn softmax_invariant_to_shift() {
        let a = Array::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = a.map(|v| v + 1000.0);
        let sa = softmax_last_axis(&a);
        let sb = softmax_last_axis(&b);
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_grad_sums_to_zero() {
        // Because softmax output sums to 1, row gradients sum to 0 when
        // seeded with any g.
        let x = Tensor::param(Array::from_vec(vec![0.3, -0.7, 1.1], &[1, 3]).unwrap());
        let s = x.softmax().unwrap();
        let w = Tensor::constant(Array::from_vec(vec![1.0, 5.0, -2.0], &[1, 3]).unwrap());
        s.mul(&w).unwrap().sum().backward();
        let g = x.grad().unwrap();
        let total: f32 = g.data().iter().sum();
        assert!(total.abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::param(Array::from_vec(vec![0.5, 1.5, -0.5], &[1, 3]).unwrap());
        let ls = x.log_softmax().unwrap();
        let s = softmax_last_axis(&x.value());
        for (l, p) in ls.value().data().iter().zip(s.data()) {
            assert!((l - p.ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn cross_entropy_perfect_prediction_small() {
        let logits = Tensor::param(
            Array::from_vec(vec![100.0, 0.0, 0.0, 0.0, 100.0, 0.0], &[2, 3]).unwrap(),
        );
        let loss = logits.cross_entropy(&[0, 1]).unwrap();
        assert!(loss.item() < 1e-3);
    }

    #[test]
    fn cross_entropy_uniform_is_log_c() {
        let logits = Tensor::param(Array::zeros(&[4, 10]));
        let loss = logits.cross_entropy(&[0, 1, 2, 3]).unwrap();
        assert!((loss.item() - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn cross_entropy_gradient_formula() {
        let logits = Tensor::param(Array::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap());
        let loss = logits.cross_entropy(&[0]).unwrap();
        loss.backward();
        let g = logits.grad().unwrap();
        let p = softmax_last_axis(&logits.value());
        assert!((g.data()[0] - (p.data()[0] - 1.0)).abs() < 1e-6);
        assert!((g.data()[1] - p.data()[1]).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_validates() {
        let logits = Tensor::param(Array::zeros(&[2, 3]));
        assert!(logits.cross_entropy(&[0]).is_err()); // wrong batch
        assert!(logits.cross_entropy(&[0, 3]).is_err()); // label out of range
        let bad = Tensor::param(Array::zeros(&[6]));
        assert!(bad.cross_entropy(&[0]).is_err()); // wrong rank
    }

    #[test]
    fn smooth_ce_reduces_to_plain_at_zero_epsilon() {
        let logits = Tensor::param(Array::from_vec(vec![1.0, 2.0, -0.5], &[1, 3]).unwrap());
        let plain = logits.cross_entropy(&[1]).unwrap().item();
        let smooth = logits.cross_entropy_smooth(&[1], 0.0).unwrap().item();
        assert!((plain - smooth).abs() < 1e-6);
    }

    #[test]
    fn smooth_ce_penalizes_overconfidence() {
        // With smoothing, an extremely confident correct prediction costs
        // more than a calibrated one.
        let confident = Tensor::param(Array::from_vec(vec![50.0, 0.0, 0.0], &[1, 3]).unwrap());
        let calibrated = Tensor::param(Array::from_vec(vec![3.0, 0.0, 0.0], &[1, 3]).unwrap());
        let lc = confident.cross_entropy_smooth(&[0], 0.1).unwrap().item();
        let lk = calibrated.cross_entropy_smooth(&[0], 0.1).unwrap().item();
        assert!(lc > lk, "confident {lc} vs calibrated {lk}");
    }

    #[test]
    fn smooth_ce_gradient_formula() {
        let logits = Tensor::param(Array::from_vec(vec![0.5, -0.5], &[1, 2]).unwrap());
        let eps = 0.2f32;
        logits.cross_entropy_smooth(&[0], eps).unwrap().backward();
        let g = logits.grad().unwrap();
        let p = softmax_last_axis(&logits.value());
        assert!((g.data()[0] - (p.data()[0] - 0.8)).abs() < 1e-6);
        assert!((g.data()[1] - (p.data()[1] - 0.2)).abs() < 1e-6);
    }

    #[test]
    fn smooth_ce_validates() {
        let logits = Tensor::param(Array::zeros(&[1, 3]));
        assert!(logits.cross_entropy_smooth(&[0], 1.0).is_err());
        assert!(logits.cross_entropy_smooth(&[0], -0.1).is_err());
        assert!(logits.cross_entropy_smooth(&[5], 0.1).is_err());
        let one_class = Tensor::param(Array::zeros(&[1, 1]));
        assert!(one_class.cross_entropy_smooth(&[0], 0.1).is_err());
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Array::from_vec(vec![0.9, 0.1, 0.2, 0.8], &[2, 2]).unwrap();
        assert_eq!(accuracy(&logits, &[0, 1]), 1.0);
        assert_eq!(accuracy(&logits, &[1, 1]), 0.5);
    }

    #[test]
    fn top_k_accuracy_wider_is_easier() {
        let logits = Array::from_vec(
            vec![0.5, 0.4, 0.3, 0.2, 0.1, 0.0, 0.1, 0.2, 0.3, 0.4],
            &[2, 5],
        )
        .unwrap();
        let labels = [1usize, 2];
        let t1 = top_k_accuracy(&logits, &labels, 1);
        let t3 = top_k_accuracy(&logits, &labels, 3);
        assert!(t3 >= t1);
        assert_eq!(top_k_accuracy(&logits, &labels, 5), 1.0);
    }
}
