//! Elementwise unary functions and their gradients.

use crate::array::Array;
use crate::tensor::Tensor;

/// Builds a unary elementwise op node given forward values and the local
/// derivative computed from the *input* values.
///
/// The backward pass fuses `g * f'(x)` into a single traversal
/// ([`Array::zip_same`]): one allocation instead of two, and pool-chunked
/// for large activations.
fn unary(
    input: &Tensor,
    fwd: impl Fn(f32) -> f32 + Sync,
    dfd: impl Fn(f32) -> f32 + Send + Sync + 'static,
) -> Tensor {
    let value = input.value().map(&fwd);
    let a = input.clone();
    Tensor::from_op(
        value,
        vec![input.clone()],
        // The input values are read back through the parent handle at
        // backward time rather than cloned into the closure at forward
        // time; the value guard is dropped before accumulating into the
        // same node.
        Box::new(move |g| {
            if a.requires_grad() {
                let dx = {
                    let va = a.value();
                    g.zip_same(&va, |gv, v| gv * dfd(v))
                };
                a.accumulate_grad_owned(dx);
            }
        }),
    )
}

impl Tensor {
    /// Elementwise exponential.
    #[must_use]
    pub fn exp(&self) -> Tensor {
        unary(self, f32::exp, f32::exp)
    }

    /// Elementwise natural logarithm. Inputs should be positive.
    #[must_use]
    pub fn log(&self) -> Tensor {
        unary(self, f32::ln, |v| 1.0 / v)
    }

    /// Elementwise square root. Inputs should be non-negative.
    #[must_use]
    pub fn sqrt(&self) -> Tensor {
        unary(self, f32::sqrt, |v| 0.5 / v.sqrt())
    }

    /// Elementwise hyperbolic tangent.
    #[must_use]
    pub fn tanh(&self) -> Tensor {
        unary(self, f32::tanh, |v| {
            let t = v.tanh();
            1.0 - t * t
        })
    }

    /// Elementwise logistic sigmoid.
    #[must_use]
    pub fn sigmoid(&self) -> Tensor {
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        unary(self, sig, move |v| {
            let s = sig(v);
            s * (1.0 - s)
        })
    }

    /// Rectified linear unit `max(v, 0)`.
    #[must_use]
    pub fn relu(&self) -> Tensor {
        unary(self, |v| v.max(0.0), |v| if v > 0.0 { 1.0 } else { 0.0 })
    }

    /// ReLU6, `min(max(v, 0), 6)` — the activation used by MobileNet-style
    /// blocks (and by the MBConv candidate operations in the EDD supernet).
    #[must_use]
    pub fn relu6(&self) -> Tensor {
        unary(
            self,
            |v| v.clamp(0.0, 6.0),
            |v| if v > 0.0 && v < 6.0 { 1.0 } else { 0.0 },
        )
    }

    /// Swish / SiLU activation `x · σ(x)` — used by MnasNet-class models
    /// with squeeze-excite blocks.
    #[must_use]
    pub fn swish(&self) -> Tensor {
        let sig = |v: f32| 1.0 / (1.0 + (-v).exp());
        unary(
            self,
            move |v| v * sig(v),
            move |v| {
                let s = sig(v);
                s + v * s * (1.0 - s)
            },
        )
    }

    /// Leaky ReLU with negative slope `alpha`.
    #[must_use]
    pub fn leaky_relu(&self, alpha: f32) -> Tensor {
        unary(
            self,
            move |v| if v > 0.0 { v } else { alpha * v },
            move |v| if v > 0.0 { 1.0 } else { alpha },
        )
    }

    /// Elementwise square.
    #[must_use]
    pub fn square(&self) -> Tensor {
        unary(self, |v| v * v, |v| 2.0 * v)
    }

    /// Elementwise absolute value (subgradient 0 at the kink).
    #[must_use]
    pub fn abs(&self) -> Tensor {
        unary(self, f32::abs, |v| {
            if v > 0.0 {
                1.0
            } else if v < 0.0 {
                -1.0
            } else {
                0.0
            }
        })
    }

    /// Clamps values to `[lo, hi]`; gradient is 1 strictly inside the range
    /// and 0 outside (a hard clamp, not a straight-through estimator).
    #[must_use]
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        unary(
            self,
            move |v| v.clamp(lo, hi),
            move |v| if v > lo && v < hi { 1.0 } else { 0.0 },
        )
    }

    /// Fake-quantizes values to `bits`-bit symmetric fixed point over
    /// `[-range, range]` with a straight-through estimator: forward rounds to
    /// the quantization grid, backward passes the gradient unchanged inside
    /// the representable range (and zero outside).
    ///
    /// This is the Stage-1 differentiable quantization primitive of the EDD
    /// formulation: it lets accuracy loss feel the chosen bit-width while
    /// remaining trainable.
    #[must_use]
    pub fn fake_quantize(&self, bits: u32, range: f32) -> Tensor {
        let levels = (1u64 << (bits.clamp(1, 31) - 1)) as f32; // half-range levels
        let step = range / levels;
        let fwd = move |v: f32| {
            let clamped = v.clamp(-range, range);
            (clamped / step).round() * step
        };
        let value = self.value().map(fwd);
        let a = self.clone();
        Tensor::from_op(
            value,
            vec![self.clone()],
            Box::new(move |g| {
                if a.requires_grad() {
                    // STE: pass-through inside the clamp range, fused with
                    // the incoming gradient in one traversal. Input values
                    // are read back via the parent handle (guard dropped
                    // before accumulating).
                    let dx = {
                        let va = a.value();
                        g.zip_same(&va, |gv, v| if v.abs() <= range { gv } else { 0.0 })
                    };
                    a.accumulate_grad_owned(dx);
                }
            }),
        )
    }
}

/// Quantization error `max |x - fake_quantize(x)|` for a plain array, used by
/// tests and calibration code.
#[must_use]
pub fn quantization_error(x: &Array, bits: u32, range: f32) -> f32 {
    let levels = (1u64 << (bits.clamp(1, 31) - 1)) as f32;
    let step = range / levels;
    x.data()
        .iter()
        .map(|&v| {
            let q = (v.clamp(-range, range) / step).round() * step;
            (v - q).abs()
        })
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: Vec<f32>) -> Tensor {
        let n = v.len();
        Tensor::param(Array::from_vec(v, &[n]).unwrap())
    }

    #[test]
    fn exp_log_inverse() {
        let a = t(vec![0.5, 1.0, 2.0]);
        let y = a.exp().log();
        for (x, y) in a.value().data().iter().zip(y.value().data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn exp_grad() {
        let a = t(vec![1.0]);
        let y = a.exp().sum();
        y.backward();
        assert!((a.grad().unwrap().data()[0] - std::f32::consts::E).abs() < 1e-5);
    }

    #[test]
    fn log_grad() {
        let a = t(vec![4.0]);
        a.log().sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.25]);
    }

    #[test]
    fn sqrt_grad() {
        let a = t(vec![9.0]);
        a.sqrt().sum().backward();
        assert!((a.grad().unwrap().data()[0] - 1.0 / 6.0).abs() < 1e-6);
    }

    #[test]
    fn tanh_saturates_and_grads() {
        let a = t(vec![0.0, 100.0]);
        let y = a.tanh();
        assert_eq!(y.value().data()[0], 0.0);
        assert!((y.value().data()[1] - 1.0).abs() < 1e-6);
        y.sum().backward();
        let g = a.grad().unwrap();
        assert_eq!(g.data()[0], 1.0);
        assert!(g.data()[1].abs() < 1e-6);
    }

    #[test]
    fn sigmoid_midpoint() {
        let a = t(vec![0.0]);
        let y = a.sigmoid();
        assert_eq!(y.value().data()[0], 0.5);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data()[0], 0.25);
    }

    #[test]
    fn relu_masks_negatives() {
        let a = t(vec![-1.0, 2.0]);
        let y = a.relu();
        assert_eq!(y.value().data(), &[0.0, 2.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn relu6_clips_high() {
        let a = t(vec![-1.0, 3.0, 10.0]);
        let y = a.relu6();
        assert_eq!(y.value().data(), &[0.0, 3.0, 6.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn clamp_interior_gradient() {
        let a = t(vec![-5.0, 0.5, 5.0]);
        let y = a.clamp(-1.0, 1.0);
        assert_eq!(y.value().data(), &[-1.0, 0.5, 1.0]);
        y.sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn fake_quantize_rounds_to_grid() {
        let a = t(vec![0.26, -0.9]);
        // 2 levels over [-1,1]: step 0.5 with 2-bit quantization.
        let y = a.fake_quantize(2, 1.0);
        assert_eq!(y.value().data(), &[0.5, -1.0]);
    }

    #[test]
    fn fake_quantize_ste_passes_gradient() {
        let a = t(vec![0.3, 5.0]);
        let y = a.fake_quantize(4, 1.0);
        y.sum().backward();
        // In-range passes gradient; out-of-range blocked.
        assert_eq!(a.grad().unwrap().data(), &[1.0, 0.0]);
    }

    #[test]
    fn quantization_error_decreases_with_bits() {
        let x =
            Array::from_vec((0..100).map(|i| (i as f32) / 50.0 - 1.0).collect(), &[100]).unwrap();
        let e4 = quantization_error(&x, 4, 1.0);
        let e8 = quantization_error(&x, 8, 1.0);
        let e16 = quantization_error(&x, 16, 1.0);
        assert!(e4 > e8 && e8 > e16);
    }

    #[test]
    fn swish_values_and_grad() {
        let a = t(vec![0.0, 2.0]);
        let y = a.swish();
        assert_eq!(y.value().data()[0], 0.0);
        let expect = 2.0 / (1.0 + (-2.0f32).exp());
        assert!((y.value().data()[1] - expect).abs() < 1e-6);
        y.sum().backward();
        // swish'(0) = 0.5
        assert!((a.grad().unwrap().data()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn leaky_relu_slopes() {
        let a = t(vec![-2.0, 3.0]);
        let y = a.leaky_relu(0.1);
        assert!((y.value().data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.value().data()[1], 3.0);
        y.sum().backward();
        let g = a.grad().unwrap();
        assert!((g.data()[0] - 0.1).abs() < 1e-6);
        assert_eq!(g.data()[1], 1.0);
    }

    #[test]
    fn square_abs_grad() {
        let a = t(vec![-3.0]);
        a.square().sum().backward();
        assert_eq!(a.grad().unwrap().data(), &[-6.0]);
        let b = t(vec![-3.0]);
        b.abs().sum().backward();
        assert_eq!(b.grad().unwrap().data(), &[-1.0]);
    }
}
