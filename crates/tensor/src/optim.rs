//! First-order optimizers over collections of parameter [`Tensor`]s.

use crate::array::Array;
use crate::error::{Result, TensorError};
use crate::tensor::Tensor;

/// Validates imported per-parameter moment buffers against the tracked
/// parameters: one slot per parameter, shapes matching where present.
fn check_moments(name: &str, params: &[Tensor], moments: &[Option<Array>]) -> Result<()> {
    if moments.len() != params.len() {
        return Err(TensorError::InvalidArgument(format!(
            "{name}: state has {} slots but optimizer tracks {} parameters",
            moments.len(),
            params.len()
        )));
    }
    for (i, (p, m)) in params.iter().zip(moments).enumerate() {
        if let Some(m) = m {
            let want = p.value_clone().shape().to_vec();
            if m.shape() != want.as_slice() {
                return Err(TensorError::InvalidArgument(format!(
                    "{name}: slot {i} has shape {:?} but parameter has {:?}",
                    m.shape(),
                    want
                )));
            }
        }
    }
    Ok(())
}

/// Common interface of the optimizers in this crate.
pub trait Optimizer {
    /// Applies one update step using the gradients currently accumulated on
    /// the tracked parameters. Parameters with no gradient are skipped.
    fn step(&mut self);

    /// Clears the gradients of all tracked parameters.
    fn zero_grad(&self);

    /// The parameters tracked by this optimizer.
    fn params(&self) -> &[Tensor];

    /// Sets the learning rate (for schedules).
    fn set_lr(&mut self, lr: f32);

    /// Current learning rate.
    fn lr(&self) -> f32;
}

/// Stochastic gradient descent with classical momentum and decoupled weight
/// decay.
#[derive(Debug)]
pub struct Sgd {
    params: Vec<Tensor>,
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    velocity: Vec<Option<Array>>,
}

impl Sgd {
    /// Creates an SGD optimizer over `params`.
    #[must_use]
    pub fn new(params: Vec<Tensor>, lr: f32, momentum: f32, weight_decay: f32) -> Self {
        let n = params.len();
        Sgd {
            params,
            lr,
            momentum,
            weight_decay,
            velocity: vec![None; n],
        }
    }

    /// The per-parameter momentum buffers, for checkpointing. Slots are
    /// `None` for parameters that have not received a gradient yet.
    #[must_use]
    pub fn export_state(&self) -> Vec<Option<Array>> {
        self.velocity.clone()
    }

    /// Restores momentum buffers captured by [`Sgd::export_state`].
    ///
    /// # Errors
    ///
    /// Rejects a state whose slot count or shapes do not match the tracked
    /// parameters.
    pub fn import_state(&mut self, velocity: Vec<Option<Array>>) -> Result<()> {
        check_moments("Sgd::import_state", &self.params, &velocity)?;
        self.velocity = velocity;
        Ok(())
    }
}

impl Optimizer for Sgd {
    fn step(&mut self) {
        let lr = self.lr;
        for (i, p) in self.params.iter().enumerate() {
            // The gradient is consumed by the step (moved out of the
            // parameter, buffer recycled on drop); `zero_grad` afterwards
            // stays a harmless no-op.
            let Some(mut g) = p.take_grad() else { continue };
            if self.weight_decay != 0.0 {
                let v = p.value();
                g.add_scaled_assign(&v, self.weight_decay);
            }
            if self.momentum != 0.0 {
                let vel = self.velocity[i].get_or_insert_with(|| Array::zeros(g.shape()));
                // v <- mu * v + g
                for (v, &gv) in vel.data_mut().iter_mut().zip(g.data()) {
                    *v = self.momentum * *v + gv;
                }
                // Apply the velocity directly — no clone of the buffer.
                let vel = &*vel;
                p.update_value(|val| val.add_scaled_assign(vel, -lr));
            } else {
                p.update_value(|val| val.add_scaled_assign(&g, -lr));
            }
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Adam optimizer (Kingma & Ba) with optional decoupled weight decay
/// (AdamW-style when `weight_decay > 0`).
#[derive(Debug)]
pub struct Adam {
    params: Vec<Tensor>,
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    m: Vec<Option<Array>>,
    v: Vec<Option<Array>>,
    t: u64,
}

impl Adam {
    /// Creates an Adam optimizer with the standard defaults
    /// `beta1 = 0.9`, `beta2 = 0.999`, `eps = 1e-8`.
    #[must_use]
    pub fn new(params: Vec<Tensor>, lr: f32) -> Self {
        Self::with_config(params, lr, 0.9, 0.999, 1e-8, 0.0)
    }

    /// Creates an Adam optimizer with explicit hyperparameters.
    #[must_use]
    pub fn with_config(
        params: Vec<Tensor>,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let n = params.len();
        Adam {
            params,
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            m: vec![None; n],
            v: vec![None; n],
            t: 0,
        }
    }

    /// The full Adam state (step count and both moment vectors), for
    /// checkpointing.
    #[must_use]
    pub fn export_state(&self) -> AdamState {
        AdamState {
            t: self.t,
            m: self.m.clone(),
            v: self.v.clone(),
        }
    }

    /// Restores state captured by [`Adam::export_state`]. The step count
    /// matters: bias correction depends on `t`, so resuming without it
    /// would change every subsequent update.
    ///
    /// # Errors
    ///
    /// Rejects a state whose slot counts or shapes do not match the
    /// tracked parameters.
    pub fn import_state(&mut self, state: AdamState) -> Result<()> {
        check_moments("Adam::import_state (m)", &self.params, &state.m)?;
        check_moments("Adam::import_state (v)", &self.params, &state.v)?;
        self.t = state.t;
        self.m = state.m;
        self.v = state.v;
        Ok(())
    }
}

/// Snapshot of an [`Adam`] optimizer's internal state.
#[derive(Debug, Clone)]
pub struct AdamState {
    /// Completed step count (drives bias correction).
    pub t: u64,
    /// First-moment estimates, one slot per parameter.
    pub m: Vec<Option<Array>>,
    /// Second-moment estimates, one slot per parameter.
    pub v: Vec<Option<Array>>,
}

impl Optimizer for Adam {
    fn step(&mut self) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, p) in self.params.iter().enumerate() {
            // Consumed by the step; the buffer recycles on drop.
            let Some(g) = p.take_grad() else { continue };
            let m = self.m[i].get_or_insert_with(|| Array::zeros(g.shape()));
            let v = self.v[i].get_or_insert_with(|| Array::zeros(g.shape()));
            for ((mv, vv), &gv) in m.data_mut().iter_mut().zip(v.data_mut()).zip(g.data()) {
                *mv = self.beta1 * *mv + (1.0 - self.beta1) * gv;
                *vv = self.beta2 * *vv + (1.0 - self.beta2) * gv * gv;
            }
            let lr = self.lr;
            let eps = self.eps;
            let wd = self.weight_decay;
            let m_ref = &*m;
            let v_ref = &*v;
            p.update_value(|val| {
                for ((x, &mv), &vv) in val
                    .data_mut()
                    .iter_mut()
                    .zip(m_ref.data())
                    .zip(v_ref.data())
                {
                    let mhat = mv / bc1;
                    let vhat = vv / bc2;
                    *x -= lr * (mhat / (vhat.sqrt() + eps) + wd * *x);
                }
            });
        }
    }

    fn zero_grad(&self) {
        for p in &self.params {
            p.zero_grad();
        }
    }

    fn params(&self) -> &[Tensor] {
        &self.params
    }

    fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    fn lr(&self) -> f32 {
        self.lr
    }
}

/// Clips the global L2 norm of the gradients on `params` to `max_norm`.
///
/// Returns the pre-clip global norm. Gradients stay accumulated on the
/// parameters (rescaled in place, no clones) so the optimizer step that
/// follows sees the clipped values.
pub fn clip_grad_norm(params: &[Tensor], max_norm: f32) -> f32 {
    let mut total = 0.0f32;
    for p in params {
        if let Some(sq) = p.map_grad(|g| g.data().iter().map(|v| v * v).sum::<f32>()) {
            total += sq;
        }
    }
    let norm = total.sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for p in params {
            p.update_grad(|g| g.map_inplace(|v| v * scale));
        }
    }
    norm
}

/// Cosine learning-rate schedule from `lr_max` to `lr_min` over
/// `total_steps`; step counts from 0.
#[must_use]
pub fn cosine_lr(lr_max: f32, lr_min: f32, step: usize, total_steps: usize) -> f32 {
    if total_steps <= 1 {
        return lr_min;
    }
    let t = (step.min(total_steps - 1)) as f32 / (total_steps - 1) as f32;
    lr_min + 0.5 * (lr_max - lr_min) * (1.0 + (std::f32::consts::PI * t).cos())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimizes f(x) = (x - 3)^2 and checks convergence.
    fn quadratic_converges(opt: &mut dyn Optimizer) {
        for _ in 0..200 {
            opt.zero_grad();
            let x = &opt.params()[0];
            let loss = x.add_scalar(-3.0).square().sum();
            loss.backward();
            opt.step();
        }
        let x = opt.params()[0].item();
        assert!((x - 3.0).abs() < 1e-2, "converged to {x}");
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = Tensor::param(Array::scalar(0.0));
        let mut opt = Sgd::new(vec![x], 0.1, 0.0, 0.0);
        quadratic_converges(&mut opt);
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = Tensor::param(Array::scalar(-5.0));
        let mut opt = Sgd::new(vec![x], 0.05, 0.9, 0.0);
        quadratic_converges(&mut opt);
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = Tensor::param(Array::scalar(10.0));
        let mut opt = Adam::new(vec![x], 0.3);
        quadratic_converges(&mut opt);
    }

    #[test]
    fn weight_decay_shrinks_params() {
        let x = Tensor::param(Array::scalar(1.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1, 0.0, 0.5);
        // Zero loss gradient: only decay acts.
        opt.zero_grad();
        x.accumulate_grad(&Array::scalar(0.0));
        opt.step();
        assert!(x.item() < 1.0);
    }

    #[test]
    fn skip_params_without_grad() {
        let x = Tensor::param(Array::scalar(2.0));
        let mut opt = Sgd::new(vec![x.clone()], 0.1, 0.0, 0.0);
        opt.step(); // no grad accumulated
        assert_eq!(x.item(), 2.0);
    }

    #[test]
    fn clip_grad_norm_rescales() {
        let x = Tensor::param(Array::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        x.accumulate_grad(&Array::from_vec(vec![3.0, 4.0], &[2]).unwrap());
        let pre = clip_grad_norm(std::slice::from_ref(&x), 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let g = x.grad().unwrap();
        let post = (g.data()[0].powi(2) + g.data()[1].powi(2)).sqrt();
        assert!((post - 1.0).abs() < 1e-5);
    }

    #[test]
    fn clip_grad_norm_noop_below_threshold() {
        let x = Tensor::param(Array::from_vec(vec![0.3, 0.4], &[2]).unwrap());
        x.accumulate_grad(&Array::from_vec(vec![0.3, 0.4], &[2]).unwrap());
        clip_grad_norm(std::slice::from_ref(&x), 10.0);
        assert_eq!(x.grad().unwrap().data(), &[0.3, 0.4]);
    }

    #[test]
    fn cosine_schedule_endpoints() {
        assert!((cosine_lr(1.0, 0.0, 0, 100) - 1.0).abs() < 1e-6);
        assert!(cosine_lr(1.0, 0.0, 99, 100) < 1e-3);
        let mid = cosine_lr(1.0, 0.0, 50, 101);
        assert!((mid - 0.5).abs() < 0.01);
    }

    /// One noisy quadratic step so the optimizer accumulates real state.
    fn take_step(opt: &mut dyn Optimizer) {
        opt.zero_grad();
        let x = &opt.params()[0];
        let loss = x.add_scalar(-3.0).square().sum();
        loss.backward();
        opt.step();
    }

    #[test]
    fn sgd_state_roundtrip_resumes_identically() {
        let make = || {
            let x = Tensor::param(Array::from_vec(vec![0.0, 1.0], &[2]).unwrap());
            Sgd::new(vec![x], 0.05, 0.9, 1e-4)
        };
        let mut a = make();
        for _ in 0..5 {
            take_step(&mut a);
        }
        // Transplant a's full state (params + velocity) into a fresh b.
        let mut b = make();
        b.params()[0].update_value(|v| *v = a.params()[0].value_clone());
        b.import_state(a.export_state()).unwrap();
        for _ in 0..5 {
            take_step(&mut a);
            take_step(&mut b);
        }
        assert_eq!(
            a.params()[0].value_clone().data(),
            b.params()[0].value_clone().data(),
            "resumed SGD must track the original bit-for-bit"
        );
    }

    #[test]
    fn adam_state_roundtrip_resumes_identically() {
        let make = || {
            let x = Tensor::param(Array::from_vec(vec![10.0, -4.0], &[2]).unwrap());
            Adam::new(vec![x], 0.1)
        };
        let mut a = make();
        for _ in 0..5 {
            take_step(&mut a);
        }
        let mut b = make();
        b.params()[0].update_value(|v| *v = a.params()[0].value_clone());
        b.import_state(a.export_state()).unwrap();
        for _ in 0..5 {
            take_step(&mut a);
            take_step(&mut b);
        }
        assert_eq!(
            a.params()[0].value_clone().data(),
            b.params()[0].value_clone().data(),
            "resumed Adam must track the original bit-for-bit (incl. t)"
        );
    }

    #[test]
    fn import_state_rejects_mismatches() {
        let x = Tensor::param(Array::from_vec(vec![0.0, 1.0], &[2]).unwrap());
        let mut sgd = Sgd::new(vec![x.clone()], 0.1, 0.9, 0.0);
        // Wrong slot count.
        assert!(sgd.import_state(vec![]).is_err());
        // Wrong shape.
        assert!(sgd.import_state(vec![Some(Array::zeros(&[3]))]).is_err());
        // None slots are fine.
        assert!(sgd.import_state(vec![None]).is_ok());

        let mut adam = Adam::new(vec![x], 0.1);
        let mut st = adam.export_state();
        st.m = vec![Some(Array::zeros(&[5]))];
        assert!(adam.import_state(st).is_err());
    }

    #[test]
    fn set_lr_roundtrip() {
        let mut opt = Adam::new(vec![], 0.1);
        opt.set_lr(0.01);
        assert_eq!(opt.lr(), 0.01);
    }
}
