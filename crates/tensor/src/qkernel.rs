//! Integer quantized kernel layer: symmetric int8/int4 quantization,
//! i32-accumulator GEMM/depthwise kernels, and fixed-point requantization.
//!
//! This is the execution substrate for running a derived EDD architecture
//! *entirely in integer arithmetic* at its Φ-searched precisions, instead of
//! simulating quantization with fake-quant f32 (`Tensor::fake_quantize`).
//!
//! # Number format
//!
//! Values are symmetric fixed point with zero-point 0: a real `v` is stored
//! as `q = round(v / s)` clamped to `[-qmax, qmax]`, with one scale `s` per
//! tensor (activations) or per output channel (weights). `qmax` is
//! `2^(bits-1) - 1` — 127 for int8, 7 for int4 — so the grid matches
//! `Tensor::fake_quantize(bits, range)` exactly when
//! `range = s · 2^(bits-1)` (the fake-quant step is `range / 2^(bits-1)`).
//! Int4 weights are stored bit-packed, two sign-extended nibbles per byte.
//!
//! # Accumulation and requantization
//!
//! Products of two i8 values are at most `127² = 16129`, so an i32
//! accumulator holds any reduction up to `k = 2^17` taps exactly — integer
//! arithmetic is associative, which makes bitwise determinism across thread
//! counts and SIMD modes structural rather than something the tiling has to
//! fight for. Rescaling an i32 accumulator into the next layer's i8 domain
//! multiplies by the *real* ratio `s_in · s_w / s_out`, represented as a
//! [`Requant`] fixed-point multiplier (q31 mantissa + power-of-two shift,
//! the gemmlowp/TFLite scheme) applied with round-half-away-from-zero — the
//! same rounding `f32::round` uses, which is what keeps the integer path
//! within one output step of the fake-quant oracle.
//!
//! # Threading and dispatch
//!
//! The GEMM front partitions output rows over the persistent worker
//! [`pool`], exactly like the f32 kernels in
//! [`kernel`](crate::kernel); every output element is written by exactly one
//! task. Hot kernels are declared through the same `avx2_dispatch!` macro,
//! so `EDD_SIMD=scalar` forces the scalar bodies and the dispatched fronts
//! stay the single source of truth.

use crate::array::Conv2dGeometry;
use crate::kernel::pool::{self, SendPtr};
use crate::kernel::{avx2_dispatch, num_threads, partition, valid_out_range};

/// Rows per register tile in the blocked integer GEMM (mirrors
/// [`crate::kernel::MR`]).
pub const QMR: usize = 4;

/// Columns per register tile: each row keeps eight i32 accumulator lanes
/// live across the `k` loop.
pub const QNR: usize = 8;

/// Below this many multiply-adds the integer GEMM runs single-threaded.
const QPAR_MIN_MACS: usize = 1 << 18;

/// Largest reduction depth the i32 accumulators hold exactly:
/// `2^17 · 127² < 2^31`. The GEMM fronts assert this.
pub const MAX_K: usize = 1 << 17;

/// Smallest calibration range, mirroring `QuantSpec::resolve_range` so an
/// all-zero tensor still gets a finite scale.
pub const MIN_RANGE: f32 = 1e-6;

// ---------------------------------------------------------------------------
// Quantization helpers
// ---------------------------------------------------------------------------

/// Largest representable magnitude for a `bits`-bit symmetric signed value:
/// `2^(bits-1) - 1`. Bits are clamped to `[2, 8]` — the engine stores every
/// quantized value in an i8 lane, so searched widths above 8 execute at the
/// 8-bit engine ceiling.
#[must_use]
pub fn qmax(bits: u32) -> i32 {
    (1i32 << (bits.clamp(2, 8) - 1)) - 1
}

/// Largest absolute value of a slice (0.0 when empty).
#[must_use]
pub fn max_abs(x: &[f32]) -> f32 {
    x.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
}

/// Scale mapping real magnitude `range` onto the `bits`-bit integer grid:
/// `max(range, MIN_RANGE) / qmax(bits)`.
#[must_use]
pub fn scale_for(range: f32, bits: u32) -> f32 {
    range.max(MIN_RANGE) / qmax(bits) as f32
}

/// Quantizes `src` onto the symmetric grid with the given `scale`, clamping
/// to `[-qmax, qmax]`: `dst[i] = clamp(round(src[i] / scale))`.
///
/// # Panics
///
/// Panics if lengths differ or `qmax` is outside `[1, 127]`.
pub fn quantize_i8_into(dst: &mut [i8], src: &[f32], scale: f32, qmax: i32) {
    assert_eq!(dst.len(), src.len(), "quantize_i8_into: length mismatch");
    assert!((1..=127).contains(&qmax), "quantize_i8_into: bad qmax");
    let inv = 1.0 / scale;
    for (d, &v) in dst.iter_mut().zip(src) {
        *d = ((v * inv).round() as i32).clamp(-qmax, qmax) as i8;
    }
}

/// Dequantizes back to f32: `dst[i] = q[i] · scale`.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dequantize_into(dst: &mut [f32], q: &[i8], scale: f32) {
    assert_eq!(dst.len(), q.len(), "dequantize_into: length mismatch");
    for (d, &v) in dst.iter_mut().zip(q) {
        *d = f32::from(v) * scale;
    }
}

// ---------------------------------------------------------------------------
// Int4 bit-packing
// ---------------------------------------------------------------------------

/// Packs int4 values (must be in `[-8, 7]`) two per byte, low nibble first.
/// Odd lengths leave the final high nibble zero.
///
/// # Panics
///
/// Panics if any value is outside the int4 range.
#[must_use]
pub fn pack_i4(q: &[i8]) -> Vec<u8> {
    let mut out = vec![0u8; q.len().div_ceil(2)];
    for (i, &v) in q.iter().enumerate() {
        assert!((-8..=7).contains(&v), "pack_i4: {v} outside int4 range");
        let nib = (v as u8) & 0x0f;
        out[i / 2] |= if i % 2 == 0 { nib } else { nib << 4 };
    }
    out
}

/// Unpacks [`pack_i4`] bytes back into sign-extended i8 values. `dst.len()`
/// selects how many nibbles to read.
///
/// # Panics
///
/// Panics if `packed` is shorter than `dst` requires.
pub fn unpack_i4_into(dst: &mut [i8], packed: &[u8]) {
    assert!(
        packed.len() >= dst.len().div_ceil(2),
        "unpack_i4_into: packed buffer too short"
    );
    for (i, d) in dst.iter_mut().enumerate() {
        let b = packed[i / 2];
        let nib = if i % 2 == 0 { b & 0x0f } else { b >> 4 };
        // Shift the nibble into the top of the byte and arithmetic-shift
        // back down: branch-free sign extension.
        *d = ((nib << 4) as i8) >> 4;
    }
}

// ---------------------------------------------------------------------------
// Fixed-point requantization
// ---------------------------------------------------------------------------

/// A positive real multiplier in gemmlowp-style fixed point: the value is
/// `mult · 2^(shift - 31)` with `mult` normalized to `[2^30, 2^31)`.
///
/// Layers build one per output channel from the scale ratio
/// `s_in · s_w[c] / s_out` and apply it to i32 accumulators with
/// round-half-away-from-zero — matching the rounding of `f32::round`, so the
/// integer path lands on the same grid points the fake-quant oracle does, up
/// to the one-ulp error of the q31 representation itself.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Requant {
    /// Normalized q31 mantissa in `[2^30, 2^31)`.
    pub mult: i32,
    /// Power-of-two exponent: the represented real is `mult · 2^(shift-31)`.
    pub shift: i32,
}

impl Requant {
    /// Builds the fixed-point representation of a positive real multiplier
    /// (a manual `frexp`: normalize the mantissa into `[0.5, 1)`, round to
    /// 31 fractional bits).
    ///
    /// # Panics
    ///
    /// Panics if `real` is not a positive finite number.
    #[must_use]
    pub fn from_scale(real: f64) -> Self {
        assert!(
            real.is_finite() && real > 0.0,
            "Requant::from_scale: multiplier must be positive and finite, got {real}"
        );
        let mut shift = 0i32;
        let mut r = real;
        while r >= 1.0 {
            r *= 0.5;
            shift += 1;
        }
        while r < 0.5 {
            r *= 2.0;
            shift -= 1;
        }
        // r in [0.5, 1): round to a 31-fraction-bit mantissa.
        let mut q = (r * (1i64 << 31) as f64).round() as i64;
        if q == 1i64 << 31 {
            // Rounding carried into the next power of two.
            q >>= 1;
            shift += 1;
        }
        Requant {
            mult: q as i32,
            shift,
        }
    }

    /// The real multiplier this fixed-point pair represents.
    #[must_use]
    pub fn real(&self) -> f64 {
        f64::from(self.mult) * pow2(self.shift - 31)
    }

    /// Rescales an i32 accumulator: `round_half_away(acc · real())`,
    /// saturated to the i32 range.
    #[must_use]
    pub fn apply(&self, acc: i32) -> i32 {
        let prod = i64::from(acc) * i64::from(self.mult);
        let total_shift = 31 - self.shift;
        if total_shift <= 0 {
            // Multiplier >= 1: pure left shift, saturate (cold path; real
            // layer scale ratios are < 1).
            let v = i128::from(prod) << (-total_shift);
            return v.clamp(i128::from(i32::MIN), i128::from(i32::MAX)) as i32;
        }
        if total_shift >= 63 {
            // Multiplier so small every representable accumulator rounds
            // to zero.
            return 0;
        }
        let nudge = 1i64 << (total_shift - 1);
        let v = if prod >= 0 {
            (prod + nudge) >> total_shift
        } else {
            -((-prod + nudge) >> total_shift)
        };
        v.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32
    }

    /// [`apply`](Self::apply) then clamp into `[lo, hi]` and narrow to i8
    /// (the per-element store of a requantizing layer).
    ///
    /// # Panics
    ///
    /// Debug-panics if `[lo, hi]` is not within the i8 range.
    #[must_use]
    pub fn apply_i8(&self, acc: i32, lo: i32, hi: i32) -> i8 {
        debug_assert!(lo >= -128 && hi <= 127 && lo <= hi);
        self.apply(acc).clamp(lo, hi) as i8
    }
}

/// `2^e` for exponents far inside the f64 range, without pulling in `libm`.
fn pow2(e: i32) -> f64 {
    if e >= 0 {
        (1u64 << e.min(62)) as f64
    } else {
        1.0 / (1u64 << (-e).min(62)) as f64
    }
}

/// Requantizes a row-major `[rows, cols]` i32 accumulator block into i8,
/// one [`Requant`] per row (per output channel), clamping to `[lo, hi]`.
///
/// Per row the multiplier's `31 - shift` and rounding nudge are hoisted
/// and the common case (`0 < 31 - shift < 63`, i.e. every real layer scale
/// ratio) runs a vectorizable row kernel; degenerate shifts fall back to
/// the per-element [`Requant::apply_i8`]. The row kernel computes exactly
/// the same `i64` product / nudge / shift / clamp sequence as `apply_i8`
/// (clamping straight to `[lo, hi] ⊆ i32` instead of clamping to the i32
/// range first, which cannot change the result), so this is bitwise
/// identical to the element-wise loop on every path.
///
/// # Panics
///
/// Panics on inconsistent lengths.
pub fn requantize_rows_into(
    dst: &mut [i8],
    acc: &[i32],
    per_row: &[Requant],
    cols: usize,
    lo: i32,
    hi: i32,
) {
    assert_eq!(
        dst.len(),
        acc.len(),
        "requantize_rows_into: length mismatch"
    );
    assert_eq!(
        acc.len(),
        per_row.len() * cols,
        "requantize_rows_into: rows/cols mismatch"
    );
    for ((d_row, a_row), rq) in dst
        .chunks_exact_mut(cols)
        .zip(acc.chunks_exact(cols))
        .zip(per_row)
    {
        let ts = 31 - rq.shift;
        if ts <= 0 || ts >= 63 {
            // Degenerate multipliers (>= 1 or flushing to zero): cold path.
            for (d, &a) in d_row.iter_mut().zip(a_row) {
                *d = rq.apply_i8(a, lo, hi);
            }
        } else {
            requantize_row_fast(d_row, a_row, rq.mult, ts, lo, hi);
        }
    }
}

/// Row kernel for the common requant case (`0 < ts < 63`). Dispatched by
/// hand: the AVX2 twin is a genuinely different instruction sequence
/// (unsigned 32x32→64 multiplies + logical shifts + 64-bit clamps), kept
/// bit-identical by integer exactness rather than by recompilation, and
/// pinned to the scalar body by the kernel-dispatch test.
fn requantize_row_fast(dst: &mut [i8], acc: &[i32], mult: i32, ts: i32, lo: i32, hi: i32) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::use_avx2() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { requantize_row_fast_avx2(dst, acc, mult, ts, lo, hi) };
    }
    requantize_row_fast_scalar(dst, acc, mult, ts, lo, hi);
}

#[inline(always)]
fn requantize_row_fast_scalar(dst: &mut [i8], acc: &[i32], mult: i32, ts: i32, lo: i32, hi: i32) {
    debug_assert!((1..63).contains(&ts));
    let mult = i64::from(mult);
    let nudge = 1i64 << (ts - 1);
    let (lo, hi) = (i64::from(lo), i64::from(hi));
    for (d, &a) in dst.iter_mut().zip(acc) {
        let prod = i64::from(a) * mult;
        let v = if prod >= 0 {
            (prod + nudge) >> ts
        } else {
            -((-prod + nudge) >> ts)
        };
        *d = v.clamp(lo, hi) as i8;
    }
}

/// AVX2 requant row: 8 accumulators per iteration. The sign is peeled off
/// (`|i32::MIN|` zero-extends to exactly `2^31`), the magnitude goes
/// through `_mm256_mul_epu32` (the low 32 bits of each 64-bit lane hold the
/// magnitude, the high 32 are zero, so the unsigned multiply is the full
/// 63-bit product `|acc| * mult < 2^62`), nudge-add and logical shift stay
/// in the positive range, and the sign is re-applied before a 64-bit
/// compare/blend clamp — term for term the scalar body's arithmetic.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn requantize_row_fast_avx2(
    dst: &mut [i8],
    acc: &[i32],
    mult: i32,
    ts: i32,
    lo: i32,
    hi: i32,
) {
    use std::arch::x86_64::*;
    debug_assert!((1..63).contains(&ts));
    let n = dst.len();
    let mult_v = _mm256_set1_epi64x(i64::from(mult));
    let nudge_v = _mm256_set1_epi64x(1i64 << (ts - 1));
    let lo_v = _mm256_set1_epi64x(i64::from(lo));
    let hi_v = _mm256_set1_epi64x(i64::from(hi));
    let count = _mm_cvtsi32_si128(ts);
    let mut j = 0;
    while j + 8 <= n {
        let x = _mm256_loadu_si256(acc.as_ptr().add(j).cast());
        let sign = _mm256_srai_epi32::<31>(x);
        let absx = _mm256_sub_epi32(_mm256_xor_si256(x, sign), sign);
        let mag_lo = _mm256_cvtepu32_epi64(_mm256_castsi256_si128(absx));
        let mag_hi = _mm256_cvtepu32_epi64(_mm256_extracti128_si256::<1>(absx));
        let sgn_lo = _mm256_cvtepi32_epi64(_mm256_castsi256_si128(sign));
        let sgn_hi = _mm256_cvtepi32_epi64(_mm256_extracti128_si256::<1>(sign));
        let v_lo = requant4(mag_lo, sgn_lo, mult_v, nudge_v, count, lo_v, hi_v);
        let v_hi = requant4(mag_hi, sgn_hi, mult_v, nudge_v, count, lo_v, hi_v);
        let mut tmp = [0i64; 8];
        _mm256_storeu_si256(tmp.as_mut_ptr().cast(), v_lo);
        _mm256_storeu_si256(tmp.as_mut_ptr().add(4).cast(), v_hi);
        for (d, &v) in dst[j..j + 8].iter_mut().zip(&tmp) {
            *d = v as i8;
        }
        j += 8;
    }
    requantize_row_fast_scalar(&mut dst[j..], &acc[j..], mult, ts, lo, hi);
}

/// One 4-lane requant step: `clamp(sign * ((mag * mult + nudge) >> ts))`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[inline]
unsafe fn requant4(
    mag: std::arch::x86_64::__m256i,
    sign64: std::arch::x86_64::__m256i,
    mult: std::arch::x86_64::__m256i,
    nudge: std::arch::x86_64::__m256i,
    count: std::arch::x86_64::__m128i,
    lo: std::arch::x86_64::__m256i,
    hi: std::arch::x86_64::__m256i,
) -> std::arch::x86_64::__m256i {
    use std::arch::x86_64::*;
    let prod = _mm256_mul_epu32(mag, mult);
    let shifted = _mm256_srl_epi64(_mm256_add_epi64(prod, nudge), count);
    // Conditional negate: (v ^ s) - s with s = 0 or -1 across the lane.
    let signed = _mm256_sub_epi64(_mm256_xor_si256(shifted, sign64), sign64);
    let too_hi = _mm256_cmpgt_epi64(signed, hi);
    let v = _mm256_blendv_epi8(signed, hi, too_hi);
    let too_lo = _mm256_cmpgt_epi64(lo, v);
    _mm256_blendv_epi8(v, lo, too_lo)
}

// ---------------------------------------------------------------------------
// Integer GEMM
// ---------------------------------------------------------------------------

/// Scalar reference GEMM: `C[m,n](i32) = A[m,k](i8) · B[k,n](i8)`, freshly
/// allocated. The unblocked i-k-j oracle the tiled kernel is validated
/// against (integer arithmetic is exact, so "matches" means equality).
///
/// # Panics
///
/// Panics on inconsistent slice lengths.
#[must_use]
pub fn qmatmul_naive(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "qmatmul_naive: bad lhs length");
    assert_eq!(b.len(), k * n, "qmatmul_naive: bad rhs length");
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        let o_row = &mut out[i * n..(i + 1) * n];
        for (kk, &av) in a_row.iter().enumerate() {
            let av = i32::from(av);
            let b_row = &b[kk * n..(kk + 1) * n];
            for (o, &bv) in o_row.iter_mut().zip(b_row) {
                *o += av * i32::from(bv);
            }
        }
    }
    out
}

avx2_dispatch! {
    /// Register-tiled `out[mb, n](i32) = a[mb, k](i8) · b[k, n](i8)`,
    /// single-threaded, overwritten. The AVX2 twin recompiles the same body
    /// with widening-multiply vector forms; integer accumulation is exact,
    /// so the paths are identical by arithmetic, not just by construction.
    qgemm_block / qgemm_block_scalar / qgemm_block_avx2,
    (out: &mut [i32], a: &[i8], b: &[i8], mb: usize, k: usize, n: usize)
}

#[inline(always)]
fn qgemm_block_scalar(out: &mut [i32], a: &[i8], b: &[i8], mb: usize, k: usize, n: usize) {
    if k == 0 {
        out.fill(0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    let mut i = 0;
    while i + QMR <= mb {
        let mut j = 0;
        while j + QNR <= n {
            let mut acc = [[0i32; QNR]; QMR];
            for kk in 0..k {
                let bv: &[i8; QNR] = b[kk * n + j..kk * n + j + QNR]
                    .try_into()
                    .expect("QNR chunk");
                let av = [
                    a[i * k + kk],
                    a[(i + 1) * k + kk],
                    a[(i + 2) * k + kk],
                    a[(i + 3) * k + kk],
                ];
                for (accr, &ar) in acc.iter_mut().zip(&av) {
                    let ar = i32::from(ar);
                    for (l, &bl) in accr.iter_mut().zip(bv) {
                        *l += ar * i32::from(bl);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                out[(i + r) * n + j..(i + r) * n + j + QNR].copy_from_slice(accr);
            }
            j += QNR;
        }
        // Column tail.
        while j < n {
            let mut acc = [0i32; QMR];
            for kk in 0..k {
                let bv = i32::from(b[kk * n + j]);
                let av = [
                    a[i * k + kk],
                    a[(i + 1) * k + kk],
                    a[(i + 2) * k + kk],
                    a[(i + 3) * k + kk],
                ];
                for (l, &ar) in acc.iter_mut().zip(&av) {
                    *l += i32::from(ar) * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                out[(i + r) * n + j] = v;
            }
            j += 1;
        }
        i += QMR;
    }
    // Row tail.
    while i < mb {
        let mut j = 0;
        while j + QNR <= n {
            let mut acc = [0i32; QNR];
            for kk in 0..k {
                let bv: &[i8; QNR] = b[kk * n + j..kk * n + j + QNR]
                    .try_into()
                    .expect("QNR chunk");
                let ar = i32::from(a[i * k + kk]);
                for (l, &bl) in acc.iter_mut().zip(bv) {
                    *l += ar * i32::from(bl);
                }
            }
            out[i * n + j..i * n + j + QNR].copy_from_slice(&acc);
            j += QNR;
        }
        while j < n {
            let mut acc = 0i32;
            for kk in 0..k {
                acc += i32::from(a[i * k + kk]) * i32::from(b[kk * n + j]);
            }
            out[i * n + j] = acc;
            j += 1;
        }
        i += 1;
    }
}

/// `out[m,n](i32) = A[m,k](i8) · B[k,n](i8)`, overwriting `out`, threaded
/// over output row blocks on the worker pool. Exact for any `k <= MAX_K`
/// and bitwise identical for any thread count.
///
/// # Panics
///
/// Panics on inconsistent slice lengths or `k > MAX_K`.
pub fn qmatmul_into(out: &mut [i32], a: &[i8], b: &[i8], m: usize, k: usize, n: usize) {
    let t = if m * n * k < QPAR_MIN_MACS {
        1
    } else {
        num_threads()
    };
    qmatmul_into_threads(out, a, b, m, k, n, t);
}

/// [`qmatmul_into`] with an explicit thread count (callers already
/// parallelizing an outer dimension pass `1`).
///
/// # Panics
///
/// Panics on inconsistent slice lengths or `k > MAX_K`.
pub fn qmatmul_into_threads(
    out: &mut [i32],
    a: &[i8],
    b: &[i8],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    assert_eq!(a.len(), m * k, "qmatmul_into: bad lhs length");
    assert_eq!(b.len(), k * n, "qmatmul_into: bad rhs length");
    assert_eq!(out.len(), m * n, "qmatmul_into: bad out length");
    assert!(k <= MAX_K, "qmatmul_into: k={k} exceeds exact i32 depth");
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        qgemm_block(out, a, b, m, k, n);
        return;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: partition ranges are disjoint, so each task's output
        // window is exclusive to it.
        let block = unsafe { base.slice(r.start * n, r.len() * n) };
        qgemm_block(block, &a[r.start * k..r.end * k], b, r.len(), k, n);
    });
}

// ---------------------------------------------------------------------------
// Prepacked maddubs GEMM
// ---------------------------------------------------------------------------

/// `out[m,n](i32) = A · B` over **prepacked** operands: `a_packed` from
/// [`pack_lhs_i8`](crate::kernel::pack::pack_lhs_i8) (dense rows
/// zero-padded to whole 4-tap groups) and `b_panels` from
/// [`pack_rhs_i8`](crate::kernel::pack::pack_rhs_i8) (8-column × 4-tap
/// maddubs panels). This is the int8 analogue of the f32 blueprints: the
/// layers pack immutable weights once at compile time and feed activations
/// through per-call packing, and the AVX2 kernel runs
/// `_mm256_maddubs_epi16` + `_mm256_madd_epi16` instead of widening
/// per-element multiplies.
///
/// The maddubs trick needs `|a| <= 127` on the LHS (`_mm256_sign_epi8`
/// cannot negate `-128`); symmetric quantization clamps to `±qmax <= ±127`,
/// so every engine tensor qualifies. The RHS has no such restriction.
/// Zero-padded taps multiply as zero, so the result equals
/// [`qmatmul_naive`] on the unpadded operands exactly — integer arithmetic
/// makes this equality, not approximation. Threaded over output row blocks;
/// bitwise identical for any thread count and SIMD mode.
///
/// # Panics
///
/// Panics on buffer lengths inconsistent with the packed layouts, or
/// `k > MAX_K`.
pub fn qmatmul_prepacked_into(
    out: &mut [i32],
    a_packed: &[i8],
    b_panels: &[i8],
    m: usize,
    k: usize,
    n: usize,
) {
    let t = if m * n * k < QPAR_MIN_MACS {
        1
    } else {
        num_threads()
    };
    qmatmul_prepacked_into_threads(out, a_packed, b_panels, m, k, n, t);
}

/// [`qmatmul_prepacked_into`] with an explicit thread count.
///
/// # Panics
///
/// Panics on buffer lengths inconsistent with the packed layouts, or
/// `k > MAX_K`.
pub fn qmatmul_prepacked_into_threads(
    out: &mut [i32],
    a_packed: &[i8],
    b_panels: &[i8],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    use crate::kernel::pack::{packed_lhs_len, packed_rhs_len, padded_k};
    assert_eq!(
        a_packed.len(),
        packed_lhs_len(m, k),
        "qmatmul_prepacked: bad lhs length"
    );
    assert_eq!(
        b_panels.len(),
        packed_rhs_len(k, n),
        "qmatmul_prepacked: bad rhs length"
    );
    assert_eq!(out.len(), m * n, "qmatmul_prepacked: bad out length");
    assert!(
        k <= MAX_K,
        "qmatmul_prepacked: k={k} exceeds exact i32 depth"
    );
    debug_assert!(
        a_packed.iter().all(|&v| v > -128),
        "qmatmul_prepacked: lhs contains -128 (outside the symmetric grid)"
    );
    let k4 = padded_k(k);
    let ranges = partition(m, threads);
    if ranges.len() <= 1 {
        qgemm_prepacked_block(out, a_packed, b_panels, m, k4, n);
        return;
    }
    let base = SendPtr::new(out.as_mut_ptr());
    pool::run(ranges.len(), &|t| {
        let r = &ranges[t];
        // SAFETY: partition ranges are disjoint, so each task's output
        // window is exclusive to it.
        let block = unsafe { base.slice(r.start * n, r.len() * n) };
        let ab = &a_packed[r.start * k4..r.end * k4];
        qgemm_prepacked_block(block, ab, b_panels, r.len(), k4, n);
    });
}

/// Single-threaded prepacked block. Hand-dispatched: the AVX2 twin is the
/// maddubs microkernel, a different instruction sequence kept equal to the
/// scalar walk by integer exactness (verified by the dispatch test).
fn qgemm_prepacked_block(out: &mut [i32], a: &[i8], b: &[i8], mb: usize, k4: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::use_avx2() {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { qgemm_prepacked_avx2(out, a, b, mb, k4, n) };
    }
    qgemm_prepacked_scalar(out, a, b, mb, k4, n);
}

/// Scalar walk of the packed layout: per row, per 8-column panel, per
/// 4-tap group — byte-for-byte the order the maddubs kernel reduces in.
#[inline(always)]
fn qgemm_prepacked_scalar(out: &mut [i32], a: &[i8], b: &[i8], mb: usize, k4: usize, n: usize) {
    use crate::kernel::pack::{QK_GROUP, QNP};
    if k4 == 0 {
        out.fill(0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    let groups = k4 / QK_GROUP;
    let group_bytes = QNP * QK_GROUP;
    let panels = n.div_ceil(QNP);
    for i in 0..mb {
        let arow = &a[i * k4..(i + 1) * k4];
        for jp in 0..panels {
            let j0 = jp * QNP;
            let width = (n - j0).min(QNP);
            let pbase = &b[jp * groups * group_bytes..(jp + 1) * groups * group_bytes];
            let mut acc = [0i32; QNP];
            for g in 0..groups {
                let grp = &pbase[g * group_bytes..(g + 1) * group_bytes];
                let at = &arow[g * QK_GROUP..(g + 1) * QK_GROUP];
                for (c, l) in acc.iter_mut().enumerate() {
                    let cell = &grp[c * QK_GROUP..(c + 1) * QK_GROUP];
                    for (t, &bv) in cell.iter().enumerate() {
                        *l += i32::from(at[t]) * i32::from(bv);
                    }
                }
            }
            out[i * n + j0..i * n + j0 + width].copy_from_slice(&acc[..width]);
        }
    }
}

/// Maddubs microkernel: per 4-tap group, broadcast 4 LHS bytes as one
/// dword, then `maddubs(|B|, sign(A_bcast, B))` forms the exact signed
/// products `a·b` as i16 pairs (pair sums ≤ 2·127·127 = 32258 < 32767, so
/// the saturating add never saturates) and `madd_epi16(·, 1)` folds them
/// into 8 i32 per-column partial sums.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_prepacked_avx2(
    out: &mut [i32],
    a: &[i8],
    b: &[i8],
    mb: usize,
    k4: usize,
    n: usize,
) {
    use crate::kernel::pack::{QK_GROUP, QNP};
    use std::arch::x86_64::*;
    if k4 == 0 {
        out.fill(0);
        return;
    }
    if mb == 0 || n == 0 {
        return;
    }
    let groups = k4 / QK_GROUP;
    let group_bytes = QNP * QK_GROUP;
    let full_panels = n / QNP;
    let ones = _mm256_set1_epi16(1);
    for i in 0..mb {
        let ap = a.as_ptr().add(i * k4);
        for jp in 0..full_panels {
            let pb = b.as_ptr().add(jp * groups * group_bytes);
            let mut acc = _mm256_setzero_si256();
            for g in 0..groups {
                let a_dword = ap.add(g * QK_GROUP).cast::<i32>().read_unaligned();
                let abcast = _mm256_set1_epi32(a_dword);
                let panel = _mm256_loadu_si256(pb.add(g * group_bytes).cast());
                let pabs = _mm256_abs_epi8(panel);
                let asgn = _mm256_sign_epi8(abcast, panel);
                let prod16 = _mm256_maddubs_epi16(pabs, asgn);
                acc = _mm256_add_epi32(acc, _mm256_madd_epi16(prod16, ones));
            }
            _mm256_storeu_si256(out.as_mut_ptr().add(i * n + jp * QNP).cast(), acc);
        }
        // Partial final panel (n % 8 != 0): scalar walk of the same layout.
        let j0 = full_panels * QNP;
        if j0 < n {
            let width = n - j0;
            let arow = &a[i * k4..(i + 1) * k4];
            let pbase = &b[full_panels * groups * group_bytes..];
            let mut acc = [0i32; QNP];
            for g in 0..groups {
                let grp = &pbase[g * group_bytes..(g + 1) * group_bytes];
                let at = &arow[g * QK_GROUP..(g + 1) * QK_GROUP];
                for (c, l) in acc.iter_mut().enumerate() {
                    let cell = &grp[c * QK_GROUP..(c + 1) * QK_GROUP];
                    for (t, &bv) in cell.iter().enumerate() {
                        *l += i32::from(at[t]) * i32::from(bv);
                    }
                }
            }
            out[i * n + j0..i * n + n].copy_from_slice(&acc[..width]);
        }
    }
}

// ---------------------------------------------------------------------------
// Quantized convolution lowerings
// ---------------------------------------------------------------------------

/// Integer [`im2col`](crate::im2col_into): lowers one quantized image
/// `[c, h, w]` into a column matrix `[c*k*k, out_h*out_w]`. Padding is the
/// zero-point, which symmetric quantization fixes at integer 0.
///
/// # Panics
///
/// Panics on buffer lengths inconsistent with `geom`.
pub fn qim2col_into(out: &mut [i8], input: &[i8], geom: &Conv2dGeometry) {
    let (c, k) = (geom.in_channels, geom.kernel);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    let rows = c * k * k;
    let cols = oh * ow;
    assert_eq!(out.len(), rows * cols, "qim2col_into: bad out length");
    assert_eq!(
        input.len(),
        c * geom.in_h * geom.in_w,
        "qim2col_into: bad input length"
    );
    let (ih, iw) = (geom.in_h, geom.in_w);
    let (pad, stride) = (geom.padding, geom.stride);
    for row in 0..rows {
        let ch = row / (k * k);
        let ky = (row / k) % k;
        let kx = row % k;
        let (oy0, oy1) = valid_out_range(ky, pad, stride, ih, oh);
        let (ox0, ox1) = valid_out_range(kx, pad, stride, iw, ow);
        let sx0 = ox0 * stride + kx - pad;
        let src_c = &input[ch * ih * iw..(ch + 1) * ih * iw];
        let dst = &mut out[row * cols..(row + 1) * cols];
        dst[..oy0 * ow].fill(0);
        dst[oy1 * ow..].fill(0);
        for oy in oy0..oy1 {
            let sy = oy * stride + ky - pad;
            let src_row = &src_c[sy * iw..(sy + 1) * iw];
            let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
            dst_row[..ox0].fill(0);
            dst_row[ox1..].fill(0);
            if stride == 1 {
                dst_row[ox0..ox1].copy_from_slice(&src_row[sx0..sx0 + (ox1 - ox0)]);
            } else {
                for (i, d) in dst_row[ox0..ox1].iter_mut().enumerate() {
                    *d = src_row[sx0 + i * stride];
                }
            }
        }
    }
}

/// Quantized depthwise stencil for one channel plane: `out[oh, ow](i32)
/// = w[k, k] ⊛ input[ih, iw]` with stride/padding from `geom` (interpreted
/// single-channel), overwriting `out`. Taps accumulate in ascending
/// `(ky, kx)` order; integer math keeps any reordering exact anyway.
///
/// Dispatched by hand (not `avx2_dispatch!`): the AVX2 twin for the
/// stride-1, `ow >= 8` common case is a real widening-multiply kernel over
/// a horizontally zero-padded plane, not a recompile of the scalar body;
/// integer exactness keeps the paths equal (pinned by the dispatch test).
pub fn qdw_plane_into(out: &mut [i32], input: &[i8], w: &[i8], geom: &Conv2dGeometry) {
    #[cfg(target_arch = "x86_64")]
    if crate::kernel::use_avx2() && geom.stride == 1 && geom.out_w() >= 8 {
        // SAFETY: AVX2 support verified at runtime just above.
        return unsafe { qdw_plane_s1_avx2(out, input, w, geom) };
    }
    qdw_plane_into_scalar(out, input, w, geom);
}

/// AVX2 stride-1 depthwise plane: the input is staged into a horizontally
/// zero-padded scratch plane (`pw = iw + 2·pad`), so every horizontal tap
/// of an 8-wide output group is one unconditional 8-byte load; vertical
/// padding is a per-output-row tap clip. Per tap: sign-extend 8 bytes to
/// i16, `_mm_mullo_epi16` against the broadcast weight (exact —
/// `|w·x| <= 127² < 2^15`), widen to i32, accumulate. The last column
/// group is anchored at `ow - 8`, recomputing overlapped outputs —
/// identical values, integer math.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qdw_plane_s1_avx2(out: &mut [i32], input: &[i8], w: &[i8], geom: &Conv2dGeometry) {
    use std::arch::x86_64::*;
    let k = geom.kernel;
    let (ih, iw) = (geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    debug_assert_eq!(input.len(), ih * iw);
    debug_assert_eq!(w.len(), k * k);
    debug_assert_eq!(out.len(), oh * ow);
    debug_assert!(geom.stride == 1 && ow >= 8);
    let pad = geom.padding;
    let pw = iw + 2 * pad;
    let mut padded = crate::scratch::alloc_i8(ih * pw);
    for (prow, irow) in padded.chunks_exact_mut(pw).zip(input.chunks_exact(iw)) {
        prow[..pad].fill(0);
        prow[pad..pad + iw].copy_from_slice(irow);
        prow[pad + iw..].fill(0);
    }
    let pp = padded.as_ptr();
    for oy in 0..oh {
        // Vertical clip: taps whose source row falls outside the image
        // contribute zero, exactly as the scalar body's valid_out_range.
        let ky0 = pad.saturating_sub(oy).min(k);
        let ky1 = k.min((ih + pad).saturating_sub(oy));
        let orow = &mut out[oy * ow..(oy + 1) * ow];
        let mut x0 = 0usize;
        loop {
            let mut acc = _mm256_setzero_si256();
            for ky in ky0..ky1 {
                let sy = oy + ky - pad;
                // SAFETY: x0 <= ow - 8 and kx <= k - 1, so the 8-byte load
                // ends at sy*pw + (ow - 8 + k - 1 + 7) = sy*pw + pw - 1,
                // inside the padded plane.
                let base = pp.add(sy * pw + x0);
                for kx in 0..k {
                    let wv = _mm_set1_epi16(i16::from(w[ky * k + kx]));
                    let bytes = _mm_loadl_epi64(base.add(kx).cast());
                    let prods = _mm_mullo_epi16(_mm_cvtepi8_epi16(bytes), wv);
                    acc = _mm256_add_epi32(acc, _mm256_cvtepi16_epi32(prods));
                }
            }
            _mm256_storeu_si256(orow.as_mut_ptr().add(x0).cast(), acc);
            if x0 + 8 >= ow {
                break;
            }
            x0 = (x0 + 8).min(ow - 8);
        }
    }
}

#[inline(always)]
fn qdw_plane_into_scalar(out: &mut [i32], input: &[i8], w: &[i8], geom: &Conv2dGeometry) {
    let k = geom.kernel;
    let (ih, iw) = (geom.in_h, geom.in_w);
    let (oh, ow) = (geom.out_h(), geom.out_w());
    debug_assert_eq!(input.len(), ih * iw);
    debug_assert_eq!(w.len(), k * k);
    debug_assert_eq!(out.len(), oh * ow);
    let (pad, stride) = (geom.padding, geom.stride);
    out.fill(0);
    for ky in 0..k {
        for kx in 0..k {
            let wv = i32::from(w[ky * k + kx]);
            let (oy0, oy1) = valid_out_range(ky, pad, stride, ih, oh);
            let (ox0, ox1) = valid_out_range(kx, pad, stride, iw, ow);
            let sx0 = ox0 * stride + kx - pad;
            for oy in oy0..oy1 {
                let sy = oy * stride + ky - pad;
                let src_row = &input[sy * iw..(sy + 1) * iw];
                let dst_row = &mut out[oy * ow..(oy + 1) * ow];
                if stride == 1 {
                    for (d, &s) in dst_row[ox0..ox1].iter_mut().zip(&src_row[sx0..]) {
                        *d += wv * i32::from(s);
                    }
                } else {
                    for (i, d) in dst_row[ox0..ox1].iter_mut().enumerate() {
                        *d += wv * i32::from(src_row[sx0 + i * stride]);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn randq(len: usize, lim: i8, rng: &mut StdRng) -> Vec<i8> {
        (0..len).map(|_| rng.gen_range(-lim..=lim)).collect()
    }

    #[test]
    fn requant_matches_f64_rounding() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..200 {
            let real: f64 = rng.gen_range(1e-6f64..0.9);
            let rq = Requant::from_scale(real);
            // The q31 mantissa represents the real scale to ~1e-9 relative.
            assert!((rq.real() - real).abs() <= real * 1e-8, "{real}");
            for _ in 0..20 {
                let acc: i32 = rng.gen_range(-1_000_000..=1_000_000);
                let want = (f64::from(acc) * rq.real()).abs().round() as i64
                    * i64::from(if acc >= 0 { 1 } else { -1 });
                let got = i64::from(rq.apply(acc));
                assert_eq!(got, want, "real={real} acc={acc}");
            }
        }
    }

    #[test]
    fn requant_identity_and_extremes() {
        let one = Requant::from_scale(1.0);
        for acc in [-12345, -1, 0, 1, 98765, i32::MAX, i32::MIN + 1] {
            assert_eq!(one.apply(acc), acc);
        }
        // Tiny multipliers flush to zero instead of shifting out of range.
        let tiny = Requant::from_scale(1e-30);
        assert_eq!(tiny.apply(i32::MAX), 0);
        // Large multipliers saturate instead of wrapping.
        let big = Requant::from_scale(4.0);
        assert_eq!(big.apply(i32::MAX), i32::MAX);
        assert_eq!(big.apply(3), 12);
    }

    #[test]
    fn quantize_roundtrip_on_grid() {
        let scale = 0.05f32;
        let src: Vec<f32> = (-127..=127).map(|q| q as f32 * scale).collect();
        let mut q = vec![0i8; src.len()];
        quantize_i8_into(&mut q, &src, scale, 127);
        let mut back = vec![0.0f32; src.len()];
        dequantize_into(&mut back, &q, scale);
        for (a, b) in src.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
        // Clamping engages beyond the range.
        let mut q1 = [0i8; 2];
        quantize_i8_into(&mut q1, &[10.0, -10.0], scale, 127);
        assert_eq!(q1, [127, -127]);
    }

    #[test]
    fn quantize_matches_fake_quant_grid() {
        // Engine grid with scale s and qmax = 2^(b-1)-1 must equal the
        // fake-quant grid with range = s * 2^(b-1) for in-range inputs.
        let mut rng = StdRng::seed_from_u64(5);
        for bits in [4u32, 8] {
            let qm = qmax(bits);
            let max_abs = 1.7f32;
            let s = max_abs / qm as f32;
            let range = s * (1 << (bits - 1)) as f32;
            let levels = (1u64 << (bits - 1)) as f32;
            let step = range / levels;
            assert!((step - s).abs() < 1e-7);
            for _ in 0..500 {
                let v: f32 = rng.gen_range(-max_abs..max_abs);
                let fake = (v.clamp(-range, range) / step).round() * step;
                let mut q = [0i8];
                quantize_i8_into(&mut q, &[v], s, qm);
                assert!(
                    (f32::from(q[0]) * s - fake).abs() < 1e-6,
                    "bits={bits} v={v}"
                );
            }
        }
    }

    #[test]
    fn pack_unpack_i4_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in [0usize, 1, 2, 7, 8, 33] {
            let q: Vec<i8> = (0..len).map(|_| rng.gen_range(-8i8..=7)).collect();
            let packed = pack_i4(&q);
            assert_eq!(packed.len(), len.div_ceil(2));
            let mut back = vec![0i8; len];
            unpack_i4_into(&mut back, &packed);
            assert_eq!(q, back, "len={len}");
        }
    }

    #[test]
    fn qgemm_matches_naive_including_tails() {
        let mut rng = StdRng::seed_from_u64(7);
        for (m, k, n) in [(1, 1, 1), (4, 8, 8), (5, 3, 7), (9, 16, 33), (6, 0, 3)] {
            let a = randq(m * k, 127, &mut rng);
            let b = randq(k * n, 127, &mut rng);
            let want = qmatmul_naive(&a, &b, m, k, n);
            let mut got = vec![i32::MIN; m * n];
            qmatmul_into(&mut got, &a, &b, m, k, n);
            assert_eq!(got, want, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn qgemm_thread_counts_are_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(9);
        let (m, k, n) = (29, 17, 23);
        let a = randq(m * k, 127, &mut rng);
        let b = randq(k * n, 127, &mut rng);
        let mut reference = vec![0i32; m * n];
        qmatmul_into_threads(&mut reference, &a, &b, m, k, n, 1);
        for t in [2, 3, 7, 19] {
            let mut got = vec![0i32; m * n];
            qmatmul_into_threads(&mut got, &a, &b, m, k, n, t);
            assert_eq!(reference, got, "threads={t}");
        }
    }

    #[test]
    fn dispatched_kernels_match_scalar_bodies() {
        let mut rng = StdRng::seed_from_u64(13);
        let (m, k, n) = (13, 37, 29);
        let a = randq(m * k, 127, &mut rng);
        let b = randq(k * n, 127, &mut rng);
        let mut got = vec![0i32; m * n];
        let mut want = vec![0i32; m * n];
        qgemm_block(&mut got, &a, &b, m, k, n);
        qgemm_block_scalar(&mut want, &a, &b, m, k, n);
        assert_eq!(got, want);

        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 11,
            in_w: 9,
            kernel: 3,
            stride: 2,
            padding: 1,
        };
        let input = randq(geom.in_h * geom.in_w, 127, &mut rng);
        let w = randq(9, 127, &mut rng);
        let plane = geom.out_h() * geom.out_w();
        let mut got = vec![0i32; plane];
        let mut want = vec![0i32; plane];
        qdw_plane_into(&mut got, &input, &w, &geom);
        qdw_plane_into_scalar(&mut want, &input, &w, &geom);
        assert_eq!(got, want);

        // Stride-1 16x16 hits the dedicated AVX2 depthwise kernel (padded
        // plane + overlapped last group) on machines that have it.
        for k in [3usize, 5, 7] {
            let geom = Conv2dGeometry {
                in_channels: 1,
                in_h: 16,
                in_w: 16,
                kernel: k,
                stride: 1,
                padding: k / 2,
            };
            let input = randq(16 * 16, 127, &mut rng);
            let w = randq(k * k, 127, &mut rng);
            let plane = geom.out_h() * geom.out_w();
            let mut got = vec![i32::MIN; plane];
            let mut want = vec![0i32; plane];
            qdw_plane_into(&mut got, &input, &w, &geom);
            qdw_plane_into_scalar(&mut want, &input, &w, &geom);
            assert_eq!(got, want, "k={k}");
        }

        // Prepacked maddubs block vs its scalar layout walk.
        let (m, k, n) = (7, 21, 19);
        let a = randq(m * k, 127, &mut rng);
        let b = randq(k * n, 127, &mut rng);
        let mut ap = vec![0i8; crate::kernel::pack::packed_lhs_len(m, k)];
        crate::kernel::pack::pack_lhs_i8(&mut ap, &a, m, k);
        let mut bp = vec![0i8; crate::kernel::pack::packed_rhs_len(k, n)];
        crate::kernel::pack::pack_rhs_i8(&mut bp, &b, k, n);
        let k4 = crate::kernel::pack::padded_k(k);
        let mut got = vec![i32::MIN; m * n];
        let mut want = vec![0i32; m * n];
        qgemm_prepacked_block(&mut got, &ap, &bp, m, k4, n);
        qgemm_prepacked_scalar(&mut want, &ap, &bp, m, k4, n);
        assert_eq!(got, want);

        // Vectorized requant rows vs the per-element apply_i8 oracle.
        let acc: Vec<i32> = (0..9 * 37)
            .map(|_| rng.gen_range(i32::MIN..=i32::MAX))
            .collect();
        let rqs: Vec<Requant> = (0..9)
            .map(|i| Requant::from_scale(10f64.powi(i - 6)))
            .collect();
        let mut got = vec![0i8; acc.len()];
        requantize_rows_into(&mut got, &acc, &rqs, 37, -128, 127);
        for (row, rq) in rqs.iter().enumerate() {
            for c in 0..37 {
                let idx = row * 37 + c;
                assert_eq!(
                    got[idx],
                    rq.apply_i8(acc[idx], -128, 127),
                    "row={row} col={c}"
                );
            }
        }
    }

    #[test]
    fn prepacked_gemm_matches_naive() {
        let mut rng = StdRng::seed_from_u64(23);
        for (m, k, n) in [
            (1, 1, 1),
            (4, 8, 8),
            (5, 3, 7),
            (9, 16, 33),
            (6, 0, 3),
            (1, 27, 256),
            (13, 37, 29),
        ] {
            let a = randq(m * k, 127, &mut rng);
            let b = randq(k * n, 127, &mut rng);
            let want = qmatmul_naive(&a, &b, m, k, n);
            let mut ap = vec![0i8; crate::kernel::pack::packed_lhs_len(m, k)];
            crate::kernel::pack::pack_lhs_i8(&mut ap, &a, m, k);
            let mut bp = vec![0i8; crate::kernel::pack::packed_rhs_len(k, n)];
            crate::kernel::pack::pack_rhs_i8(&mut bp, &b, k, n);
            let mut got = vec![i32::MIN; m * n];
            qmatmul_prepacked_into(&mut got, &ap, &bp, m, k, n);
            assert_eq!(got, want, "{m}x{k}x{n}");
        }
    }

    #[test]
    fn prepacked_thread_counts_are_bitwise_equal() {
        let mut rng = StdRng::seed_from_u64(27);
        let (m, k, n) = (29, 17, 23);
        let a = randq(m * k, 127, &mut rng);
        let b = randq(k * n, 127, &mut rng);
        let mut ap = vec![0i8; crate::kernel::pack::packed_lhs_len(m, k)];
        crate::kernel::pack::pack_lhs_i8(&mut ap, &a, m, k);
        let mut bp = vec![0i8; crate::kernel::pack::packed_rhs_len(k, n)];
        crate::kernel::pack::pack_rhs_i8(&mut bp, &b, k, n);
        let mut reference = vec![0i32; m * n];
        qmatmul_prepacked_into_threads(&mut reference, &ap, &bp, m, k, n, 1);
        for t in [2, 3, 7, 19] {
            let mut got = vec![0i32; m * n];
            qmatmul_prepacked_into_threads(&mut got, &ap, &bp, m, k, n, t);
            assert_eq!(reference, got, "threads={t}");
        }
    }

    #[test]
    fn requantize_rows_cold_paths_match_oracle() {
        // Multipliers >= 1 (ts <= 0) and flush-to-zero (ts >= 63) rows must
        // take the per-element path and still match apply_i8 exactly.
        let acc = [i32::MAX, i32::MIN, -5, 7, 0, 1000];
        let rqs = [
            Requant::from_scale(4.0),
            Requant::from_scale(1e-30),
            Requant::from_scale(0.25),
        ];
        let mut got = vec![0i8; 6];
        requantize_rows_into(&mut got, &acc, &rqs, 2, -128, 127);
        for (row, rq) in rqs.iter().enumerate() {
            for c in 0..2 {
                assert_eq!(got[row * 2 + c], rq.apply_i8(acc[row * 2 + c], -128, 127));
            }
        }
    }

    #[test]
    fn qim2col_matches_f32_im2col() {
        let mut rng = StdRng::seed_from_u64(17);
        for (stride, padding) in [(1usize, 1usize), (2, 1), (1, 0), (2, 2)] {
            let geom = Conv2dGeometry {
                in_channels: 3,
                in_h: 7,
                in_w: 6,
                kernel: 3,
                stride,
                padding,
            };
            let q = randq(3 * 7 * 6, 127, &mut rng);
            let f: Vec<f32> = q.iter().map(|&v| f32::from(v)).collect();
            let rows = 3 * 9;
            let cols = geom.out_h() * geom.out_w();
            let mut qcols = vec![0i8; rows * cols];
            qim2col_into(&mut qcols, &q, &geom);
            let mut fcols = vec![0.0f32; rows * cols];
            crate::im2col_into(&mut fcols, &f, &geom);
            for (a, b) in qcols.iter().zip(&fcols) {
                assert_eq!(f32::from(*a), *b, "stride={stride} pad={padding}");
            }
        }
    }

    #[test]
    fn qdw_plane_matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(19);
        let geom = Conv2dGeometry {
            in_channels: 1,
            in_h: 8,
            in_w: 9,
            kernel: 3,
            stride: 1,
            padding: 1,
        };
        let input = randq(8 * 9, 127, &mut rng);
        let w = randq(9, 127, &mut rng);
        let (oh, ow) = (geom.out_h(), geom.out_w());
        let mut got = vec![0i32; oh * ow];
        qdw_plane_into(&mut got, &input, &w, &geom);
        for oy in 0..oh {
            for ox in 0..ow {
                let mut want = 0i32;
                for ky in 0..3 {
                    for kx in 0..3 {
                        let sy = oy as i64 + ky as i64 - 1;
                        let sx = ox as i64 + kx as i64 - 1;
                        if (0..8).contains(&sy) && (0..9).contains(&sx) {
                            want += i32::from(w[ky * 3 + kx])
                                * i32::from(input[sy as usize * 9 + sx as usize]);
                        }
                    }
                }
                assert_eq!(got[oy * ow + ox], want, "({oy},{ox})");
            }
        }
    }

    #[test]
    fn requantize_rows_applies_per_channel_scales() {
        let acc = vec![100, 200, -100, 1000, 2000, -3000];
        let rqs = [Requant::from_scale(0.5), Requant::from_scale(0.01)];
        let mut out = vec![0i8; 6];
        requantize_rows_into(&mut out, &acc, &rqs, 3, -127, 127);
        assert_eq!(out, vec![50, 100, -50, 10, 20, -30]);
        // Clamp bounds emulate fused ReLU6: negatives cut at 0.
        requantize_rows_into(&mut out, &acc, &rqs, 3, 0, 127);
        assert_eq!(out, vec![50, 100, 0, 10, 20, 0]);
    }
}
