//! Thread-local buffer-recycling pool for [`crate::Array`] storage.
//!
//! The training loop rebuilds its autodiff graph every step (define-by-run),
//! so each step used to allocate — and free — every intermediate value and
//! gradient buffer through the system allocator. This module keeps those
//! buffers alive instead: when an `Array` is dropped its `Vec<f32>` is
//! *given* to an exact-length free list, and the next request for the same
//! length *takes* it back, zero-malloc. Because the step's tensor shapes are
//! identical from one step to the next, the pool reaches steady state after
//! the first step or two and per-step heap traffic for tensor storage drops
//! to zero (see the `steady_state` test and the bench counters).
//!
//! Three properties keep this safe and cheap:
//!
//! * **Exact-length bins.** A pooled vector is stored under its `len()`, and
//!   `take(len)` only returns vectors of exactly that length — callers never
//!   see a resized or partially-initialized buffer, only recycled *contents*
//!   (which [`take`] callers overwrite and [`take_zeroed`] clears).
//! * **Thread-local free lists.** No locks on the hot path; the persistent
//!   worker pool ([`crate::kernel::pool`]) means each worker's free list
//!   survives across steps, so cross-step reuse works on every thread.
//! * **Bounded retention.** Only buffers of at least [`MIN_RECYCLE_ELEMS`]
//!   elements are retained (small vectors are cheaper to malloc than to
//!   bin), and each thread caps its retained footprint at
//!   [`MAX_RETAINED_BYTES`]; beyond the cap, freed buffers fall through to
//!   the system allocator as before.
//!
//! Accounting is double-booked: process-wide relaxed counters in
//! [`crate::stats`] (for the bench harness and telemetry gauges) and
//! race-free thread-local counters ([`local_counters`]) for tests that
//! assert a specific thread performed zero fresh allocations.

use std::cell::RefCell;
use std::collections::HashMap;

/// Minimum element count for a buffer to participate in recycling. Below
/// this the system allocator (thread-cached small bins) is faster than our
/// hash-map lookup, and retaining tiny buffers would just bloat the bins.
pub const MIN_RECYCLE_ELEMS: usize = 1024;

/// Per-thread retention ceiling in bytes. One search step's working set is
/// a few tens of megabytes at the paper's CIFAR-scale shapes; 128 MiB keeps
/// every step-periodic buffer while bounding pathological workloads (e.g. a
/// sweep over ever-growing shapes) to a fixed footprint.
pub const MAX_RETAINED_BYTES: usize = 128 << 20;

/// Race-free snapshot of the calling thread's recycling activity.
///
/// All counters cover only pool-eligible requests (length at least
/// [`MIN_RECYCLE_ELEMS`]); sub-threshold vectors are deliberately invisible
/// here and in the global [`crate::stats`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LocalCounters {
    /// Bytes served by fresh system allocations (pool misses).
    pub fresh_bytes: u64,
    /// Bytes served from the thread's free lists (pool hits).
    pub recycled_bytes: u64,
    /// Pool-eligible requests satisfied from a free list.
    pub hits: u64,
    /// Pool-eligible requests that fell back to the system allocator.
    pub misses: u64,
}

#[derive(Default)]
struct Pool {
    /// Exact-length free lists: every stored vector satisfies
    /// `v.len() == key`.
    bins: HashMap<usize, Vec<Vec<f32>>>,
    /// Total bytes currently parked in `bins`.
    retained_bytes: usize,
    counters: LocalCounters,
}

thread_local! {
    static POOL: RefCell<Pool> = RefCell::new(Pool::default());
}

/// Takes a vector of exactly `len` elements with **unspecified contents**
/// (recycled values from a previous owner, or zeros when freshly
/// allocated). Callers must overwrite every element before reading.
#[must_use]
pub fn take(len: usize) -> Vec<f32> {
    if len < MIN_RECYCLE_ELEMS {
        return vec![0.0; len];
    }
    let bytes = (len * 4) as u64;
    let recycled = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let hit = p.bins.get_mut(&len).and_then(Vec::pop);
        if let Some(v) = hit {
            p.retained_bytes -= len * 4;
            p.counters.hits += 1;
            p.counters.recycled_bytes += bytes;
            Some(v)
        } else {
            p.counters.misses += 1;
            p.counters.fresh_bytes += bytes;
            None
        }
    });
    match recycled {
        Some(v) => {
            debug_assert_eq!(v.len(), len);
            crate::stats::record_buffer_request(bytes, true);
            v
        }
        None => {
            crate::stats::record_buffer_request(bytes, false);
            vec![0.0; len]
        }
    }
}

/// Takes a vector of exactly `len` zeros — [`take`] plus a `fill(0.0)` when
/// the buffer came from a free list (a memset is still far cheaper than a
/// page-faulting fresh allocation).
#[must_use]
pub fn take_zeroed(len: usize) -> Vec<f32> {
    if len < MIN_RECYCLE_ELEMS {
        return vec![0.0; len];
    }
    let mut v = take(len);
    // Fresh vectors are already zeroed, but re-filling them would double the
    // cost of every miss; only hits carry stale contents. Rather than thread
    // a hit/miss flag through, exploit that a fresh `vec![0.0; len]` fill is
    // what `take` returns on miss and clear unconditionally: the fill is
    // cheap, branch-free, and keeps this function's contract independent of
    // pool state.
    v.fill(0.0);
    v
}

/// Returns a no-longer-needed vector to the calling thread's free lists.
///
/// Sub-threshold and over-budget vectors are simply dropped (the system
/// allocator frees them as before). Called automatically by
/// [`crate::Array`]'s `Drop`; manual callers only need it for buffers that
/// bypassed `Array`.
pub fn give(v: Vec<f32>) {
    let len = v.len();
    if len < MIN_RECYCLE_ELEMS {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        let bytes = len * 4;
        if p.retained_bytes + bytes > MAX_RETAINED_BYTES {
            return; // drop `v`; the thread is at its retention budget
        }
        p.retained_bytes += bytes;
        p.bins.entry(len).or_default().push(v);
    });
}

/// Drops every buffer parked on the calling thread and zeroes its retained
/// footprint (test isolation; never needed in production).
pub fn clear() {
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        p.bins.clear();
        p.retained_bytes = 0;
    });
}

/// Bytes currently parked in the calling thread's free lists.
#[must_use]
pub fn retained_bytes() -> usize {
    POOL.with(|p| p.borrow().retained_bytes)
}

/// Snapshot of the calling thread's hit/miss counters.
#[must_use]
pub fn local_counters() -> LocalCounters {
    POOL.with(|p| p.borrow().counters)
}

/// Zeroes the calling thread's hit/miss counters (the parked buffers stay).
pub fn reset_local_counters() {
    POOL.with(|p| p.borrow_mut().counters = LocalCounters::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes the pool-state tests (they share the thread-local pool
    /// with every other test on this thread).
    fn isolated() -> impl Drop {
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                clear();
                reset_local_counters();
            }
        }
        clear();
        reset_local_counters();
        Reset
    }

    #[test]
    fn round_trip_recycles_exact_length() {
        let _g = isolated();
        let v = take(MIN_RECYCLE_ELEMS);
        let ptr = v.as_ptr();
        give(v);
        assert_eq!(retained_bytes(), MIN_RECYCLE_ELEMS * 4);
        let w = take(MIN_RECYCLE_ELEMS);
        assert_eq!(w.len(), MIN_RECYCLE_ELEMS);
        assert_eq!(w.as_ptr(), ptr, "same buffer must come back");
        assert_eq!(retained_bytes(), 0);
        let c = local_counters();
        assert_eq!(c.hits, 1);
        assert_eq!(c.misses, 1);
        assert_eq!(c.recycled_bytes, (MIN_RECYCLE_ELEMS * 4) as u64);
    }

    #[test]
    fn lengths_do_not_cross_bins() {
        let _g = isolated();
        give(vec![1.0; MIN_RECYCLE_ELEMS]);
        let w = take(MIN_RECYCLE_ELEMS + 1);
        assert_eq!(w.len(), MIN_RECYCLE_ELEMS + 1);
        assert!(w.iter().all(|&x| x == 0.0), "miss must be freshly zeroed");
        assert_eq!(local_counters().hits, 0);
    }

    #[test]
    fn small_buffers_bypass_the_pool() {
        let _g = isolated();
        give(vec![1.0; MIN_RECYCLE_ELEMS - 1]);
        assert_eq!(retained_bytes(), 0);
        let v = take(8);
        assert_eq!(v, vec![0.0; 8]);
        assert_eq!(local_counters(), LocalCounters::default());
    }

    #[test]
    fn take_zeroed_clears_recycled_contents() {
        let _g = isolated();
        give(vec![7.5; MIN_RECYCLE_ELEMS]);
        let v = take_zeroed(MIN_RECYCLE_ELEMS);
        assert!(v.iter().all(|&x| x == 0.0));
        assert_eq!(local_counters().hits, 1);
    }

    #[test]
    fn retention_budget_drops_excess() {
        let _g = isolated();
        let huge = MAX_RETAINED_BYTES / 4; // one vector at the full budget
        give(vec![0.0; huge]);
        assert_eq!(retained_bytes(), MAX_RETAINED_BYTES);
        give(vec![0.0; MIN_RECYCLE_ELEMS]);
        assert_eq!(
            retained_bytes(),
            MAX_RETAINED_BYTES,
            "over-budget give must drop"
        );
        clear();
        assert_eq!(retained_bytes(), 0);
    }

    #[test]
    fn training_step_reaches_zero_fresh_allocations_by_step_3() {
        use crate::optim::{Optimizer, Sgd};
        use crate::{kernel, Array, Tensor};
        // Pin all kernel work to this thread so the thread-local counters
        // see the whole step, and serialize against other thread-count
        // tests in the process.
        let _guard = kernel::pool::test_lock();
        let saved = kernel::num_threads();
        kernel::pool::set_num_threads(1);
        let _g = isolated();
        // A realistic weight step over pool-eligible shapes: every
        // intermediate (activations, gradients, optimizer traffic) is at
        // least MIN_RECYCLE_ELEMS elements.
        let x = Tensor::constant(Array::full(&[32, 64], 0.01));
        let w = Tensor::param(Array::full(&[64, 256], 0.02));
        let mut opt = Sgd::new(vec![w.clone()], 1e-4, 0.0, 0.0);
        let mut step = || {
            opt.zero_grad();
            let loss = x.matmul(&w).unwrap().relu6().sum();
            loss.backward();
            opt.step();
        };
        // Two warm-up steps populate the free lists (step 1 allocates the
        // working set; step 2 proves the shapes repeat).
        step();
        step();
        reset_local_counters();
        for _ in 0..3 {
            step();
        }
        let c = local_counters();
        kernel::pool::set_num_threads(saved);
        assert_eq!(
            c.fresh_bytes, 0,
            "steady-state steps must be served entirely from the pool: {c:?}"
        );
        assert_eq!(c.misses, 0, "no pool misses at steady state: {c:?}");
        assert!(c.hits > 0, "the step's buffers must be pool-eligible");
    }

    #[test]
    fn steady_state_fixed_workload_stops_allocating() {
        let _g = isolated();
        // A fixed-shape "step": two eligible buffers, both freed at the end.
        let step = || {
            let a = take(4096);
            let b = take_zeroed(2048);
            give(a);
            give(b);
        };
        step(); // warm-up populates the bins
        reset_local_counters();
        for _ in 0..3 {
            step();
        }
        let c = local_counters();
        assert_eq!(c.fresh_bytes, 0, "steady state must be all hits: {c:?}");
        assert_eq!(c.misses, 0);
        assert_eq!(c.hits, 6);
    }
}
