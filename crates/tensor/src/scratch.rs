//! Thread-local scratch arena: a bump allocator for short-lived `f32`
//! buffers (im2col/col2im columns, GEMM packing, per-step intermediates).
//!
//! The hot loops of supernet training allocate the same large temporaries
//! thousands of times per step; `vec![0.0; n]` pays a malloc **and** a
//! memset each time. The arena keeps one growable block per thread and
//! hands out bump-allocated windows of it, so steady-state allocation is a
//! pointer increment — no syscalls, no zeroing (see [`alloc`] vs
//! [`alloc_zeroed`]).
//!
//! # Lifetime rules
//!
//! A [`ScratchBuf`] is valid for the current forward/backward step only by
//! convention: memory is reclaimed when the last outstanding buffer on the
//! thread is dropped, and [`reset`] (called between training steps) is a
//! backstop that asserts nothing leaked and bumps the arena generation.
//! Buffers are `!Send` — they must stay on the thread that allocated them
//! (each pool worker owns an independent arena).
//!
//! # Alignment
//!
//! Every returned slice starts on a 32-byte boundary (eight `f32` lanes),
//! matching the kernel layer's fixed eight-lane accumulators.

use std::cell::RefCell;

/// Allocation granularity in `f32` elements: 8 lanes × 4 bytes = 32 bytes,
/// so consecutive allocations stay lane-aligned.
const ALIGN_F32: usize = 8;

/// Initial block capacity (f32s) on first use of a thread's arena.
const INITIAL_CAPACITY: usize = 1 << 14;

struct Arena {
    /// Backing blocks; only the last is bump-allocated from. Earlier
    /// blocks persist solely to keep outstanding pointers valid, and are
    /// coalesced into one block once everything is returned.
    blocks: Vec<Box<[f32]>>,
    /// Elements skipped at the start of the last block for 32-byte
    /// alignment of the block's base.
    lead: usize,
    /// Bump offset into the last block (from its start, including `lead`).
    offset: usize,
    /// Live [`ScratchBuf`]s handed out from this arena.
    outstanding: usize,
    /// Elements consumed in retired (non-last) blocks of the current
    /// cycle, so the footprint below spans every block, not just the one
    /// currently bump-allocated from.
    carried: usize,
    /// Peak total elements consumed (across all blocks) since the arena
    /// was last empty; sizes the coalesced block so the next identical
    /// cycle needs a single allocation. Reset on [`Arena::rewind`] so the
    /// arena re-measures each cycle instead of being pinned forever to a
    /// one-off spike.
    high_water: usize,
    /// Bumped on [`reset`]; lets stale buffer drops detect they outlived a
    /// reset instead of corrupting the accounting.
    generation: u64,
}

/// Returns the number of elements to skip so `block[lead..]` starts on a
/// 32-byte boundary (`align_offset` counts in `f32` elements).
fn lead_of(block: &[f32]) -> usize {
    let lead = block.as_ptr().align_offset(ALIGN_F32 * 4);
    if lead == usize::MAX {
        0
    } else {
        lead
    }
}

impl Arena {
    const fn new() -> Self {
        Arena {
            blocks: Vec::new(),
            lead: 0,
            offset: 0,
            outstanding: 0,
            carried: 0,
            high_water: 0,
            generation: 0,
        }
    }

    fn push_block(&mut self, min_len: usize) {
        // The retiring block's consumption stays live (its buffers are
        // still out), so carry it into the cross-block footprint.
        if self.blocks.last().is_some() {
            self.carried += self.offset - self.lead;
        }
        let cap = min_len
            .max(self.blocks.last().map_or(INITIAL_CAPACITY, |b| 2 * b.len()))
            .next_multiple_of(ALIGN_F32)
            + ALIGN_F32;
        let block: Box<[f32]> = vec![0.0f32; cap].into_boxed_slice();
        self.lead = lead_of(&block);
        self.offset = self.lead;
        self.blocks.push(block);
    }

    fn alloc(&mut self, len: usize) -> (*mut f32, u64) {
        let rounded = len.next_multiple_of(ALIGN_F32).max(ALIGN_F32);
        let fits = self
            .blocks
            .last()
            .is_some_and(|b| self.offset + rounded <= b.len());
        if !fits {
            self.push_block(rounded);
        }
        let block = self.blocks.last_mut().expect("block just ensured");
        let ptr = unsafe { block.as_mut_ptr().add(self.offset) };
        self.offset += rounded;
        self.outstanding += 1;
        self.high_water = self.high_water.max(self.carried + self.offset - self.lead);
        (ptr, self.generation)
    }

    fn release(&mut self) {
        debug_assert!(self.outstanding > 0, "scratch release without alloc");
        self.outstanding -= 1;
        if self.outstanding == 0 {
            self.rewind();
        }
    }

    /// Returns the arena to its empty state, coalescing fragmented blocks
    /// into a single one sized by the high-water mark.
    fn rewind(&mut self) {
        // Fold this cycle's peak footprint into the process-wide gauge
        // before the per-cycle mark is cleared (the global keeps the max).
        if self.high_water > 0 {
            crate::stats::record_scratch_high_water(
                self.high_water as u64 * std::mem::size_of::<f32>() as u64,
            );
        }
        if self.blocks.len() > 1 {
            let want = self.high_water;
            self.blocks.clear();
            self.push_block(want);
        }
        self.carried = 0;
        self.high_water = 0;
        self.offset = self.lead;
    }
}

thread_local! {
    static ARENA: RefCell<Arena> = const { RefCell::new(Arena::new()) };
}

/// A bump-allocated `f32` buffer borrowed from the current thread's arena.
///
/// Dereferences to `&mut [f32]`. Dropping it returns the space; when the
/// last outstanding buffer on the thread drops, the whole arena rewinds to
/// empty. Not `Send`: the buffer must be dropped on the allocating thread.
pub struct ScratchBuf {
    ptr: *mut f32,
    len: usize,
    generation: u64,
}

impl std::ops::Deref for ScratchBuf {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        // SAFETY: the arena keeps the backing block alive (and unmoved)
        // while `outstanding > 0`, and bump windows never overlap.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl std::ops::DerefMut for ScratchBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: as above; `&mut self` guarantees exclusive access.
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for ScratchBuf {
    fn drop(&mut self) {
        ARENA.with(|a| {
            let mut arena = a.borrow_mut();
            // A buffer that (erroneously) outlived a reset must not
            // corrupt the post-reset accounting.
            if arena.generation == self.generation {
                arena.release();
            }
        });
    }
}

impl std::fmt::Debug for ScratchBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchBuf")
            .field("len", &self.len)
            .finish()
    }
}

/// Allocates `len` f32s from the current thread's arena. The contents are
/// unspecified (possibly stale data from earlier steps) — callers must
/// fully overwrite the buffer, or use [`alloc_zeroed`].
#[must_use]
pub fn alloc(len: usize) -> ScratchBuf {
    let (ptr, generation) = ARENA.with(|a| a.borrow_mut().alloc(len));
    ScratchBuf {
        ptr,
        len,
        generation,
    }
}

/// [`alloc`] followed by zero-filling; for accumulation buffers.
#[must_use]
pub fn alloc_zeroed(len: usize) -> ScratchBuf {
    let mut buf = alloc(len);
    buf.fill(0.0);
    buf
}

/// Declares a typed view over arena-backed f32 storage: the wrapper owns a
/// [`ScratchBuf`] sized in whole f32s and reinterprets its (32-byte
/// aligned) base pointer as `$elem`. Release/rewind mechanics are entirely
/// the inner buffer's.
macro_rules! scratch_view {
    ($(#[$meta:meta])* $name:ident, $elem:ty, $alloc:ident, $alloc_zeroed:ident) => {
        $(#[$meta])*
        pub struct $name {
            buf: ScratchBuf,
            len: usize,
        }

        impl std::ops::Deref for $name {
            type Target = [$elem];

            fn deref(&self) -> &[$elem] {
                // SAFETY: the inner buffer owns at least `len * size_of::<$elem>()`
                // bytes of live, 32-byte-aligned arena storage, and `$elem` has
                // no validity requirements beyond initialized bytes (the arena
                // zero-fills fresh blocks and callers overwrite reused space).
                unsafe { std::slice::from_raw_parts(self.buf.ptr.cast::<$elem>(), self.len) }
            }
        }

        impl std::ops::DerefMut for $name {
            fn deref_mut(&mut self) -> &mut [$elem] {
                // SAFETY: as above; `&mut self` guarantees exclusive access.
                unsafe {
                    std::slice::from_raw_parts_mut(self.buf.ptr.cast::<$elem>(), self.len)
                }
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.debug_struct(stringify!($name)).field("len", &self.len).finish()
            }
        }

        /// Allocates `len` elements from the current thread's arena.
        /// Contents are unspecified — fully overwrite, or use the zeroed
        /// variant.
        #[must_use]
        pub fn $alloc(len: usize) -> $name {
            let f32s = (len * std::mem::size_of::<$elem>()).div_ceil(std::mem::size_of::<f32>());
            $name {
                buf: alloc(f32s),
                len,
            }
        }

        /// Zero-filled variant of the allocator above.
        #[must_use]
        pub fn $alloc_zeroed(len: usize) -> $name {
            let mut buf = $alloc(len);
            buf.fill(0);
            buf
        }
    };
}

scratch_view! {
    /// A bump-allocated `i8` buffer borrowed from the arena (quantized
    /// activations, packed int8 panels). Same lifetime rules as
    /// [`ScratchBuf`].
    ScratchBufI8, i8, alloc_i8, alloc_i8_zeroed
}

scratch_view! {
    /// A bump-allocated `i32` buffer borrowed from the arena (qGEMM
    /// accumulators). Same lifetime rules as [`ScratchBuf`].
    ScratchBufI32, i32, alloc_i32, alloc_i32_zeroed
}

/// Per-training-step backstop: verifies every [`ScratchBuf`] on this
/// thread has been dropped, rewinds the arena and bumps its generation.
///
/// Call between steps (the trainers do); it turns a scratch-buffer leak
/// into an immediate panic at a known boundary instead of silent memory
/// growth.
///
/// # Panics
///
/// Panics if scratch buffers allocated on this thread are still alive.
pub fn reset() {
    // The borrow is released before any panic so that unwinding (which
    // drops the leaked buffers, which re-borrow the arena) stays safe.
    let outstanding = ARENA.with(|a| {
        let mut arena = a.borrow_mut();
        if arena.outstanding == 0 {
            arena.rewind();
            arena.generation = arena.generation.wrapping_add(1);
        }
        arena.outstanding
    });
    assert_eq!(
        outstanding, 0,
        "scratch::reset with {outstanding} buffer(s) still outstanding; \
         scratch buffers must not outlive one forward/backward step"
    );
}

/// Bytes currently reserved by this thread's arena (test/diagnostic hook).
#[must_use]
pub fn reserved_bytes() -> usize {
    ARENA.with(|a| {
        a.borrow()
            .blocks
            .iter()
            .map(|b| b.len() * std::mem::size_of::<f32>())
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_are_disjoint_and_aligned() {
        let a = alloc(10);
        let b = alloc(100);
        let c = alloc(1);
        for buf in [&a, &b, &c] {
            assert_eq!(buf.as_ptr() as usize % 32, 0, "32-byte alignment");
        }
        let ra = a.as_ptr() as usize..a.as_ptr() as usize + a.len() * 4;
        let rb = b.as_ptr() as usize..b.as_ptr() as usize + b.len() * 4;
        let rc = c.as_ptr() as usize..c.as_ptr() as usize + c.len() * 4;
        assert!(ra.end <= rb.start || rb.end <= ra.start);
        assert!(ra.end <= rc.start || rc.end <= ra.start);
        assert!(rb.end <= rc.start || rc.end <= rb.start);
    }

    #[test]
    fn contents_survive_while_live_and_space_is_reused() {
        let first_ptr;
        {
            let mut a = alloc(64);
            a.fill(3.5);
            first_ptr = a.as_ptr();
            let mut b = alloc(64);
            b.fill(-1.0);
            assert!(a.iter().all(|&v| v == 3.5), "b must not clobber a");
        }
        // Everything returned: the next allocation reuses the same space.
        let c = alloc(64);
        assert_eq!(c.as_ptr(), first_ptr, "arena should rewind when empty");
    }

    #[test]
    fn alloc_zeroed_zeroes_recycled_memory() {
        {
            let mut d = alloc(32);
            d.fill(7.0);
        }
        let z = alloc_zeroed(32);
        assert!(z.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn growth_preserves_live_buffers() {
        // Cumulative size crosses the initial block capacity, forcing new
        // blocks while older buffers are still live.
        let mut bufs = Vec::new();
        for i in 0..15 {
            let mut b = alloc(1 << i);
            b.fill(i as f32);
            bufs.push(b);
        }
        for (i, b) in bufs.iter().enumerate() {
            assert_eq!(b.len(), 1 << i);
            assert!(b.iter().all(|&v| v == i as f32), "buffer {i} corrupted");
        }
    }

    #[test]
    fn rewind_coalesces_to_full_cycle_footprint() {
        // A cycle whose live footprint spans several blocks: the rewind
        // must size the coalesced block from the cross-block total, so an
        // identical second cycle fits in one block and the arena stops
        // allocating (i.e. it converges instead of re-fragmenting).
        let cycle = || {
            let bufs: Vec<ScratchBuf> = (0..15).map(|i| alloc(1 << i)).collect();
            assert!(bufs
                .iter()
                .all(|b| (b.as_ptr() as usize).is_multiple_of(32)));
        };
        cycle();
        let after_first = reserved_bytes();
        for _ in 0..3 {
            cycle();
            assert_eq!(
                reserved_bytes(),
                after_first,
                "repeat cycles must reuse the coalesced block"
            );
        }
    }

    #[test]
    fn reset_rewinds_and_reports() {
        {
            let _a = alloc(100);
        }
        reset();
        assert!(reserved_bytes() > 0);
        let b = alloc(10);
        assert_eq!(b.as_ptr() as usize % 32, 0);
    }

    #[test]
    fn typed_views_are_disjoint_and_aligned() {
        let mut a = alloc_i8(13);
        a.fill(7);
        let mut b = alloc_i32(5);
        b.fill(-3);
        let z = alloc_i8_zeroed(40);
        assert_eq!(a.as_ptr() as usize % 32, 0);
        assert_eq!(b.as_ptr() as usize % 32, 0);
        assert!(a.iter().all(|&v| v == 7), "i32 view must not clobber i8");
        assert!(b.iter().all(|&v| v == -3));
        assert!(z.iter().all(|&v| v == 0));
    }

    #[test]
    fn reset_panics_on_leaked_buffer() {
        let result = std::panic::catch_unwind(|| {
            let _leaked = alloc(8);
            reset();
        });
        assert!(result.is_err(), "reset must reject outstanding buffers");
        // The drop of `_leaked` during unwinding is generation-checked, so
        // the arena stays usable afterwards.
        reset();
        let _ok = alloc(8);
    }
}
