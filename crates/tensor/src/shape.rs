//! Shape arithmetic: sizes, strides and NumPy-style broadcasting rules.

use crate::error::{Result, TensorError};

/// Returns the number of elements implied by `shape`.
///
/// The empty shape `[]` denotes a scalar and has one element.
#[must_use]
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Returns row-major (C order) strides for `shape`.
///
/// The stride of the last axis is 1; each preceding axis strides over the
/// product of the trailing dimensions.
#[must_use]
pub fn row_major_strides(shape: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        strides[i] = strides[i + 1] * shape[i + 1];
    }
    strides
}

/// Computes the broadcast shape of two operand shapes using NumPy rules:
/// shapes are right-aligned; a dimension broadcasts if it equals the other
/// or is 1.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when a pair of aligned dimensions
/// are unequal and neither is 1.
pub fn broadcast_shapes(lhs: &[usize], rhs: &[usize], op: &'static str) -> Result<Vec<usize>> {
    let rank = lhs.len().max(rhs.len());
    let mut out = vec![0usize; rank];
    #[allow(clippy::needless_range_loop)] // lockstep multi-array indexing
    for i in 0..rank {
        let l = dim_right(lhs, rank - 1 - i);
        let r = dim_right(rhs, rank - 1 - i);
        out[i] = if l == r {
            l
        } else if l == 1 {
            r
        } else if r == 1 {
            l
        } else {
            return Err(TensorError::ShapeMismatch {
                lhs: lhs.to_vec(),
                rhs: rhs.to_vec(),
                op,
            });
        };
    }
    Ok(out)
}

/// Dimension of `shape` counting `k` axes from the right (k = 0 is the last
/// axis), treating out-of-range axes as 1.
#[must_use]
pub fn dim_right(shape: &[usize], k: usize) -> usize {
    if k < shape.len() {
        shape[shape.len() - 1 - k]
    } else {
        1
    }
}

/// Checks that `axis < rank`, returning a descriptive error otherwise.
///
/// # Errors
///
/// Returns [`TensorError::InvalidArgument`] when the axis is out of range.
pub fn check_axis(axis: usize, rank: usize) -> Result<()> {
    if axis >= rank {
        return Err(TensorError::InvalidArgument(format!(
            "axis {axis} out of range for rank {rank}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn num_elements_scalar_is_one() {
        assert_eq!(num_elements(&[]), 1);
    }

    #[test]
    fn num_elements_products() {
        assert_eq!(num_elements(&[2, 3, 4]), 24);
        assert_eq!(num_elements(&[7]), 7);
        assert_eq!(num_elements(&[5, 0]), 0);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(row_major_strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(row_major_strides(&[5]), vec![1]);
        assert_eq!(row_major_strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_equal_shapes() {
        assert_eq!(broadcast_shapes(&[2, 3], &[2, 3], "t").unwrap(), vec![2, 3]);
    }

    #[test]
    fn broadcast_scalar() {
        assert_eq!(broadcast_shapes(&[2, 3], &[], "t").unwrap(), vec![2, 3]);
        assert_eq!(broadcast_shapes(&[], &[4], "t").unwrap(), vec![4]);
    }

    #[test]
    fn broadcast_trailing() {
        assert_eq!(broadcast_shapes(&[8, 16], &[16], "t").unwrap(), vec![8, 16]);
        assert_eq!(
            broadcast_shapes(&[4, 1, 5], &[3, 1], "t").unwrap(),
            vec![4, 3, 5]
        );
    }

    #[test]
    fn broadcast_mismatch_errors() {
        let err = broadcast_shapes(&[2, 3], &[4], "myop").unwrap_err();
        match err {
            TensorError::ShapeMismatch { op, .. } => assert_eq!(op, "myop"),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn dim_right_pads_with_ones() {
        assert_eq!(dim_right(&[2, 3], 0), 3);
        assert_eq!(dim_right(&[2, 3], 1), 2);
        assert_eq!(dim_right(&[2, 3], 2), 1);
        assert_eq!(dim_right(&[], 0), 1);
    }

    #[test]
    fn check_axis_bounds() {
        assert!(check_axis(1, 2).is_ok());
        assert!(check_axis(2, 2).is_err());
    }
}
