//! Process-wide kernel-runtime counters: relaxed atomics updated from the
//! worker pool and scratch arena, sampled by the layers above.
//!
//! This crate deliberately does **not** depend on `edd-runtime`'s telemetry
//! sink — the pool's dispatch decision and the arena's rewind sit on the
//! hottest paths in the workspace, and a relaxed `fetch_add` is the entire
//! overhead budget they can afford. Consumers (the search loop, the bench
//! harness) read a [`KernelStats`] snapshot and emit it as gauges through
//! whatever sink they use.

use std::sync::atomic::{AtomicU64, Ordering};

/// Parallel-for regions dispatched through the shared job queue.
static POOL_PARALLEL_JOBS: AtomicU64 = AtomicU64::new(0);
/// Parallel-for regions executed inline (single task, one logical thread,
/// or nested inside another region).
static POOL_INLINE_JOBS: AtomicU64 = AtomicU64::new(0);
/// Total tasks executed across all regions, inline and parallel.
static POOL_TASKS: AtomicU64 = AtomicU64::new(0);
/// Physical worker threads spawned over the process lifetime.
static POOL_WORKERS_SPAWNED: AtomicU64 = AtomicU64::new(0);
/// Peak scratch-arena footprint (bytes) observed on any single thread.
static SCRATCH_HIGH_WATER_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes of pool-eligible tensor storage served by fresh system allocations.
static BUFFER_FRESH_BYTES: AtomicU64 = AtomicU64::new(0);
/// Bytes of pool-eligible tensor storage served from recycling free lists.
static BUFFER_RECYCLED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Pool-eligible buffer requests satisfied from a free list.
static BUFFER_POOL_HITS: AtomicU64 = AtomicU64::new(0);
/// Pool-eligible buffer requests that fell back to the system allocator.
static BUFFER_POOL_MISSES: AtomicU64 = AtomicU64::new(0);
/// GEMM dispatches routed to the vector-matrix (skinny-M) blueprint.
static SELECT_VECMAT: AtomicU64 = AtomicU64::new(0);
/// GEMM dispatches routed to the skinny-N blueprint.
static SELECT_SKINNY_N: AtomicU64 = AtomicU64::new(0);
/// GEMM dispatches routed to the square/general packed blueprint.
static SELECT_SQUARE: AtomicU64 = AtomicU64::new(0);
/// GEMM dispatches arriving from an im2col convolution lowering.
static SELECT_CONV: AtomicU64 = AtomicU64::new(0);
/// GEMM dispatches forced onto the generic blocked kernel
/// (`EDD_GEMM=generic`).
static SELECT_GENERIC: AtomicU64 = AtomicU64::new(0);
/// Weight panels packed once at compile/construction time.
static PACK_PANELS_BUILT: AtomicU64 = AtomicU64::new(0);
/// Kernel invocations served by a cached prepacked weight panel.
static PACK_PANEL_HITS: AtomicU64 = AtomicU64::new(0);
/// Per-call activation-panel packs (no cache possible: data changes).
static PACK_PANEL_MISSES: AtomicU64 = AtomicU64::new(0);

/// Point-in-time snapshot of the kernel-runtime counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Parallel-for regions that went through the worker-pool job queue.
    pub pool_parallel_jobs: u64,
    /// Parallel-for regions executed inline on the calling thread.
    pub pool_inline_jobs: u64,
    /// Total tasks executed (inline + parallel).
    pub pool_tasks: u64,
    /// Physical worker threads spawned so far.
    pub pool_workers_spawned: u64,
    /// Peak per-thread scratch-arena footprint in bytes.
    pub scratch_high_water_bytes: u64,
    /// Bytes of pool-eligible tensor storage freshly allocated (see
    /// [`crate::recycle`]; sub-threshold vectors are not counted).
    pub buffer_fresh_bytes: u64,
    /// Bytes of pool-eligible tensor storage served from recycling bins.
    pub buffer_recycled_bytes: u64,
    /// Pool-eligible buffer requests satisfied from a free list.
    pub buffer_pool_hits: u64,
    /// Pool-eligible buffer requests that missed and hit the allocator.
    pub buffer_pool_misses: u64,
    /// GEMM dispatches classified vector-matrix (m below the row tile).
    pub select_vecmat: u64,
    /// GEMM dispatches classified skinny-N (n below the column tile).
    pub select_skinny_n: u64,
    /// GEMM dispatches classified square/general.
    pub select_square: u64,
    /// GEMM dispatches tagged as im2col convolution lowerings.
    pub select_conv: u64,
    /// GEMM dispatches forced generic by `EDD_GEMM=generic`.
    pub select_generic: u64,
    /// Weight panels packed once at compile/construction time.
    pub pack_panels_built: u64,
    /// Kernel invocations that reused a cached prepacked weight panel.
    pub pack_panel_hits: u64,
    /// Per-call activation-panel packs (inherently uncacheable).
    pub pack_panel_misses: u64,
}

impl KernelStats {
    /// Fraction of parallel-for regions that actually ran parallel; `None`
    /// before any region has executed.
    #[must_use]
    pub fn pool_utilization(&self) -> Option<f64> {
        let total = self.pool_parallel_jobs + self.pool_inline_jobs;
        (total > 0).then(|| self.pool_parallel_jobs as f64 / total as f64)
    }
}

/// Reads all counters (relaxed; values from concurrent updates may be
/// mutually torn across fields, which is fine for monitoring).
#[must_use]
pub fn snapshot() -> KernelStats {
    KernelStats {
        pool_parallel_jobs: POOL_PARALLEL_JOBS.load(Ordering::Relaxed),
        pool_inline_jobs: POOL_INLINE_JOBS.load(Ordering::Relaxed),
        pool_tasks: POOL_TASKS.load(Ordering::Relaxed),
        pool_workers_spawned: POOL_WORKERS_SPAWNED.load(Ordering::Relaxed),
        scratch_high_water_bytes: SCRATCH_HIGH_WATER_BYTES.load(Ordering::Relaxed),
        buffer_fresh_bytes: BUFFER_FRESH_BYTES.load(Ordering::Relaxed),
        buffer_recycled_bytes: BUFFER_RECYCLED_BYTES.load(Ordering::Relaxed),
        buffer_pool_hits: BUFFER_POOL_HITS.load(Ordering::Relaxed),
        buffer_pool_misses: BUFFER_POOL_MISSES.load(Ordering::Relaxed),
        select_vecmat: SELECT_VECMAT.load(Ordering::Relaxed),
        select_skinny_n: SELECT_SKINNY_N.load(Ordering::Relaxed),
        select_square: SELECT_SQUARE.load(Ordering::Relaxed),
        select_conv: SELECT_CONV.load(Ordering::Relaxed),
        select_generic: SELECT_GENERIC.load(Ordering::Relaxed),
        pack_panels_built: PACK_PANELS_BUILT.load(Ordering::Relaxed),
        pack_panel_hits: PACK_PANEL_HITS.load(Ordering::Relaxed),
        pack_panel_misses: PACK_PANEL_MISSES.load(Ordering::Relaxed),
    }
}

/// Zeroes every counter (bench harness isolation between phases).
pub fn reset() {
    POOL_PARALLEL_JOBS.store(0, Ordering::Relaxed);
    POOL_INLINE_JOBS.store(0, Ordering::Relaxed);
    POOL_TASKS.store(0, Ordering::Relaxed);
    POOL_WORKERS_SPAWNED.store(0, Ordering::Relaxed);
    SCRATCH_HIGH_WATER_BYTES.store(0, Ordering::Relaxed);
    BUFFER_FRESH_BYTES.store(0, Ordering::Relaxed);
    BUFFER_RECYCLED_BYTES.store(0, Ordering::Relaxed);
    BUFFER_POOL_HITS.store(0, Ordering::Relaxed);
    BUFFER_POOL_MISSES.store(0, Ordering::Relaxed);
    SELECT_VECMAT.store(0, Ordering::Relaxed);
    SELECT_SKINNY_N.store(0, Ordering::Relaxed);
    SELECT_SQUARE.store(0, Ordering::Relaxed);
    SELECT_CONV.store(0, Ordering::Relaxed);
    SELECT_GENERIC.store(0, Ordering::Relaxed);
    PACK_PANELS_BUILT.store(0, Ordering::Relaxed);
    PACK_PANEL_HITS.store(0, Ordering::Relaxed);
    PACK_PANEL_MISSES.store(0, Ordering::Relaxed);
}

/// Counts one GEMM dispatch for the given shape class (crate-internal:
/// the selector calls this once per front-level GEMM call).
pub(crate) fn record_select_dispatch(class: crate::kernel::select::GemmClass) {
    use crate::kernel::select::GemmClass;
    let ctr = match class {
        GemmClass::VecMat => &SELECT_VECMAT,
        GemmClass::SkinnyN => &SELECT_SKINNY_N,
        GemmClass::Square => &SELECT_SQUARE,
        GemmClass::Conv => &SELECT_CONV,
    };
    ctr.fetch_add(1, Ordering::Relaxed);
}

/// Counts one GEMM dispatch forced generic by `EDD_GEMM=generic`.
pub(crate) fn record_select_generic() {
    SELECT_GENERIC.fetch_add(1, Ordering::Relaxed);
}

/// Counts one weight panel packed at compile/construction time. Public:
/// the layer crates build their panels outside `edd-tensor`.
pub fn record_pack_panel_built() {
    PACK_PANELS_BUILT.fetch_add(1, Ordering::Relaxed);
}

/// Counts one kernel invocation served by a cached prepacked weight panel.
pub fn record_pack_panel_hit() {
    PACK_PANEL_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one per-call activation-panel pack.
pub fn record_pack_panel_miss() {
    PACK_PANEL_MISSES.fetch_add(1, Ordering::Relaxed);
}

pub(crate) fn record_pool_job(tasks: usize, inline: bool) {
    if inline {
        POOL_INLINE_JOBS.fetch_add(1, Ordering::Relaxed);
    } else {
        POOL_PARALLEL_JOBS.fetch_add(1, Ordering::Relaxed);
    }
    POOL_TASKS.fetch_add(tasks as u64, Ordering::Relaxed);
}

pub(crate) fn record_worker_spawned() {
    POOL_WORKERS_SPAWNED.fetch_add(1, Ordering::Relaxed);
}

/// Folds one thread's cycle high-water mark (in bytes) into the global max.
pub(crate) fn record_scratch_high_water(bytes: u64) {
    SCRATCH_HIGH_WATER_BYTES.fetch_max(bytes, Ordering::Relaxed);
}

/// Accounts one pool-eligible buffer request from [`crate::recycle`].
pub(crate) fn record_buffer_request(bytes: u64, recycled: bool) {
    if recycled {
        BUFFER_RECYCLED_BYTES.fetch_add(bytes, Ordering::Relaxed);
        BUFFER_POOL_HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        BUFFER_FRESH_BYTES.fetch_add(bytes, Ordering::Relaxed);
        BUFFER_POOL_MISSES.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilization_math() {
        let s = KernelStats {
            pool_parallel_jobs: 3,
            pool_inline_jobs: 1,
            ..KernelStats::default()
        };
        assert_eq!(s.pool_utilization(), Some(0.75));
        assert_eq!(KernelStats::default().pool_utilization(), None);
    }

    #[test]
    fn high_water_takes_the_max() {
        // Other tests run concurrently in this process, so only assert
        // monotonicity, not exact values.
        record_scratch_high_water(10);
        let a = snapshot().scratch_high_water_bytes;
        assert!(a >= 10);
        record_scratch_high_water(5);
        assert!(snapshot().scratch_high_water_bytes >= a);
    }
}
