//! Reverse-mode automatic differentiation core.
//!
//! A [`Tensor`] is a shared handle to a node in a dynamically-built compute
//! graph. Operations eagerly compute their value ([`Array`]) and record a
//! backward closure; [`Tensor::backward`] runs a reverse topological sweep
//! that accumulates gradients into every node with `requires_grad`.

use crate::array::Array;
use crate::error::Result;
use std::collections::HashSet;
use std::fmt;
use std::sync::{Arc, RwLock, RwLockReadGuard};

/// Backward closure: receives the gradient of the loss with respect to this
/// node's output **by value** (moved out of the node's grad slot, so the
/// sweep never clones gradients) and accumulates into the node's parents —
/// the final contribution can be moved straight into an empty parent slot
/// via [`Tensor::accumulate_grad_owned`]. `Send + Sync` so graph nodes can
/// be built concurrently on pool workers (supernet branch fan-out); the
/// backward sweep itself stays single-threaded.
///
/// The closure runs while the *own* node's write lock is held: it must only
/// lock parents (distinct nodes; graphs are acyclic) and must never read its
/// own output through the tensor handle — ops that need their forward output
/// in backward (softmax, batch norm) capture a saved copy instead.
pub(crate) type BackwardFn = Box<dyn Fn(Array) + Send + Sync>;

struct Inner {
    value: Array,
    grad: Option<Array>,
    requires_grad: bool,
    parents: Vec<Tensor>,
    backward: Option<BackwardFn>,
}

/// A node in the autodiff graph: a value plus (optionally) the recipe for
/// propagating gradients to its parents.
///
/// `Tensor` is a cheap reference-counted handle; cloning it aliases the same
/// node. Graphs are rebuilt each forward pass (define-by-run), so leaf
/// parameters persist across iterations while intermediate nodes are freed
/// when the loss handle is dropped.
///
/// Handles are `Send + Sync`: independent subgraphs (e.g. the M candidate
/// branches of a supernet block) may be built concurrently on pool workers.
/// Mutation of a single node (`set_value`, `accumulate_grad`) takes its
/// write lock; the optimizer and backward sweep run single-threaded.
///
/// # Examples
///
/// ```
/// use edd_tensor::{Array, Tensor};
/// let x = Tensor::param(Array::from_vec(vec![2.0], &[1]).unwrap());
/// let y = x.mul(&x).unwrap().sum(); // y = x^2
/// y.backward();
/// assert_eq!(x.grad().unwrap().data(), &[4.0]); // dy/dx = 2x
/// ```
#[derive(Clone)]
pub struct Tensor {
    inner: Arc<RwLock<Inner>>,
}

/// A read guard over a node's value, dereferencing to [`Array`].
///
/// Returned by [`Tensor::value`]; holding it blocks in-place mutation of
/// the same node (`set_value` / `update_value`) from other threads.
pub struct ValueRef<'a>(RwLockReadGuard<'a, Inner>);

impl std::ops::Deref for ValueRef<'_> {
    type Target = Array;

    fn deref(&self) -> &Array {
        &self.0.value
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.read();
        f.debug_struct("Tensor")
            .field("shape", &inner.value.shape())
            .field("requires_grad", &inner.requires_grad)
            .field("has_grad", &inner.grad.is_some())
            .finish()
    }
}

impl Tensor {
    fn read(&self) -> RwLockReadGuard<'_, Inner> {
        self.inner.read().expect("tensor lock poisoned")
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Inner> {
        self.inner.write().expect("tensor lock poisoned")
    }

    /// Creates a trainable leaf (a parameter) from `value`.
    #[must_use]
    pub fn param(value: Array) -> Tensor {
        Tensor {
            inner: Arc::new(RwLock::new(Inner {
                value,
                grad: None,
                requires_grad: true,
                parents: Vec::new(),
                backward: None,
            })),
        }
    }

    /// Creates a non-trainable leaf (a constant input) from `value`.
    #[must_use]
    pub fn constant(value: Array) -> Tensor {
        Tensor {
            inner: Arc::new(RwLock::new(Inner {
                value,
                grad: None,
                requires_grad: false,
                parents: Vec::new(),
                backward: None,
            })),
        }
    }

    /// Creates a constant rank-0 tensor.
    #[must_use]
    pub fn scalar(v: f32) -> Tensor {
        Tensor::constant(Array::scalar(v))
    }

    /// Internal constructor for op results.
    ///
    /// The backward closure is kept only when at least one parent requires
    /// gradients; otherwise the node is a dead end for backprop.
    pub(crate) fn from_op(value: Array, parents: Vec<Tensor>, backward: BackwardFn) -> Tensor {
        let requires_grad = parents.iter().any(Tensor::requires_grad);
        Tensor {
            inner: Arc::new(RwLock::new(Inner {
                value,
                grad: None,
                requires_grad,
                parents: if requires_grad { parents } else { Vec::new() },
                backward: if requires_grad { Some(backward) } else { None },
            })),
        }
    }

    /// Whether gradients flow into this node.
    #[must_use]
    pub fn requires_grad(&self) -> bool {
        self.read().requires_grad
    }

    /// A stable identity for this graph node (two handles compare equal iff
    /// they alias the same node).
    #[must_use]
    pub fn node_id(&self) -> usize {
        Arc::as_ptr(&self.inner) as usize
    }

    /// Read-locks the node and borrows its value.
    ///
    /// # Panics
    ///
    /// Panics if the node's lock is poisoned (a panic while mutating, only
    /// possible from inside optimizer update closures).
    #[must_use]
    pub fn value(&self) -> ValueRef<'_> {
        ValueRef(self.read())
    }

    /// Clones the node's value out of the graph.
    #[must_use]
    pub fn value_clone(&self) -> Array {
        self.read().value.clone()
    }

    /// The node's shape.
    #[must_use]
    pub fn shape(&self) -> Vec<usize> {
        self.read().value.shape().to_vec()
    }

    /// The single element of a scalar node.
    ///
    /// # Panics
    ///
    /// Panics if the node holds more than one element.
    #[must_use]
    pub fn item(&self) -> f32 {
        self.read().value.item()
    }

    /// Clones the accumulated gradient, if any.
    #[must_use]
    pub fn grad(&self) -> Option<Array> {
        self.read().grad.clone()
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&self) {
        self.write().grad = None;
    }

    /// Overwrites the node's value in place (used by optimizers and
    /// running-statistic updates). Does not touch the graph.
    ///
    /// # Panics
    ///
    /// Panics if `new_value` has a different shape than the current value.
    pub fn set_value(&self, new_value: Array) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            new_value.shape(),
            "set_value must preserve shape"
        );
        inner.value = new_value;
    }

    /// Applies `f` to the value in place (optimizer hot path).
    pub fn update_value(&self, f: impl FnOnce(&mut Array)) {
        let mut inner = self.write();
        f(&mut inner.value);
    }

    /// Returns a new constant leaf sharing a copy of this node's value;
    /// gradients do not flow through the result.
    #[must_use]
    pub fn detach(&self) -> Tensor {
        Tensor::constant(self.value_clone())
    }

    /// Accumulates `g` into this node's gradient buffer.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from the node's value shape.
    pub fn accumulate_grad(&self, g: &Array) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            g.shape(),
            "gradient shape must match value shape"
        );
        match &mut inner.grad {
            Some(acc) => acc.add_scaled_assign(g, 1.0),
            slot @ None => *slot = Some(g.clone()),
        }
    }

    /// Accumulates an owned gradient into this node: the first contribution
    /// moves `g` straight into the empty slot (no copy), later ones add in
    /// place. The backward hot path — closures hand their last (often only)
    /// per-parent gradient here instead of cloning it.
    ///
    /// # Panics
    ///
    /// Panics if `g`'s shape differs from the node's value shape.
    pub fn accumulate_grad_owned(&self, g: Array) {
        let mut inner = self.write();
        assert_eq!(
            inner.value.shape(),
            g.shape(),
            "gradient shape must match value shape"
        );
        match &mut inner.grad {
            Some(acc) => acc.add_scaled_assign(&g, 1.0),
            slot @ None => *slot = Some(g),
        }
    }

    /// Moves the accumulated gradient out of the node (leaving none), if
    /// any. Lets optimizers consume gradients without cloning; the returned
    /// buffer feeds the recycling pool when dropped.
    #[must_use]
    pub fn take_grad(&self) -> Option<Array> {
        self.write().grad.take()
    }

    /// Applies `f` to the accumulated gradient in place, if present
    /// (gradient clipping without clone-and-rewrite).
    pub fn update_grad(&self, f: impl FnOnce(&mut Array)) {
        if let Some(g) = self.write().grad.as_mut() {
            f(g);
        }
    }

    /// Applies `f` to a borrow of the accumulated gradient, if present —
    /// read-only gradient inspection without cloning.
    #[must_use]
    pub fn map_grad<R>(&self, f: impl FnOnce(&Array) -> R) -> Option<R> {
        self.read().grad.as_ref().map(f)
    }

    /// Runs reverse-mode differentiation from this node, seeding with a
    /// gradient of all-ones (so for a scalar loss this computes `dL/dx` for
    /// every reachable parameter).
    ///
    /// Gradients accumulate across calls; call [`Tensor::zero_grad`] (or an
    /// optimizer's `zero_grad`) between steps.
    pub fn backward(&self) {
        let shape = self.shape();
        self.backward_with(Array::ones(&shape));
    }

    /// Runs reverse-mode differentiation seeding this node's gradient with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `seed`'s shape differs from this node's shape.
    pub fn backward_with(&self, seed: Array) {
        self.accumulate_grad_owned(seed);
        let order = self.topo_order();
        for node in order.iter().rev() {
            let mut inner = node.write();
            if inner.backward.is_none() {
                // Leaves (and dead ends) keep their accumulated gradients.
                continue;
            }
            // Move the gradient out instead of cloning it; op-node grad
            // slots are left empty, which also subsumes the old post-sweep
            // clearing pass.
            let Some(grad) = inner.grad.take() else {
                continue;
            };
            // Call the closure while holding this node's write lock (so no
            // other take can race the move): the closure locks *parents*
            // only, which are distinct nodes (graphs are acyclic), and the
            // sweep is single-threaded.
            if let Some(bw) = &inner.backward {
                bw(grad);
            }
        }
    }

    /// Iterative DFS topological order (parents before children).
    fn topo_order(&self) -> Vec<Tensor> {
        let mut order = Vec::new();
        let mut visited: HashSet<usize> = HashSet::new();
        // Stack of (node, parents_pushed) frames.
        let mut stack: Vec<(Tensor, bool)> = vec![(self.clone(), false)];
        while let Some((node, expanded)) = stack.pop() {
            let key = Arc::as_ptr(&node.inner) as usize;
            if expanded {
                order.push(node);
                continue;
            }
            if visited.contains(&key) {
                continue;
            }
            visited.insert(key);
            stack.push((node.clone(), true));
            for p in &node.read().parents {
                let pk = Arc::as_ptr(&p.inner) as usize;
                if !visited.contains(&pk) {
                    stack.push((p.clone(), false));
                }
            }
        }
        order
    }

    /// Builds a constant one-hot vector tensor of length `n`.
    ///
    /// # Errors
    ///
    /// Returns an error if `index >= n`.
    pub fn one_hot(index: usize, n: usize) -> Result<Tensor> {
        if index >= n {
            return Err(crate::error::TensorError::InvalidArgument(format!(
                "one_hot index {index} out of range {n}"
            )));
        }
        let mut a = Array::zeros(&[n]);
        a.data_mut()[index] = 1.0;
        Ok(Tensor::constant(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_requires_grad_constant_does_not() {
        let p = Tensor::param(Array::scalar(1.0));
        let c = Tensor::constant(Array::scalar(1.0));
        assert!(p.requires_grad());
        assert!(!c.requires_grad());
    }

    #[test]
    fn clone_aliases_same_node() {
        let p = Tensor::param(Array::scalar(5.0));
        let q = p.clone();
        p.update_value(|a| a.data_mut()[0] = 9.0);
        assert_eq!(q.item(), 9.0);
    }

    #[test]
    fn accumulate_grad_adds() {
        let p = Tensor::param(Array::zeros(&[2]));
        p.accumulate_grad(&Array::from_vec(vec![1.0, 2.0], &[2]).unwrap());
        p.accumulate_grad(&Array::from_vec(vec![10.0, 20.0], &[2]).unwrap());
        assert_eq!(p.grad().unwrap().data(), &[11.0, 22.0]);
        p.zero_grad();
        assert!(p.grad().is_none());
    }

    #[test]
    #[should_panic(expected = "gradient shape")]
    fn accumulate_grad_shape_checked() {
        let p = Tensor::param(Array::zeros(&[2]));
        p.accumulate_grad(&Array::zeros(&[3]));
    }

    #[test]
    fn detach_blocks_gradient() {
        let p = Tensor::param(Array::scalar(3.0));
        let d = p.detach();
        assert!(!d.requires_grad());
        assert_eq!(d.item(), 3.0);
    }

    #[test]
    fn one_hot_constructs() {
        let t = Tensor::one_hot(2, 4).unwrap();
        assert_eq!(t.value().data(), &[0.0, 0.0, 1.0, 0.0]);
        assert!(Tensor::one_hot(4, 4).is_err());
    }

    #[test]
    fn debug_is_nonempty() {
        let p = Tensor::param(Array::zeros(&[2, 2]));
        let s = format!("{p:?}");
        assert!(s.contains("Tensor"));
        assert!(s.contains("shape"));
    }

    #[test]
    fn backward_through_diamond_graph() {
        // y = (x + x) uses x twice; dy/dx = 2.
        let x = Tensor::param(Array::scalar(1.5));
        let y = x.add(&x).unwrap();
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 2.0);
    }

    #[test]
    fn gradients_accumulate_across_backwards() {
        let x = Tensor::param(Array::scalar(1.0));
        let y = x.mul_scalar(3.0);
        y.backward();
        let y2 = x.mul_scalar(3.0);
        y2.backward();
        assert_eq!(x.grad().unwrap().item(), 6.0);
    }

    #[test]
    fn deep_chain_does_not_overflow_stack() {
        // 20k-deep chain exercises the iterative topo sort.
        let x = Tensor::param(Array::scalar(0.0));
        let mut y = x.clone();
        for _ in 0..20_000 {
            y = y.add_scalar(1.0);
        }
        y.backward();
        assert_eq!(x.grad().unwrap().item(), 1.0);
        assert_eq!(y.item(), 20_000.0);
    }
}
