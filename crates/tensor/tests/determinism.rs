//! Bitwise determinism across pool sizes: the kernel layer guarantees that
//! every output element is accumulated through the same single
//! ascending-`k` chain (and every reduction through fixed-size chunks) no
//! matter how work is partitioned, so results under 1, 2 and 7 logical
//! threads must be identical to the last bit — forward values and
//! gradients alike — and so must two runs on the same pool.
//!
//! All scenarios live in one `#[test]` because they mutate the global
//! thread-count override; this file is its own test binary, so no other
//! suite races it.

use edd_tensor::kernel::set_num_threads;
use edd_tensor::{gumbel_softmax, Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forward outputs and gradients of a workload touching every pooled code
/// path: conv, dwconv, matmul, batch norm, softmax cross-entropy,
/// Gumbel-Softmax sampling, the fused `add_n` combine, elementwise
/// activations and the chunked `sum` reduction.
fn run_workload() -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(77);
    let x = Tensor::param(Array::randn(&[4, 8, 12, 12], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[16, 8, 3, 3], 0.5, &mut rng));
    let dw = Tensor::param(Array::randn(&[16, 3, 3], 0.5, &mut rng));
    let a = Tensor::param(Array::randn(&[48, 96], 1.0, &mut rng));
    let b = Tensor::param(Array::randn(&[96, 64], 0.5, &mut rng));
    let gamma = Tensor::param(Array::ones(&[16]));
    let beta = Tensor::param(Array::zeros(&[16]));
    let logits = Tensor::param(Array::randn(&[6, 10], 1.0, &mut rng));

    let conv = x.conv2d(&w, None, 1, 1).unwrap();
    let bn = conv.batch_norm2d_train(&gamma, &beta, 1e-5).unwrap();
    let act = bn.output.relu6();
    let dwc = act.dwconv2d(&dw, None, 2, 1).unwrap();
    let mm = a.matmul(&b).unwrap();
    // Mixture-style combine of three transformed views of the same branch.
    let mixed = Tensor::add_n(&[dwc.clone(), dwc.relu(), dwc.mul_scalar(0.5)]).unwrap();
    let gs = gumbel_softmax(&logits, 0.7, true, &mut rng).unwrap();
    let ce = logits.cross_entropy(&[0, 3, 1, 9, 5, 2]).unwrap();
    let loss = mixed
        .square()
        .sum()
        .add(&mm.square().sum())
        .unwrap()
        .add(&gs.sum())
        .unwrap()
        .add(&ce)
        .unwrap();
    loss.backward();

    let bits = |arr: &Array| arr.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    vec![
        bits(&conv.value_clone()),
        bits(&bn.output.value_clone()),
        bits(&dwc.value_clone()),
        bits(&mm.value_clone()),
        bits(&mixed.value_clone()),
        bits(&gs.value_clone()),
        bits(&loss.value_clone()),
        bits(&x.grad().unwrap()),
        bits(&w.grad().unwrap()),
        bits(&dw.grad().unwrap()),
        bits(&a.grad().unwrap()),
        bits(&b.grad().unwrap()),
        bits(&gamma.grad().unwrap()),
        bits(&beta.grad().unwrap()),
        bits(&logits.grad().unwrap()),
    ]
}

const STAGES: [&str; 15] = [
    "conv2d forward",
    "batch-norm forward",
    "dwconv2d forward",
    "matmul forward",
    "add_n mixture forward",
    "gumbel-softmax sample",
    "total loss",
    "conv input grad",
    "conv weight grad",
    "dw weight grad",
    "matmul lhs grad",
    "matmul rhs grad",
    "bn gamma grad",
    "bn beta grad",
    "cross-entropy logits grad",
];

#[test]
fn pool_size_does_not_change_a_single_bit() {
    // Largest pool first so the workers actually exist (and execute tasks)
    // when the smaller logical counts run.
    set_num_threads(7);
    let seven = run_workload();
    let seven_again = run_workload();
    set_num_threads(2);
    let two = run_workload();
    set_num_threads(1);
    let one = run_workload();

    for ((s7, s7b), name) in seven.iter().zip(&seven_again).zip(STAGES) {
        assert_eq!(s7, s7b, "{name} differs between two runs on the same pool");
    }
    for ((s7, s2), name) in seven.iter().zip(&two).zip(STAGES) {
        assert_eq!(s7, s2, "{name} differs between 7 and 2 threads");
    }
    for ((s7, s1), name) in seven.iter().zip(&one).zip(STAGES) {
        assert_eq!(s7, s1, "{name} differs between 7 and 1 threads");
    }
}
