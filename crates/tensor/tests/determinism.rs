//! Bitwise determinism across thread counts: the kernel layer guarantees
//! that every output element is accumulated through the same single
//! ascending-`k` chain no matter how work is partitioned, so results under
//! `EDD_NUM_THREADS=1` and `EDD_NUM_THREADS=4` must be identical to the
//! last bit — forward values and gradients alike.
//!
//! All scenarios live in one `#[test]` because they mutate the process
//! environment; this file is its own test binary, so no other suite races
//! the variable.

use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Forward outputs and gradients of a conv + dwconv + matmul workload,
/// captured as raw bit patterns.
fn run_workload() -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(77);
    let x = Tensor::param(Array::randn(&[4, 8, 12, 12], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[16, 8, 3, 3], 0.5, &mut rng));
    let dw = Tensor::param(Array::randn(&[16, 3, 3], 0.5, &mut rng));
    let a = Tensor::param(Array::randn(&[48, 96], 1.0, &mut rng));
    let b = Tensor::param(Array::randn(&[96, 64], 0.5, &mut rng));

    let conv = x.conv2d(&w, None, 1, 1).unwrap();
    let dwc = conv.dwconv2d(&dw, None, 2, 1).unwrap();
    let mm = a.matmul(&b).unwrap();
    let loss = dwc.square().sum().add(&mm.square().sum()).unwrap();
    loss.backward();

    let bits = |arr: &Array| arr.data().iter().map(|v| v.to_bits()).collect::<Vec<u32>>();
    vec![
        bits(&conv.value_clone()),
        bits(&dwc.value_clone()),
        bits(&mm.value_clone()),
        bits(&x.grad().unwrap()),
        bits(&w.grad().unwrap()),
        bits(&dw.grad().unwrap()),
        bits(&a.grad().unwrap()),
        bits(&b.grad().unwrap()),
    ]
}

#[test]
fn thread_count_does_not_change_a_single_bit() {
    std::env::set_var("EDD_NUM_THREADS", "1");
    let single = run_workload();
    std::env::set_var("EDD_NUM_THREADS", "4");
    let quad = run_workload();
    std::env::remove_var("EDD_NUM_THREADS");

    let names = [
        "conv2d forward",
        "dwconv2d forward",
        "matmul forward",
        "conv input grad",
        "conv weight grad",
        "dw weight grad",
        "matmul lhs grad",
        "matmul rhs grad",
    ];
    for ((s, q), name) in single.iter().zip(&quad).zip(names) {
        assert_eq!(s, q, "{name} differs between 1 and 4 threads");
    }
}
