//! Finite-difference gradient checks routed through the blocked kernel
//! layer: conv2d and depthwise conv (including strided and padded
//! configurations) plus a linear-layer-shaped matmul+bias chain. These
//! guard the transpose-free backward kernels (`matmul_at_b` /
//! `matmul_a_bt`) and the batched conv backward against the analytic
//! gradients drifting from the math.

use edd_tensor::gradcheck::check_gradients;
use edd_tensor::{Array, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const EPS: f32 = 1e-2;
const TOL: f32 = 2e-2;

#[test]
fn conv2d_gradients_unit_stride_with_padding() {
    let mut rng = StdRng::seed_from_u64(21);
    let x = Tensor::param(Array::randn(&[2, 3, 6, 6], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[4, 3, 3, 3], 0.5, &mut rng));
    let b = Tensor::param(Array::randn(&[4], 0.5, &mut rng));
    let (xr, wr, br) = (x.clone(), w.clone(), b.clone());
    let report = check_gradients(
        &[x, w, b],
        move || xr.conv2d(&wr, Some(&br), 1, 1).unwrap().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "conv2d s1 p1 rel error {} (param {}, index {})",
        report.max_rel_error,
        report.worst_param,
        report.worst_index
    );
}

#[test]
fn conv2d_gradients_stride_two() {
    let mut rng = StdRng::seed_from_u64(22);
    let x = Tensor::param(Array::randn(&[2, 2, 7, 7], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[3, 2, 3, 3], 0.5, &mut rng));
    let (xr, wr) = (x.clone(), w.clone());
    let report = check_gradients(
        &[x, w],
        move || xr.conv2d(&wr, None, 2, 1).unwrap().square().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "conv2d s2 p1 rel error {}",
        report.max_rel_error
    );
}

#[test]
fn dwconv2d_gradients_unit_stride_with_padding() {
    let mut rng = StdRng::seed_from_u64(23);
    let x = Tensor::param(Array::randn(&[2, 4, 6, 6], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[4, 3, 3], 0.5, &mut rng));
    let (xr, wr) = (x.clone(), w.clone());
    let report = check_gradients(
        &[x, w],
        move || xr.dwconv2d(&wr, None, 1, 1).unwrap().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "dwconv2d s1 p1 rel error {}",
        report.max_rel_error
    );
}

#[test]
fn dwconv2d_gradients_stride_two() {
    let mut rng = StdRng::seed_from_u64(24);
    let x = Tensor::param(Array::randn(&[3, 3, 7, 7], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[3, 3, 3], 0.5, &mut rng));
    let b = Tensor::param(Array::randn(&[3], 0.5, &mut rng));
    let (xr, wr, br) = (x.clone(), w.clone(), b.clone());
    let report = check_gradients(
        &[x, w, b],
        move || xr.dwconv2d(&wr, Some(&br), 2, 1).unwrap().square().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "dwconv2d s2 p1 rel error {}",
        report.max_rel_error
    );
}

#[test]
fn linear_shaped_matmul_gradients() {
    // y = x W + b, the exact chain `edd_nn::Linear` runs, so the backward
    // exercises both transpose-free GEMM variants and the bias broadcast.
    let mut rng = StdRng::seed_from_u64(25);
    let x = Tensor::param(Array::randn(&[5, 7], 1.0, &mut rng));
    let w = Tensor::param(Array::randn(&[7, 4], 0.5, &mut rng));
    let b = Tensor::param(Array::randn(&[4], 0.5, &mut rng));
    let (xr, wr, br) = (x.clone(), w.clone(), b.clone());
    let report = check_gradients(
        &[x, w, b],
        move || xr.matmul(&wr).unwrap().add(&br).unwrap().square().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "linear chain rel error {}",
        report.max_rel_error
    );
}

#[test]
fn wide_matmul_gradients_cross_tile_boundaries() {
    // Dimensions past one 4x8 register tile so the backward kernels hit
    // their full-tile fast paths, not just the remainder loops.
    let mut rng = StdRng::seed_from_u64(26);
    let a = Tensor::param(Array::randn(&[6, 11], 1.0, &mut rng));
    let b = Tensor::param(Array::randn(&[11, 10], 0.5, &mut rng));
    let (ar, br) = (a.clone(), b.clone());
    let report = check_gradients(
        &[a, b],
        move || ar.matmul(&br).unwrap().square().sum(),
        EPS,
        1,
    );
    assert!(
        report.max_rel_error < TOL,
        "matmul rel error {}",
        report.max_rel_error
    );
}
