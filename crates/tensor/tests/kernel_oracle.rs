//! Oracle tests for the blocked GEMM kernel layer: the register-tiled,
//! optionally multi-threaded kernels in [`edd_tensor::kernel`] must agree
//! with the scalar reference implementation (`matmul_naive`) across
//! randomized shapes, including the degenerate ones (`k = 0`, `m = 1`,
//! `n = 1`) that exercise the tile-remainder and empty-contraction paths.

use edd_tensor::kernel;
use edd_tensor::Array;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[-1, 1]`; magnitudes near 1 keep the relative
/// tolerance meaningful regardless of the contraction depth.
fn rand_vec(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

/// Asserts elementwise agreement within a 1e-4 relative tolerance
/// (absolute for results near zero).
fn assert_close(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4f32 * w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= tol,
            "{}: element {} differs: got {}, want {} (tol {})",
            what,
            i,
            g,
            w,
            tol
        );
    }
    Ok(())
}

/// Explicit transpose of a row-major `[r, c]` matrix to `[c, r]`.
fn transpose(data: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = data[i * c + j];
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn blocked_matmul_matches_naive(
        m in 1usize..=13,
        k in 0usize..=33,
        n in 1usize..=17,
        threads in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let want = kernel::matmul_naive(&a, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        kernel::matmul_into_threads(&mut got, &a, &b, m, k, n, threads);
        assert_close(&got, &want, "matmul")?;
    }

    #[test]
    fn at_b_matches_naive_on_explicit_transpose(
        m in 1usize..=13,
        k in 0usize..=33,
        n in 1usize..=17,
        threads in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // `a_t` is stored [k, m]; the kernel contracts it as Aᵀ·B without
        // materializing the transpose. The oracle does materialize it.
        let a_t = rand_vec(k * m, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let a = transpose(&a_t, k, m);
        let want = kernel::matmul_naive(&a, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        kernel::matmul_at_b_into_threads(&mut got, &a_t, &b, k, m, n, threads);
        assert_close(&got, &want, "at_b")?;
    }

    #[test]
    fn a_bt_matches_naive_on_explicit_transpose(
        m in 1usize..=13,
        k in 0usize..=33,
        n in 1usize..=17,
        threads in 1usize..=4,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        // `b_t` is stored [n, k]; the kernel contracts it as A·Bᵀ.
        let a = rand_vec(m * k, &mut rng);
        let b_t = rand_vec(n * k, &mut rng);
        let b = transpose(&b_t, n, k);
        let want = kernel::matmul_naive(&a, &b, m, k, n);
        let mut got = vec![f32::NAN; m * n];
        kernel::matmul_a_bt_into_threads(&mut got, &a, &b_t, m, k, n, threads);
        assert_close(&got, &want, "a_bt")?;
    }

    #[test]
    fn array_matmul_variants_match_naive(
        m in 1usize..=9,
        k in 1usize..=17,
        n in 1usize..=9,
        seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[m, k], 1.0, &mut rng);
        let b = Array::randn(&[k, n], 1.0, &mut rng);
        let want = a.matmul_naive(&b).unwrap();
        assert_close(a.matmul(&b).unwrap().data(), want.data(), "Array::matmul")?;
        let a_t = a.transpose2d().unwrap();
        assert_close(a_t.matmul_at_b(&b).unwrap().data(), want.data(), "Array::matmul_at_b")?;
        let b_t = b.transpose2d().unwrap();
        assert_close(a.matmul_a_bt(&b_t).unwrap().data(), want.data(), "Array::matmul_a_bt")?;
    }
}

/// Pinned edge shapes the random ranges may only hit rarely: empty
/// contractions, single rows/columns, and sizes straddling the 4x8 tile.
#[test]
fn edge_shapes_match_naive_at_every_thread_count() {
    let shapes = [
        (1, 0, 1),
        (1, 1, 1),
        (2, 0, 5),
        (1, 8, 1),
        (1, 7, 9),
        (13, 9, 1),
        (4, 8, 4),
        (5, 3, 7),
        (9, 16, 33),
        (12, 1, 12),
        (16, 32, 24),
    ];
    let mut rng = StdRng::seed_from_u64(0xedd);
    for &(m, k, n) in &shapes {
        let a = rand_vec(m * k, &mut rng);
        let b = rand_vec(k * n, &mut rng);
        let want = kernel::matmul_naive(&a, &b, m, k, n);
        let a_t = transpose(&a, m, k);
        let b_t = transpose(&b, k, n);
        for threads in 1..=4 {
            let mut got = vec![f32::NAN; m * n];
            kernel::matmul_into_threads(&mut got, &a, &b, m, k, n, threads);
            let mut got_at_b = vec![f32::NAN; m * n];
            kernel::matmul_at_b_into_threads(&mut got_at_b, &a_t, &b, k, m, n, threads);
            let mut got_a_bt = vec![f32::NAN; m * n];
            kernel::matmul_a_bt_into_threads(&mut got_a_bt, &a, &b_t, m, k, n, threads);
            for (which, got) in [("matmul", &got), ("at_b", &got_at_b), ("a_bt", &got_a_bt)] {
                for (g, w) in got.iter().zip(&want) {
                    assert!(
                        (g - w).abs() <= 1e-4 * w.abs().max(1.0),
                        "{which} ({m},{k},{n}) threads={threads}: got {g}, want {w}"
                    );
                }
            }
        }
    }
}
