//! Property-based tests for the autodiff engine: algebraic identities of
//! `Array`, gradient correctness of composite expressions, and invariants of
//! softmax / Gumbel-Softmax / Log-Sum-Exp.

use edd_tensor::gradcheck::check_gradients;
use edd_tensor::{gumbel_softmax, softmax_last_axis, Array, Tensor};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a small non-empty shape (rank 1..=3, dims 1..=5).
fn small_shape() -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(1usize..=5, 1..=3)
}

/// Strategy: an array with the given element count, values in [-3, 3].
fn values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-3.0f32..3.0, n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_commutes(shape in small_shape(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&shape, 1.0, &mut rng);
        let b = Array::randn(&shape, 1.0, &mut rng);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn mul_distributes_over_add(n in 1usize..20, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[n], 1.0, &mut rng);
        let b = Array::randn(&[n], 1.0, &mut rng);
        let c = Array::randn(&[n], 1.0, &mut rng);
        let lhs = a.mul(&b.add(&c).unwrap()).unwrap();
        let rhs = a.mul(&b).unwrap().add(&a.mul(&c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn broadcast_matches_manual_expansion(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        // [rows, cols] + [cols] == row-by-row addition.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[rows, cols], 1.0, &mut rng);
        let b = Array::randn(&[cols], 1.0, &mut rng);
        let c = a.add(&b).unwrap();
        for r in 0..rows {
            for j in 0..cols {
                let expect = a.data()[r * cols + j] + b.data()[j];
                prop_assert!((c.data()[r * cols + j] - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn matmul_associates_with_scalar(m in 1usize..4, k in 1usize..4, n in 1usize..4, s in -2.0f32..2.0, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[m, k], 1.0, &mut rng);
        let b = Array::randn(&[k, n], 1.0, &mut rng);
        let lhs = a.map(|v| v * s).matmul(&b).unwrap();
        let rhs = a.matmul(&b).unwrap().map(|v| v * s);
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_involution(m in 1usize..6, n in 1usize..6, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[m, n], 1.0, &mut rng);
        prop_assert_eq!(a.transpose2d().unwrap().transpose2d().unwrap(), a);
    }

    #[test]
    fn sum_axis_preserves_total(shape in prop::collection::vec(1usize..5, 2..4), axis_pick in 0usize..10, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let axis = axis_pick % shape.len();
        let a = Array::randn(&shape, 1.0, &mut rng);
        let s = a.sum_axis(axis).unwrap();
        prop_assert!((s.sum() - a.sum()).abs() < 1e-3);
    }

    #[test]
    fn softmax_is_distribution(cols in 1usize..8, vals in prop::collection::vec(-10.0f32..10.0, 8)) {
        let v: Vec<f32> = vals.into_iter().take(cols).collect();
        let n = v.len();
        let a = Array::from_vec(v, &[n]).unwrap();
        let s = softmax_last_axis(&a);
        prop_assert!((s.data().iter().sum::<f32>() - 1.0).abs() < 1e-5);
        prop_assert!(s.data().iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn logsumexp_bounds(n in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Array::randn(&[n], 3.0, &mut rng);
        let t = Tensor::constant(a.clone());
        let lse = t.logsumexp().item();
        let max = a.max();
        prop_assert!(lse >= max - 1e-4, "lse {} < max {}", lse, max);
        prop_assert!(lse <= max + (n as f32).ln() + 1e-4);
    }

    #[test]
    fn gumbel_hard_always_one_hot(m in 2usize..8, tau in 0.2f32..3.0, seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::param(Array::randn(&[m], 1.0, &mut rng));
        let y = gumbel_softmax(&logits, tau, true, &mut rng).unwrap();
        let v = y.value_clone();
        let ones = v.data().iter().filter(|&&x| (x - 1.0).abs() < 1e-5).count();
        prop_assert_eq!(ones, 1);
        prop_assert!((v.sum() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn gradcheck_random_composite(seed in 0u64..200) {
        // Random smooth composite expression of two parameters.
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::param(Array::randn(&[2, 3], 0.5, &mut rng));
        let b = Tensor::param(Array::randn(&[3], 0.5, &mut rng));
        let (ar, br) = (a.clone(), b.clone());
        let report = check_gradients(
            &[a, b],
            move || {
                ar.add(&br)
                    .unwrap()
                    .tanh()
                    .mul(&ar)
                    .unwrap()
                    .sigmoid()
                    .sum()
            },
            1e-2,
            1,
        );
        prop_assert!(report.max_rel_error < 3e-2, "report {:?}", report);
    }

    #[test]
    fn reduce_to_preserves_mass(rows in 1usize..5, cols in 1usize..5, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Array::randn(&[rows, cols], 1.0, &mut rng);
        let r = g.reduce_to(&[cols]).unwrap();
        prop_assert!((r.sum() - g.sum()).abs() < 1e-3);
    }

    #[test]
    fn fake_quantize_idempotent(bits in 2u32..9, seed in 0u64..1000) {
        // Quantizing an already-quantized tensor is a no-op.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::constant(Array::randn(&[16], 0.5, &mut rng));
        let q1 = x.fake_quantize(bits, 1.0);
        let q2 = q1.fake_quantize(bits, 1.0);
        for (a, b) in q1.value().data().iter().zip(q2.value().data()) {
            prop_assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn values_strategy_sane(v in values(4)) {
        prop_assert!(v.iter().all(|x| x.abs() <= 3.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concat_then_narrow_recovers_parts(
        rows_a in 1usize..4,
        rows_b in 1usize..4,
        cols in 1usize..5,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Tensor::constant(Array::randn(&[rows_a, cols], 1.0, &mut rng));
        let b = Tensor::constant(Array::randn(&[rows_b, cols], 1.0, &mut rng));
        let c = Tensor::concat(&[a.clone(), b.clone()], 0).unwrap();
        let a2 = c.narrow(0, 0, rows_a).unwrap().value_clone();
        let b2 = c.narrow(0, rows_a, rows_b).unwrap().value_clone();
        let av = a.value_clone();
        let bv = b.value_clone();
        prop_assert_eq!(a2.data(), av.data());
        prop_assert_eq!(b2.data(), bv.data());
    }

    #[test]
    fn pad_preserves_mass_and_roundtrips(
        b in 1usize..3,
        c in 1usize..3,
        hw in 2usize..6,
        pad in 1usize..3,
        seed in 0u64..500,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::constant(Array::randn(&[b, c, hw, hw], 1.0, &mut rng));
        let p = x.pad2d(pad).unwrap();
        let (ps, xs) = (p.value_clone().sum(), x.value_clone().sum());
        prop_assert!((ps - xs).abs() < 1e-3);
        prop_assert_eq!(p.shape(), vec![b, c, hw + 2 * pad, hw + 2 * pad]);
    }

    #[test]
    fn conv_gradcheck_random_geometry(
        cin in 1usize..3,
        cout in 1usize..3,
        k in prop::sample::select(vec![1usize, 3]),
        stride in 1usize..3,
        seed in 0u64..60,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let hw = 5usize;
        let x = Tensor::param(Array::randn(&[1, cin, hw, hw], 0.8, &mut rng));
        let w = Tensor::param(Array::randn(&[cout, cin, k, k], 0.5, &mut rng));
        let (xr, wr) = (x.clone(), w.clone());
        let report = check_gradients(
            &[x, w],
            move || xr.conv2d(&wr, None, stride, k / 2).unwrap().square().sum(),
            1e-2,
            3,
        );
        prop_assert!(report.max_rel_error < 5e-2, "{:?}", report);
    }

    #[test]
    fn smooth_ce_gradcheck(
        classes in 2usize..6,
        eps_pct in 0u32..40,
        seed in 0u64..100,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::param(Array::randn(&[2, classes], 1.0, &mut rng));
        let labels = vec![0usize, classes - 1];
        let epsilon = eps_pct as f32 / 100.0;
        let lr = logits.clone();
        let report = check_gradients(
            &[logits],
            move || lr.cross_entropy_smooth(&labels, epsilon).unwrap(),
            1e-2,
            1,
        );
        prop_assert!(report.max_rel_error < 3e-2, "{:?}", report);
    }

    #[test]
    fn swish_gradcheck(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::param(Array::randn(&[8], 1.5, &mut rng));
        let xr = x.clone();
        let report = check_gradients(&[x], move || xr.swish().sum(), 1e-2, 1);
        prop_assert!(report.max_rel_error < 2e-2, "{:?}", report);
    }

    #[test]
    fn dropout_free_ops_preserve_batch_independence(
        batch in 1usize..4,
        seed in 0u64..200,
    ) {
        // Convolution of a batch equals per-item convolution: no cross-batch
        // leakage.
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Array::randn(&[batch, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::constant(Array::randn(&[3, 2, 3, 3], 0.5, &mut rng));
        let full = Tensor::constant(x.clone())
            .conv2d(&w, None, 1, 1)
            .unwrap()
            .value_clone();
        for bi in 0..batch {
            let item = Array::from_vec(
                x.data()[bi * 32..(bi + 1) * 32].to_vec(),
                &[1, 2, 4, 4],
            )
            .unwrap();
            let single = Tensor::constant(item)
                .conv2d(&w, None, 1, 1)
                .unwrap()
                .value_clone();
            let plane = single.len();
            for (a, b) in single
                .data()
                .iter()
                .zip(&full.data()[bi * plane..(bi + 1) * plane])
            {
                prop_assert!((a - b).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn scratch_arena_buffers_never_overlap_and_stay_aligned(
        ops in prop::collection::vec((0usize..4, 1usize..600), 1..80),
    ) {
        // Random interleaving of alloc / alloc_zeroed / drop / full-drain +
        // reset against the thread-local arena: every live buffer must be
        // 32-byte aligned and pairwise disjoint, zeroed allocations must
        // actually be zero (the arena recycles dirty memory), and writes
        // through one handle must never show up in another.
        use edd_tensor::scratch;
        let mut live: Vec<(scratch::ScratchBuf, f32)> = Vec::new();
        let mut stamp = 1.0f32;
        for (op, len) in ops {
            match op {
                0 | 1 => {
                    let mut buf = if op == 0 {
                        scratch::alloc(len)
                    } else {
                        let b = scratch::alloc_zeroed(len);
                        prop_assert!(b.iter().all(|&v| v == 0.0), "alloc_zeroed dirty");
                        b
                    };
                    prop_assert_eq!(buf.len(), len);
                    prop_assert_eq!(buf.as_ptr() as usize % 32, 0, "misaligned");
                    let lo = buf.as_ptr() as usize;
                    let hi = lo + len * 4;
                    for (other, _) in &live {
                        let olo = other.as_ptr() as usize;
                        let ohi = olo + other.len() * 4;
                        prop_assert!(hi <= olo || ohi <= lo, "overlapping live buffers");
                    }
                    buf.fill(stamp);
                    live.push((buf, stamp));
                    stamp += 1.0;
                }
                2 => {
                    if !live.is_empty() {
                        live.swap_remove(len % live.len());
                    }
                }
                _ => {
                    live.clear();
                    scratch::reset();
                }
            }
            // Writes through one handle never leak into another.
            for (buf, expect) in &live {
                prop_assert!(buf.iter().all(|&v| v == *expect), "buffer clobbered");
            }
        }
        live.clear();
        scratch::reset();
    }
}
