//! Bitwise determinism of the integer qkernel layer: quantized GEMM output
//! rows are partitioned across the pool but every `i32` accumulator is the
//! same single ascending-`k` chain regardless of partitioning — and integer
//! addition is associative anyway — so int8/int4 inference must produce
//! byte-identical results under 1, 2 and 7 logical threads, and under any
//! `EDD_SIMD` mode (the CI determinism matrix re-runs this binary with
//! `EDD_SIMD=scalar` and `EDD_SIMD=avx2` and both legs must pass the same
//! assertions; in-process scalar-vs-dispatched equality is covered by the
//! qkernel unit tests).
//!
//! All scenarios live in one `#[test]` because they mutate the global
//! thread-count override; this file is its own test binary, so no other
//! suite races it.

use edd_tensor::kernel::set_num_threads;
use edd_tensor::qkernel::{
    pack_i4, qdw_plane_into, qim2col_into, qmatmul_into, requantize_rows_into, unpack_i4_into,
    Requant,
};
use edd_tensor::Conv2dGeometry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic pseudo-random int8 buffer (full `[-127, 127]` range).
fn qdata(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(-127i32..=127) as i8)
        .collect()
}

/// One pass over every quantized inference primitive, sized so the GEMM
/// crosses the `QPAR_MIN_MACS` threshold and actually fans out on the pool:
/// int4 pack/unpack round-trip, qim2col lowering, the threaded qmatmul,
/// per-row fixed-point requantization and the depthwise stencil.
fn run_workload() -> (Vec<i8>, Vec<i32>, Vec<i8>, Vec<i32>) {
    // int4 weights, bit-packed then unpacked exactly as QWeights does per
    // forward call.
    let (m, k, n) = (64usize, 128, 64);
    let w4: Vec<i8> = qdata(m * k, 11)
        .iter()
        .map(|&v| (v / 16).clamp(-7, 7))
        .collect();
    let packed = pack_i4(&w4);
    let mut weights = vec![0i8; m * k];
    unpack_i4_into(&mut weights, &packed);
    assert_eq!(weights, w4, "int4 pack/unpack must round-trip exactly");

    // Quantized im2col + GEMM: 64×128 · 128×64 = 524k MACs > QPAR_MIN_MACS.
    let geom = Conv2dGeometry {
        in_channels: 8,
        in_h: 16,
        in_w: 16,
        kernel: 4,
        stride: 2,
        padding: 1,
    };
    let image = qdata(geom.in_channels * geom.in_h * geom.in_w, 22);
    let cols_len = geom.in_channels * geom.kernel * geom.kernel * geom.out_h() * geom.out_w();
    let mut cols = vec![0i8; cols_len];
    qim2col_into(&mut cols, &image, &geom);
    assert_eq!(cols_len, k * n, "workload geometry must feed the GEMM");

    let mut acc = vec![0i32; m * n];
    qmatmul_into(&mut acc, &weights, &cols, m, k, n);

    // Per-row requantization with varied multipliers, fused-ReLU6 clamp.
    let per_row: Vec<Requant> = (0..m)
        .map(|r| Requant::from_scale(0.5 + r as f64 * 1e-3))
        .collect();
    let mut out = vec![0i8; m * n];
    requantize_rows_into(&mut out, &acc, &per_row, n, 0, 127);

    // Depthwise stencil over one padded stride-1 plane.
    let dw_geom = Conv2dGeometry {
        in_channels: 1,
        in_h: 12,
        in_w: 12,
        kernel: 3,
        stride: 1,
        padding: 1,
    };
    let plane = qdata(dw_geom.in_h * dw_geom.in_w, 33);
    let taps = qdata(9, 44);
    let mut dw = vec![0i32; dw_geom.out_h() * dw_geom.out_w()];
    qdw_plane_into(&mut dw, &plane, &taps, &dw_geom);

    (cols, acc, out, dw)
}

#[test]
fn pool_size_does_not_change_a_single_byte() {
    // Largest pool first so the workers actually exist (and execute tasks)
    // when the smaller logical counts run.
    set_num_threads(7);
    let seven = run_workload();
    let seven_again = run_workload();
    set_num_threads(2);
    let two = run_workload();
    set_num_threads(1);
    let one = run_workload();

    assert_eq!(
        seven, seven_again,
        "qkernel differs between two runs on the same pool"
    );
    assert_eq!(seven, two, "qkernel differs between 7 and 2 threads");
    assert_eq!(seven, one, "qkernel differs between 7 and 1 threads");
}
