//! Property tests for the integer kernel substrate: bitwise-exact GEMM
//! partitioning across explicit thread counts, int4 pack/unpack
//! round-trips, and the fixed-point requantizer against its real-valued
//! reference — over randomly drawn shapes, values and scales.

use edd_tensor::qkernel::{pack_i4, qmatmul_into_threads, unpack_i4_into, Requant};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn qdata(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(-127i32..=127) as i8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn qmatmul_partitioning_is_bitwise_exact(
        m in 1usize..24,
        k in 1usize..32,
        n in 1usize..24,
        threads in 2usize..6,
        seed in 0u64..1000,
    ) {
        let a = qdata(m * k, seed);
        let b = qdata(k * n, seed ^ 0xBEEF);
        let mut serial = vec![0i32; m * n];
        qmatmul_into_threads(&mut serial, &a, &b, m, k, n, 1);
        let mut parallel = vec![0i32; m * n];
        qmatmul_into_threads(&mut parallel, &a, &b, m, k, n, threads);
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn int4_pack_unpack_round_trips(
        vals in prop::collection::vec(-7i8..=7, 1..64),
    ) {
        let packed = pack_i4(&vals);
        prop_assert_eq!(packed.len(), vals.len().div_ceil(2));
        let mut back = vec![0i8; vals.len()];
        unpack_i4_into(&mut back, &packed);
        prop_assert_eq!(back, vals);
    }

    #[test]
    fn requant_tracks_real_valued_reference(
        scale in 1e-6f64..2.0,
        acc in -1_000_000i32..1_000_000,
    ) {
        let rq = Requant::from_scale(scale);
        let got = rq.apply(acc);
        let want = (f64::from(acc) * scale).round();
        // The q31 multiplier quantizes the scale itself, so allow one ulp
        // of the output grid on top of the rounding tie.
        prop_assert!(
            (f64::from(got) - want).abs() <= 1.0,
            "acc {} * scale {} -> {} (reference {})", acc, scale, got, want
        );
    }
}
