//! Property tests for the shape-specialized GEMM layer: every selector
//! class (vecmat / skinny-N / square / conv) driven through the public
//! matmul fronts against the scalar reference, and the prepacked int8
//! panel path against `qmatmul_naive` **bitwise** — integer arithmetic
//! makes that equality exact, while the f32 blueprints are held to the
//! same relative tolerance as the generic-kernel oracle tests (SIMD FMA
//! reassociates) plus bitwise invariance across thread counts.

use edd_tensor::kernel::pack::{
    pack_lhs_i8, pack_rhs_i8, packed_lhs_len, packed_rhs_len, padded_k,
};
use edd_tensor::kernel::select::{classify, GemmClass};
use edd_tensor::kernel::{matmul_conv_into_threads, matmul_into_threads, matmul_naive};
use edd_tensor::qkernel::{qmatmul_into, qmatmul_naive, qmatmul_prepacked_into_threads};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn rand_f32(len: usize, rng: &mut StdRng) -> Vec<f32> {
    (0..len).map(|_| rng.gen_range(-1.0f32..1.0)).collect()
}

fn rand_i8(len: usize, seed: u64) -> Vec<i8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| rng.gen_range(-127i32..=127) as i8)
        .collect()
}

/// Elementwise agreement within the oracle suite's 1e-4 relative
/// tolerance (absolute near zero).
fn assert_close(got: &[f32], want: &[f32], what: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(got.len(), want.len(), "{}: length mismatch", what);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4f32 * w.abs().max(1.0);
        prop_assert!(
            (g - w).abs() <= tol,
            "{}: element {} differs: got {}, want {} (tol {})",
            what,
            i,
            g,
            w,
            tol
        );
    }
    Ok(())
}

/// Runs one f32 shape through the selected front, checks the drawn shape
/// really lands in `class` (so threshold drift can't silently hollow out
/// the coverage), compares against `matmul_naive`, and pins bitwise
/// equality between the single-threaded and `threads`-way partitionings.
fn check_f32_class(
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
    seed: u64,
    class: GemmClass,
) -> Result<(), TestCaseError> {
    let conv = class == GemmClass::Conv;
    prop_assert_eq!(classify(m, n, conv), class, "shape fell out of class");
    let mut rng = StdRng::seed_from_u64(seed);
    let a = rand_f32(m * k, &mut rng);
    let b = rand_f32(k * n, &mut rng);
    let run = |t: usize| {
        let mut out = vec![0.0f32; m * n];
        if conv {
            matmul_conv_into_threads(&mut out, &a, &b, m, k, n, t);
        } else {
            matmul_into_threads(&mut out, &a, &b, m, k, n, t);
        }
        out
    };
    let serial = run(1);
    assert_close(&serial, &matmul_naive(&a, &b, m, k, n), "vs naive")?;
    let parallel = run(threads);
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
    prop_assert_eq!(bits(&serial), bits(&parallel), "threads changed bits");
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn vecmat_blueprint_matches_naive(
        m in 1usize..4,      // m < MR = 4
        k in 0usize..48,
        n in 1usize..48,
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_f32_class(m, k, n, threads, seed, GemmClass::VecMat)?;
    }

    #[test]
    fn skinny_n_blueprint_matches_naive(
        m in 4usize..28,
        k in 0usize..48,
        n in 1usize..8,      // n < NR = 8
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_f32_class(m, k, n, threads, seed, GemmClass::SkinnyN)?;
    }

    #[test]
    fn square_blueprint_matches_naive(
        m in 4usize..28,
        k in 0usize..48,
        n in 8usize..40,
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_f32_class(m, k, n, threads, seed, GemmClass::Square)?;
    }

    #[test]
    fn conv_blueprint_matches_naive(
        m in 1usize..28,
        k in 0usize..48,
        n in 1usize..40,
        threads in 2usize..5,
        seed in 0u64..1000,
    ) {
        check_f32_class(m, k, n, threads, seed, GemmClass::Conv)?;
    }

    /// The prepacked panel path (pack_lhs_i8 + pack_rhs_i8 feeding the
    /// maddubs kernel) equals `qmatmul_naive` on the unpadded operands
    /// bitwise, for any shape and thread count.
    #[test]
    fn qmatmul_prepacked_matches_naive_bitwise(
        m in 1usize..24,
        k in 0usize..40,
        n in 1usize..28,
        threads in 1usize..5,
        seed in 0u64..1000,
    ) {
        let a = rand_i8(m * k, seed);
        let b = rand_i8(k * n, seed ^ 0xF00D);
        let mut a_packed = vec![0i8; packed_lhs_len(m, k)];
        pack_lhs_i8(&mut a_packed, &a, m, k);
        let mut b_panels = vec![0i8; packed_rhs_len(k, n)];
        pack_rhs_i8(&mut b_panels, &b, k, n);
        let mut got = vec![0i32; m * n];
        qmatmul_prepacked_into_threads(&mut got, &a_packed, &b_panels, m, k, n, threads);
        prop_assert_eq!(got, qmatmul_naive(&a, &b, m, k, n));
    }

    /// The generic-kernel leg the quantized layers take when selection is
    /// pinned off: k4-padded dense LHS rows (the same `pack_lhs_i8`
    /// layout the prepacked path uses) against a RHS whose rows are
    /// zero-extended to `padded_k(k)`. Zero taps contribute zero, so the
    /// padded GEMM equals the unpadded naive product bitwise.
    #[test]
    fn qmatmul_on_k4_padded_operands_matches_naive_bitwise(
        m in 1usize..24,
        k in 1usize..40,
        n in 1usize..28,
        seed in 0u64..1000,
    ) {
        let a = rand_i8(m * k, seed);
        let b = rand_i8(k * n, seed ^ 0xBEE5);
        let k4 = padded_k(k);
        let mut a_k4 = vec![0i8; packed_lhs_len(m, k)];
        pack_lhs_i8(&mut a_k4, &a, m, k);
        let mut b_k4 = vec![0i8; k4 * n];
        b_k4[..k * n].copy_from_slice(&b);
        let mut got = vec![0i32; m * n];
        qmatmul_into(&mut got, &a_k4, &b_k4, m, k4, n);
        prop_assert_eq!(got, qmatmul_naive(&a, &b, m, k, n));
    }
}
