//! Shape descriptions of the comparison networks of paper Tables 1 and 3.
//!
//! The classic nets (GoogleNet, MobileNet-V2, ShuffleNet-V2, ResNet18,
//! VGG16) follow their published configurations exactly. The hardware-aware
//! NAS nets (MnasNet-A1, FBNet-C, the three ProxylessNAS variants) follow
//! the block tables of their papers, with squeeze-excite modules omitted
//! (they contribute negligibly to MACs and are not modeled by Eq. 12).

use crate::builders::ShapeBuilder;
use edd_hw::shapes::NetworkShape;

/// MobileNet-V2 (1.0×, 224²) — Sandler et al., CVPR 2018.
#[must_use]
pub fn mobilenet_v2() -> NetworkShape {
    let mut b = ShapeBuilder::new("MobileNet-V2", 224, 3)
        .conv("stem", 3, 32, 2)
        .mbconv(3, 1, 16, 1);
    // (expansion, channels, repeats, first-stride)
    for &(e, c, n, s) in &[
        (6, 24, 2, 2),
        (6, 32, 3, 2),
        (6, 64, 4, 2),
        (6, 96, 3, 1),
        (6, 160, 3, 2),
        (6, 320, 1, 1),
    ] {
        for i in 0..n {
            b = b.mbconv(3, e, c, if i == 0 { s } else { 1 });
        }
    }
    b.conv("head", 1, 1280, 1).linear("fc", 1000).build()
}

/// ResNet-18 (224²) — He et al., CVPR 2016.
#[must_use]
pub fn resnet18() -> NetworkShape {
    let mut b = ShapeBuilder::new("ResNet18", 224, 3)
        .conv("stem", 7, 64, 2)
        .pool("maxpool", 2);
    for &(c, s) in &[
        (64, 1),
        (64, 1),
        (128, 2),
        (128, 1),
        (256, 2),
        (256, 1),
        (512, 2),
        (512, 1),
    ] {
        b = b.basic_block(c, s);
    }
    b.linear("fc", 1000).build()
}

/// GoogLeNet (Inception v1, 224²) — Szegedy et al., CVPR 2015.
#[must_use]
pub fn googlenet() -> NetworkShape {
    ShapeBuilder::new("GoogleNet", 224, 3)
        .conv("stem7x7", 7, 64, 2)
        .pool("pool1", 2)
        .conv("reduce", 1, 64, 1)
        .conv("conv3x3", 3, 192, 1)
        .pool("pool2", 2)
        .inception("3a", 64, 96, 128, 16, 32, 32)
        .inception("3b", 128, 128, 192, 32, 96, 64)
        .pool("pool3", 2)
        .inception("4a", 192, 96, 208, 16, 48, 64)
        .inception("4b", 160, 112, 224, 24, 64, 64)
        .inception("4c", 128, 128, 256, 24, 64, 64)
        .inception("4d", 112, 144, 288, 32, 64, 64)
        .inception("4e", 256, 160, 320, 32, 128, 128)
        .pool("pool4", 2)
        .inception("5a", 256, 160, 320, 32, 128, 128)
        .inception("5b", 384, 192, 384, 48, 128, 128)
        .linear("fc", 1000)
        .build()
}

/// ShuffleNet-V2 1.0× (224²) — Ma et al., ECCV 2018.
#[must_use]
pub fn shufflenet_v2() -> NetworkShape {
    let mut b = ShapeBuilder::new("ShuffleNet-V2", 224, 3)
        .conv("stem", 3, 24, 2)
        .pool("maxpool", 2);
    for &(c, n) in &[(116, 4), (232, 8), (464, 4)] {
        for i in 0..n {
            b = b.shuffle_unit(c, if i == 0 { 2 } else { 1 });
        }
    }
    b.conv("head", 1, 1024, 1).linear("fc", 1000).build()
}

/// VGG-16 (224²) — Simonyan & Zisserman, ICLR 2015. The DNNBuilder baseline
/// of paper Table 3.
#[must_use]
pub fn vgg16() -> NetworkShape {
    ShapeBuilder::new("VGG16", 224, 3)
        .conv("conv1_1", 3, 64, 1)
        .conv("conv1_2", 3, 64, 1)
        .pool("pool1", 2)
        .conv("conv2_1", 3, 128, 1)
        .conv("conv2_2", 3, 128, 1)
        .pool("pool2", 2)
        .conv("conv3_1", 3, 256, 1)
        .conv("conv3_2", 3, 256, 1)
        .conv("conv3_3", 3, 256, 1)
        .pool("pool3", 2)
        .conv("conv4_1", 3, 512, 1)
        .conv("conv4_2", 3, 512, 1)
        .conv("conv4_3", 3, 512, 1)
        .pool("pool4", 2)
        .conv("conv5_1", 3, 512, 1)
        .conv("conv5_2", 3, 512, 1)
        .conv("conv5_3", 3, 512, 1)
        .pool("pool5", 2)
        .linear_flatten("fc6", 4096)
        .linear("fc7", 4096)
        .linear("fc8", 1000)
        .build()
}

/// MnasNet-A1 (224²) — Tan et al., CVPR 2019 (squeeze-excite omitted).
#[must_use]
pub fn mnasnet_a1() -> NetworkShape {
    let mut b = ShapeBuilder::new("MnasNet-A1", 224, 3)
        .conv("stem", 3, 32, 2)
        .sepconv(3, 16, 1);
    for &(e, k, c, n, s) in &[
        (6, 3, 24, 2, 2),
        (3, 5, 40, 3, 2),
        (6, 3, 80, 4, 2),
        (6, 3, 112, 2, 1),
        (6, 5, 160, 3, 2),
        (6, 3, 320, 1, 1),
    ] {
        for i in 0..n {
            b = b.mbconv(k, e, c, if i == 0 { s } else { 1 });
        }
    }
    b.conv("head", 1, 1280, 1).linear("fc", 1000).build()
}

/// FBNet-C (224²) — Wu et al., CVPR 2019, per-block config from the paper's
/// searched architecture table.
#[must_use]
pub fn fbnet_c() -> NetworkShape {
    let mut b = ShapeBuilder::new("FBNet-C", 224, 3)
        .conv("stem", 3, 16, 2)
        .mbconv(3, 1, 16, 1);
    // (expansion, kernel, channels, stride)
    for &(e, k, c, s) in &[
        (6, 3, 24, 2),
        (1, 3, 24, 1),
        (1, 3, 24, 1),
        (6, 3, 24, 1),
        (6, 5, 32, 2),
        (3, 5, 32, 1),
        (6, 5, 32, 1),
        (6, 3, 32, 1),
        (6, 5, 64, 2),
        (3, 5, 64, 1),
        (6, 5, 64, 1),
        (6, 5, 64, 1),
        (6, 3, 112, 1),
        (6, 5, 112, 1),
        (6, 5, 112, 1),
        (3, 5, 112, 1),
        (6, 5, 184, 2),
        (6, 5, 184, 1),
        (6, 5, 184, 1),
        (6, 5, 184, 1),
        (6, 3, 352, 1),
    ] {
        b = b.mbconv(k, e, c, s);
    }
    b.conv("head", 1, 1984, 1).linear("fc", 1000).build()
}

/// ProxylessNAS-GPU (224²) — Cai et al., ICLR 2019. The GPU-specialized
/// variant is shallow and wide.
#[must_use]
pub fn proxyless_gpu() -> NetworkShape {
    let mut b = ShapeBuilder::new("Proxyless-gpu", 224, 3)
        .conv("stem", 3, 40, 2)
        .mbconv(3, 1, 24, 1);
    for &(e, k, c, s) in &[
        (6, 5, 32, 2),
        (3, 3, 32, 1),
        (6, 7, 56, 2),
        (3, 3, 56, 1),
        (6, 7, 112, 2),
        (3, 5, 112, 1),
        (6, 5, 128, 1),
        (3, 5, 128, 1),
        (6, 7, 256, 2),
        (6, 7, 256, 1),
        (6, 7, 256, 1),
        (6, 5, 432, 1),
    ] {
        b = b.mbconv(k, e, c, s);
    }
    b.conv("head", 1, 1728, 1).linear("fc", 1000).build()
}

/// ProxylessNAS-Mobile (224²) — deeper, narrower, mixed kernels.
#[must_use]
pub fn proxyless_mobile() -> NetworkShape {
    let mut b = ShapeBuilder::new("Proxyless-Mobile", 224, 3)
        .conv("stem", 3, 32, 2)
        .mbconv(3, 1, 16, 1);
    for &(e, k, c, s) in &[
        (3, 5, 24, 2),
        (3, 3, 24, 1),
        (3, 3, 24, 1),
        (3, 3, 24, 1),
        (3, 7, 40, 2),
        (3, 3, 40, 1),
        (3, 5, 40, 1),
        (3, 5, 40, 1),
        (6, 7, 80, 2),
        (3, 5, 80, 1),
        (3, 5, 80, 1),
        (3, 5, 80, 1),
        (6, 5, 96, 1),
        (3, 5, 96, 1),
        (3, 5, 96, 1),
        (3, 5, 96, 1),
        (6, 7, 192, 2),
        (6, 7, 192, 1),
        (3, 7, 192, 1),
        (3, 7, 192, 1),
        (6, 7, 320, 1),
    ] {
        b = b.mbconv(k, e, c, s);
    }
    b.conv("head", 1, 1280, 1).linear("fc", 1000).build()
}

/// ProxylessNAS-CPU (224²) — kernel-3-heavy variant.
#[must_use]
pub fn proxyless_cpu() -> NetworkShape {
    let mut b = ShapeBuilder::new("Proxyless-cpu", 224, 3)
        .conv("stem", 3, 40, 2)
        .mbconv(3, 1, 24, 1);
    for &(e, k, c, s) in &[
        (6, 3, 32, 2),
        (3, 3, 32, 1),
        (3, 3, 32, 1),
        (3, 3, 32, 1),
        (6, 3, 48, 2),
        (3, 3, 48, 1),
        (3, 3, 48, 1),
        (3, 3, 48, 1),
        (6, 3, 88, 2),
        (3, 3, 88, 1),
        (3, 5, 104, 1),
        (3, 3, 104, 1),
        (3, 3, 104, 1),
        (3, 3, 104, 1),
        (6, 5, 216, 2),
        (3, 5, 216, 1),
        (3, 5, 216, 1),
        (3, 5, 216, 1),
        (6, 5, 360, 1),
    ] {
        b = b.mbconv(k, e, c, s);
    }
    b.conv("head", 1, 1432, 1).linear("fc", 1000).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published MAC counts (multiply-accumulates) for sanity-checking the
    /// shape descriptions, in millions, with generous tolerance.
    fn assert_macs(net: &NetworkShape, expect_mmacs: f64, tol: f64) {
        // Count only conv/dw/linear work, not the elementwise Other terms.
        let macs: f64 = net
            .ops
            .iter()
            .flat_map(|op| &op.layers)
            .filter(|l| !matches!(l.kind, edd_hw::shapes::LayerKind::Other { .. }))
            .map(edd_hw::shapes::LayerShape::work)
            .sum();
        let got = macs / 1e6;
        assert!(
            (got - expect_mmacs).abs() / expect_mmacs < tol,
            "{}: {got:.0} MMACs vs published ~{expect_mmacs:.0}",
            net.name
        );
    }

    #[test]
    fn mobilenet_v2_macs_match_published() {
        assert_macs(&mobilenet_v2(), 300.0, 0.15);
    }

    #[test]
    fn resnet18_macs_match_published() {
        assert_macs(&resnet18(), 1800.0, 0.15);
    }

    #[test]
    fn googlenet_macs_match_published() {
        assert_macs(&googlenet(), 1500.0, 0.15);
    }

    #[test]
    fn shufflenet_macs_match_published() {
        assert_macs(&shufflenet_v2(), 146.0, 0.25);
    }

    #[test]
    fn vgg16_macs_match_published() {
        assert_macs(&vgg16(), 15_500.0, 0.10);
    }

    #[test]
    fn mnasnet_macs_match_published() {
        assert_macs(&mnasnet_a1(), 312.0, 0.20);
    }

    #[test]
    fn fbnet_c_macs_match_published() {
        assert_macs(&fbnet_c(), 375.0, 0.20);
    }

    #[test]
    fn proxyless_variants_build() {
        for net in [proxyless_gpu(), proxyless_mobile(), proxyless_cpu()] {
            assert!(net.ops.len() > 10, "{} too shallow", net.name);
            assert!(net.total_work() > 1e8, "{} too small", net.name);
        }
    }

    #[test]
    fn gpu_variant_is_shallower_than_mobile() {
        assert!(proxyless_gpu().ops.len() < proxyless_mobile().ops.len());
    }

    #[test]
    fn vgg_dwarfs_mobilenets() {
        assert!(vgg16().total_work() > 10.0 * mobilenet_v2().total_work());
    }
}
