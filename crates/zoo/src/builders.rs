//! Helpers for assembling [`NetworkShape`] descriptions of classic CNNs.

use edd_hw::shapes::{LayerKind, LayerShape, NetworkShape, OpShape};

/// Tracks spatial resolution while stacking layers top-down.
#[derive(Debug, Clone)]
pub struct ShapeBuilder {
    name: String,
    ops: Vec<OpShape>,
    hw: usize,
    channels: usize,
}

impl ShapeBuilder {
    /// Starts a builder at `input_hw` resolution with `input_channels`.
    #[must_use]
    pub fn new(name: &str, input_hw: usize, input_channels: usize) -> Self {
        ShapeBuilder {
            name: name.to_string(),
            ops: Vec::new(),
            hw: input_hw,
            channels: input_channels,
        }
    }

    /// Current spatial side length.
    #[must_use]
    pub fn hw(&self) -> usize {
        self.hw
    }

    /// Current channel count.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Adds a standard convolution (+BN/activation) op.
    #[must_use]
    pub fn conv(mut self, name: &str, k: usize, cout: usize, stride: usize) -> Self {
        let out_hw = self.hw.div_ceil(stride);
        self.ops.push(OpShape {
            name: name.into(),
            ip_class: format!("conv{k}x{k}"),
            layers: vec![
                LayerShape {
                    kind: LayerKind::Conv {
                        k,
                        cin: self.channels,
                        cout,
                    },
                    h: out_hw,
                    w: out_hw,
                },
                LayerShape {
                    kind: LayerKind::Other { c: cout },
                    h: out_hw,
                    w: out_hw,
                },
            ],
        });
        self.hw = out_hw;
        self.channels = cout;
        self
    }

    /// Adds a pooling op (spatial downsample, channel-preserving).
    #[must_use]
    pub fn pool(mut self, name: &str, stride: usize) -> Self {
        let out_hw = self.hw.div_ceil(stride);
        self.ops.push(OpShape {
            name: name.into(),
            ip_class: "pool".into(),
            layers: vec![LayerShape {
                kind: LayerKind::Other { c: self.channels },
                h: out_hw,
                w: out_hw,
            }],
        });
        self.hw = out_hw;
        self
    }

    /// Adds an MBConv op (kernel `k`, expansion `e`).
    #[must_use]
    pub fn mbconv(mut self, k: usize, e: usize, cout: usize, stride: usize) -> Self {
        let op = OpShape::mbconv(self.channels, cout, k, e, self.hw, self.hw, stride);
        self.hw = self.hw.div_ceil(stride);
        self.channels = cout;
        self.ops.push(op);
        self
    }

    /// Adds a depthwise-separable conv op (`dw-k×k` + `1×1`), as in
    /// MobileNet stems and ShuffleNet units.
    #[must_use]
    pub fn sepconv(mut self, k: usize, cout: usize, stride: usize) -> Self {
        let out_hw = self.hw.div_ceil(stride);
        self.ops.push(OpShape {
            name: format!("sep{k}x{k}_c{cout}"),
            ip_class: format!("sep{k}x{k}"),
            layers: vec![
                LayerShape {
                    kind: LayerKind::DwConv {
                        k,
                        c: self.channels,
                    },
                    h: out_hw,
                    w: out_hw,
                },
                LayerShape {
                    kind: LayerKind::Other { c: self.channels },
                    h: out_hw,
                    w: out_hw,
                },
                LayerShape {
                    kind: LayerKind::Conv {
                        k: 1,
                        cin: self.channels,
                        cout,
                    },
                    h: out_hw,
                    w: out_hw,
                },
                LayerShape {
                    kind: LayerKind::Other { c: cout },
                    h: out_hw,
                    w: out_hw,
                },
            ],
        });
        self.hw = out_hw;
        self.channels = cout;
        self
    }

    /// Adds a ResNet basic block (two 3×3 convs; a 1×1 projection when the
    /// stride or width changes).
    #[must_use]
    pub fn basic_block(mut self, cout: usize, stride: usize) -> Self {
        let out_hw = self.hw.div_ceil(stride);
        let mut layers = vec![
            LayerShape {
                kind: LayerKind::Conv {
                    k: 3,
                    cin: self.channels,
                    cout,
                },
                h: out_hw,
                w: out_hw,
            },
            LayerShape {
                kind: LayerKind::Other { c: cout },
                h: out_hw,
                w: out_hw,
            },
            LayerShape {
                kind: LayerKind::Conv {
                    k: 3,
                    cin: cout,
                    cout,
                },
                h: out_hw,
                w: out_hw,
            },
            LayerShape {
                kind: LayerKind::Other { c: cout },
                h: out_hw,
                w: out_hw,
            },
        ];
        if stride != 1 || cout != self.channels {
            layers.push(LayerShape {
                kind: LayerKind::Conv {
                    k: 1,
                    cin: self.channels,
                    cout,
                },
                h: out_hw,
                w: out_hw,
            });
        }
        self.ops.push(OpShape {
            name: format!("basic_c{cout}_s{stride}"),
            ip_class: "basic_block".into(),
            layers,
        });
        self.hw = out_hw;
        self.channels = cout;
        self
    }

    /// Adds a GoogLeNet inception module with the classic six parameters
    /// `(n1x1, n3x3red, n3x3, n5x5red, n5x5, pool_proj)`.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors the GoogLeNet table columns
    pub fn inception(
        mut self,
        name: &str,
        n1: usize,
        n3r: usize,
        n3: usize,
        n5r: usize,
        n5: usize,
        pp: usize,
    ) -> Self {
        let hw = self.hw;
        let cin = self.channels;
        let mk = |k: usize, cin: usize, cout: usize| LayerShape {
            kind: LayerKind::Conv { k, cin, cout },
            h: hw,
            w: hw,
        };
        let layers = vec![
            mk(1, cin, n1),
            mk(1, cin, n3r),
            mk(3, n3r, n3),
            mk(1, cin, n5r),
            mk(5, n5r, n5),
            mk(1, cin, pp),
            LayerShape {
                kind: LayerKind::Other {
                    c: n1 + n3 + n5 + pp,
                },
                h: hw,
                w: hw,
            },
        ];
        self.ops.push(OpShape {
            name: name.into(),
            ip_class: "inception".into(),
            layers,
        });
        self.channels = n1 + n3 + n5 + pp;
        self
    }

    /// Adds a ShuffleNet-V2 unit: half the channels pass through a
    /// `1×1 → dw3×3 → 1×1` branch (stride-2 units process all channels in
    /// two branches).
    #[must_use]
    pub fn shuffle_unit(mut self, cout: usize, stride: usize) -> Self {
        let out_hw = self.hw.div_ceil(stride);
        let branch_c = cout / 2;
        let cin_branch = if stride == 1 { branch_c } else { self.channels };
        let mut layers = vec![
            LayerShape {
                kind: LayerKind::Conv {
                    k: 1,
                    cin: cin_branch,
                    cout: branch_c,
                },
                h: self.hw,
                w: self.hw,
            },
            LayerShape {
                kind: LayerKind::DwConv { k: 3, c: branch_c },
                h: out_hw,
                w: out_hw,
            },
            LayerShape {
                kind: LayerKind::Conv {
                    k: 1,
                    cin: branch_c,
                    cout: branch_c,
                },
                h: out_hw,
                w: out_hw,
            },
        ];
        if stride == 2 {
            // Second branch: dw3x3 + 1x1 on the full input.
            layers.push(LayerShape {
                kind: LayerKind::DwConv {
                    k: 3,
                    c: self.channels,
                },
                h: out_hw,
                w: out_hw,
            });
            layers.push(LayerShape {
                kind: LayerKind::Conv {
                    k: 1,
                    cin: self.channels,
                    cout: branch_c,
                },
                h: out_hw,
                w: out_hw,
            });
        }
        layers.push(LayerShape {
            kind: LayerKind::Other { c: cout },
            h: out_hw,
            w: out_hw,
        });
        self.ops.push(OpShape {
            name: format!("shuffle_c{cout}_s{stride}"),
            ip_class: "shuffle_unit".into(),
            layers,
        });
        self.hw = out_hw;
        self.channels = cout;
        self
    }

    /// Adds a fully-connected classifier op.
    #[must_use]
    pub fn linear(mut self, name: &str, cout: usize) -> Self {
        self.ops.push(OpShape {
            name: name.into(),
            ip_class: "fc".into(),
            layers: vec![LayerShape {
                kind: LayerKind::Linear {
                    cin: self.channels,
                    cout,
                },
                h: 1,
                w: 1,
            }],
        });
        self.channels = cout;
        self
    }

    /// Adds a fully-connected op whose input is the flattened feature map
    /// (`cin = channels·h·w`), as in VGG's first FC layer.
    #[must_use]
    pub fn linear_flatten(mut self, name: &str, cout: usize) -> Self {
        let cin = self.channels * self.hw * self.hw;
        self.ops.push(OpShape {
            name: name.into(),
            ip_class: "fc".into(),
            layers: vec![LayerShape {
                kind: LayerKind::Linear { cin, cout },
                h: 1,
                w: 1,
            }],
        });
        self.channels = cout;
        self.hw = 1;
        self
    }

    /// Finishes the network.
    #[must_use]
    pub fn build(self) -> NetworkShape {
        NetworkShape {
            name: self.name,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_tracks_resolution_and_channels() {
        let b = ShapeBuilder::new("t", 224, 3).conv("stem", 7, 64, 2);
        assert_eq!(b.hw(), 112);
        assert_eq!(b.channels(), 64);
    }

    #[test]
    fn mbconv_chain() {
        let net = ShapeBuilder::new("t", 32, 16)
            .mbconv(3, 4, 24, 2)
            .mbconv(5, 6, 24, 1)
            .build();
        assert_eq!(net.ops.len(), 2);
        assert!(net.ops[0].ip_class.contains("k3_e4"));
    }

    #[test]
    fn basic_block_adds_projection_only_when_needed() {
        let same = ShapeBuilder::new("t", 56, 64).basic_block(64, 1).build();
        assert_eq!(same.ops[0].layers.len(), 4);
        let proj = ShapeBuilder::new("t", 56, 64).basic_block(128, 2).build();
        assert_eq!(proj.ops[0].layers.len(), 5);
    }

    #[test]
    fn inception_output_channels_sum_branches() {
        let b = ShapeBuilder::new("g", 28, 192).inception("3a", 64, 96, 128, 16, 32, 32);
        assert_eq!(b.channels(), 256);
    }

    #[test]
    fn shuffle_unit_stride2_has_second_branch() {
        let s1 = ShapeBuilder::new("t", 28, 116).shuffle_unit(116, 1).build();
        let s2 = ShapeBuilder::new("t", 56, 24).shuffle_unit(116, 2).build();
        assert!(s2.ops[0].layers.len() > s1.ops[0].layers.len());
    }

    #[test]
    fn linear_flatten_uses_spatial_volume() {
        let net = ShapeBuilder::new("v", 7, 512)
            .linear_flatten("fc1", 4096)
            .build();
        match net.ops[0].layers[0].kind {
            LayerKind::Linear { cin, cout } => {
                assert_eq!(cin, 512 * 49);
                assert_eq!(cout, 4096);
            }
            _ => panic!("expected linear"),
        }
    }

    #[test]
    fn pool_preserves_channels() {
        let b = ShapeBuilder::new("t", 56, 192).pool("p", 2);
        assert_eq!(b.hw(), 28);
        assert_eq!(b.channels(), 192);
    }
}
