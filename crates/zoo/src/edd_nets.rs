//! The three published EDD-Net architectures, transcribed from paper
//! Fig. 4.
//!
//! The figure is a block diagram; kernel/expansion labels were extracted
//! from its text as faithfully as possible (the arXiv source renders block
//! labels like `MB 4 5x5` with the channel count underneath). Where the
//! OCR of the figure was ambiguous the transcription preserves the figure's
//! clearly-stated *trends*: EDD-Net-1 (GPU) mixes large expansions and
//! kernels late in the network; EDD-Net-2 (recursive FPGA) concentrates on
//! expansion-4 / kernel-3 blocks (fewer distinct IPs to share); EDD-Net-3
//! (pipelined FPGA) is shallower with wider channels and larger kernels.

use crate::builders::ShapeBuilder;
use edd_hw::shapes::NetworkShape;

/// Block list of EDD-Net-1 (GPU target): `(expansion, kernel, channels,
/// stride)` after the stem (Conv3×3-32 s2, Sep3×3→16, Conv1×1→32).
pub const EDD_NET_1_BLOCKS: [(usize, usize, usize, usize); 20] = [
    (5, 3, 32, 2),
    (4, 5, 32, 1),
    (6, 5, 32, 1),
    (4, 5, 40, 2),
    (4, 5, 40, 1),
    (4, 3, 40, 1),
    (5, 5, 80, 2),
    (6, 5, 80, 1),
    (5, 5, 80, 1),
    (5, 5, 80, 1),
    (6, 3, 96, 1),
    (5, 3, 96, 1),
    (5, 3, 96, 1),
    (4, 5, 96, 1),
    (6, 5, 192, 2),
    (6, 3, 192, 1),
    (6, 5, 192, 1),
    (6, 5, 192, 1),
    (6, 5, 192, 1),
    (4, 3, 320, 1),
];

/// Block list of EDD-Net-2 (recursive FPGA target). Dominated by small
/// expansion-4 kernel-3 blocks, minimizing the number of distinct shared
/// IPs.
pub const EDD_NET_2_BLOCKS: [(usize, usize, usize, usize); 20] = [
    (4, 5, 24, 2),
    (4, 3, 24, 1),
    (4, 3, 24, 1),
    (4, 3, 40, 2),
    (4, 3, 40, 1),
    (4, 5, 40, 1),
    (4, 3, 80, 2),
    (4, 3, 80, 1),
    (4, 5, 80, 1),
    (4, 3, 80, 1),
    (4, 5, 96, 1),
    (4, 3, 96, 1),
    (4, 3, 96, 1),
    (4, 3, 96, 1),
    (4, 5, 192, 2),
    (4, 5, 192, 1),
    (4, 3, 192, 1),
    (4, 5, 192, 1),
    (4, 3, 192, 1),
    (6, 3, 320, 1),
];

/// Block list of EDD-Net-3 (pipelined FPGA target): shallower (17 blocks)
/// with wider channels and larger kernels, as Fig. 4 and §6 describe.
pub const EDD_NET_3_BLOCKS: [(usize, usize, usize, usize); 17] = [
    (5, 5, 32, 2),
    (6, 5, 32, 1),
    (4, 5, 48, 2),
    (4, 5, 48, 1),
    (5, 3, 48, 1),
    (4, 5, 96, 2),
    (5, 5, 96, 1),
    (6, 5, 96, 1),
    (6, 5, 96, 1),
    (6, 5, 128, 1),
    (4, 3, 128, 1),
    (4, 3, 128, 1),
    (4, 5, 256, 2),
    (4, 3, 256, 1),
    (4, 3, 256, 1),
    (4, 3, 256, 1),
    (6, 5, 320, 1),
];

fn edd_net(name: &str, blocks: &[(usize, usize, usize, usize)], head: usize) -> NetworkShape {
    let mut b = ShapeBuilder::new(name, 224, 3)
        .conv("stem", 3, 32, 2)
        .sepconv(3, 16, 1)
        .conv("stem_pw", 1, 32, 1);
    for &(e, k, c, s) in blocks {
        b = b.mbconv(k, e, c, s);
    }
    b.conv("head", 1, head, 1).linear("fc", 1000).build()
}

/// EDD-Net-1: the GPU-targeted model (searched precision: 16-bit weights,
/// paper §6 "the algorithm suggests the 16-bit precision").
#[must_use]
pub fn edd_net_1() -> NetworkShape {
    edd_net("EDD-Net-1", &EDD_NET_1_BLOCKS, 1280)
}

/// EDD-Net-2: the recursive-FPGA-targeted model (evaluated with CHaiDNN on
/// ZCU102 at 16-bit in Table 1).
#[must_use]
pub fn edd_net_2() -> NetworkShape {
    edd_net("EDD-Net-2", &EDD_NET_2_BLOCKS, 1280)
}

/// EDD-Net-3: the pipelined-FPGA-targeted model (compared against
/// DNNBuilder on ZC706 at 16-bit fixed point in Table 3).
#[must_use]
pub fn edd_net_3() -> NetworkShape {
    edd_net("EDD-Net-3", &EDD_NET_3_BLOCKS, 1280)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nets_build_with_expected_depths() {
        // stem(3 ops) + blocks + head + fc
        assert_eq!(edd_net_1().ops.len(), 3 + 20 + 2);
        assert_eq!(edd_net_2().ops.len(), 3 + 20 + 2);
        assert_eq!(edd_net_3().ops.len(), 3 + 17 + 2);
    }

    #[test]
    fn net3_is_shallower_but_wider() {
        let n1 = edd_net_1();
        let n3 = edd_net_3();
        assert!(n3.ops.len() < n1.ops.len());
        // Wider: more total work despite fewer blocks.
        assert!(n3.total_work() > 0.8 * n1.total_work());
    }

    #[test]
    fn net2_has_fewer_ip_classes_than_net1() {
        // The recursive-FPGA net should concentrate on fewer distinct
        // MBConv types (resource sharing pressure).
        let classes = |n: &NetworkShape| {
            n.ip_classes()
                .into_iter()
                .filter(|c| c.starts_with("mbconv"))
                .count()
        };
        assert!(
            classes(&edd_net_2()) <= classes(&edd_net_1()),
            "net2 {} vs net1 {}",
            classes(&edd_net_2()),
            classes(&edd_net_1())
        );
    }

    #[test]
    fn choices_within_search_menus() {
        for blocks in [
            &EDD_NET_1_BLOCKS[..],
            &EDD_NET_2_BLOCKS[..],
            &EDD_NET_3_BLOCKS[..],
        ] {
            for &(e, k, _, s) in blocks {
                assert!([4, 5, 6].contains(&e));
                assert!([3, 5, 7].contains(&k));
                assert!([1, 2].contains(&s));
            }
        }
    }

    #[test]
    fn macs_in_mobile_regime() {
        // EDD-Nets are MobileNet-class models: a few hundred MMACs.
        for net in [edd_net_1(), edd_net_2(), edd_net_3()] {
            let mmacs = net.total_work() / 1e6;
            assert!(
                (200.0..2500.0).contains(&mmacs),
                "{}: {mmacs:.0} MMACs",
                net.name
            );
        }
    }
}
