//! # edd-zoo
//!
//! Architecture descriptors for every comparison network of the EDD paper's
//! evaluation (Tables 1–3) plus the three published EDD-Nets (Fig. 4):
//!
//! * [`baselines`] — GoogleNet, MobileNet-V2, ShuffleNet-V2, ResNet18,
//!   VGG16, MnasNet-A1, FBNet-C and the three ProxylessNAS variants, as
//!   [`edd_hw::NetworkShape`] descriptions evaluable by the hardware models;
//! * [`edd_nets`] — EDD-Net-1/2/3 transcribed from Fig. 4;
//! * [`published`] — the paper's published numbers (Tables 1–3) for
//!   paper-vs-modeled comparison in the benchmark harnesses;
//! * [`tiny`] — laptop-scale trainable counterparts for the SynthImageNet
//!   experiments;
//! * [`signal`] — deterministic synthetic long signals for streaming
//!   (pulsed) inference demos and determinism suites.

#![warn(missing_docs)]

pub mod baselines;
mod builders;
pub mod edd_nets;
pub mod published;
pub mod signal;
pub mod tiny;

pub use baselines::{
    fbnet_c, googlenet, mnasnet_a1, mobilenet_v2, proxyless_cpu, proxyless_gpu, proxyless_mobile,
    resnet18, shufflenet_v2, vgg16,
};
pub use builders::ShapeBuilder;
pub use edd_nets::{edd_net_1, edd_net_2, edd_net_3};
pub use published::{Table1Row, Table2Entry, Table3Row, TABLE_1, TABLE_2, TABLE_3};
pub use signal::{signal_row, signal_window, synthetic_signal};
pub use tiny::{
    compile_tiny_zoo, compile_tiny_zoo_ir, prepare_tiny_zoo, random_arch, tiny_derived_arch,
    tiny_mobilenet_v2, tiny_model_zoo, tiny_quant_arch, tiny_resnet, tiny_vgg,
};
