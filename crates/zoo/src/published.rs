//! Published numbers from the paper's evaluation (Tables 1–3), echoed by
//! the benchmark harnesses next to the modeled values so that every row of
//! every table can be compared paper-vs-reproduction.

use serde::{Deserialize, Serialize};

/// One row of paper Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// Model name as printed in the paper.
    pub name: &'static str,
    /// Top-1 test error (%) on ImageNet.
    pub top1_err: f32,
    /// Top-5 test error (%) on ImageNet (`None` where the paper marks NA).
    pub top5_err: Option<f32>,
    /// Titan RTX latency (ms).
    pub gpu_ms: Option<f32>,
    /// ZCU102 (CHaiDNN) latency (ms); `None` where unsupported.
    pub fpga_ms: Option<f32>,
    /// Whether the row is a hardware-aware NAS model (vs. baseline).
    pub is_nas: bool,
}

/// Paper Table 1: comparisons with existing NAS solutions.
pub const TABLE_1: [Table1Row; 11] = [
    Table1Row {
        name: "GoogleNet",
        top1_err: 30.22,
        top5_err: Some(10.47),
        gpu_ms: Some(27.75),
        fpga_ms: Some(13.25),
        is_nas: false,
    },
    Table1Row {
        name: "MobileNet-V2",
        top1_err: 28.1,
        top5_err: Some(9.7),
        gpu_ms: Some(17.87),
        fpga_ms: Some(10.85),
        is_nas: false,
    },
    Table1Row {
        name: "ShuffleNet-V2",
        top1_err: 30.6,
        top5_err: Some(11.7),
        gpu_ms: Some(21.91),
        fpga_ms: None,
        is_nas: false,
    },
    Table1Row {
        name: "ResNet18",
        top1_err: 30.2,
        top5_err: Some(10.9),
        gpu_ms: Some(9.71),
        fpga_ms: Some(10.15),
        is_nas: false,
    },
    Table1Row {
        name: "MnasNet-A1",
        top1_err: 24.8,
        top5_err: Some(7.5),
        gpu_ms: Some(17.94),
        fpga_ms: Some(8.78),
        is_nas: true,
    },
    Table1Row {
        name: "FBNet-C",
        top1_err: 24.9,
        top5_err: Some(7.6),
        gpu_ms: Some(22.54),
        fpga_ms: Some(12.21),
        is_nas: true,
    },
    Table1Row {
        name: "Proxyless-cpu",
        top1_err: 24.7,
        top5_err: Some(7.6),
        gpu_ms: Some(21.34),
        fpga_ms: Some(10.81),
        is_nas: true,
    },
    Table1Row {
        name: "Proxyless-Mobile",
        top1_err: 25.4,
        top5_err: Some(7.8),
        gpu_ms: Some(21.23),
        fpga_ms: Some(10.78),
        is_nas: true,
    },
    Table1Row {
        name: "Proxyless-gpu",
        top1_err: 24.9,
        top5_err: Some(7.5),
        gpu_ms: Some(15.72),
        fpga_ms: Some(10.79),
        is_nas: true,
    },
    Table1Row {
        name: "EDD-Net-1",
        top1_err: 25.3,
        top5_err: Some(7.7),
        gpu_ms: Some(11.17),
        fpga_ms: Some(11.15),
        is_nas: true,
    },
    Table1Row {
        name: "EDD-Net-2",
        top1_err: 25.4,
        top5_err: Some(7.9),
        gpu_ms: Some(13.00),
        fpga_ms: Some(7.96),
        is_nas: true,
    },
];

/// One column of paper Table 2 (EDD-Net-1 on a GTX 1080 Ti under TensorRT).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table2Entry {
    /// Precision label.
    pub precision: &'static str,
    /// Bit-width.
    pub bits: u32,
    /// Top-1 test error (%).
    pub test_err: f32,
    /// Latency (ms).
    pub latency_ms: f32,
}

/// Paper Table 2: EDD-Net-1 accuracy and latency on a 1080 Ti.
pub const TABLE_2: [Table2Entry; 3] = [
    Table2Entry {
        precision: "32-bit Floating",
        bits: 32,
        test_err: 25.5,
        latency_ms: 2.83,
    },
    Table2Entry {
        precision: "16-bit Floating",
        bits: 16,
        test_err: 25.3,
        latency_ms: 2.29,
    },
    Table2Entry {
        precision: "8-bit Integer",
        bits: 8,
        test_err: 26.4,
        latency_ms: 1.74,
    },
];

/// One row of paper Table 3 (pipelined FPGA on ZC706, 16-bit fixed point).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    /// Model name.
    pub name: &'static str,
    /// Top-1 error (%).
    pub top1_err: f32,
    /// Top-5 error (%).
    pub top5_err: f32,
    /// Throughput on ZC706 (fps).
    pub throughput_fps: f32,
}

/// Paper Table 3: EDD-Net-3 vs DNNBuilder's VGG16 on ZC706 (900 DSPs).
pub const TABLE_3: [Table3Row; 2] = [
    Table3Row {
        name: "VGG16",
        top1_err: 29.5,
        top5_err: 10.0,
        throughput_fps: 27.7,
    },
    Table3Row {
        name: "EDD-Net-3",
        top1_err: 25.6,
        top5_err: 7.7,
        throughput_fps: 40.2,
    },
];

/// Headline speedups claimed in the abstract.
pub mod claims {
    /// EDD-Net-1 vs Proxyless-gpu on Titan RTX.
    pub const GPU_SPEEDUP: f32 = 1.40;
    /// EDD-Net-3 vs DNNBuilder VGG16 on ZC706.
    pub const FPGA_THROUGHPUT_GAIN: f32 = 1.45;
    /// EDD-Net-2 vs Proxyless on ZCU102 (CHaiDNN).
    pub const FPGA_LATENCY_GAIN: f32 = 1.37;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_rows() {
        assert_eq!(TABLE_1.len(), 11);
        assert_eq!(TABLE_1.iter().filter(|r| r.is_nas).count(), 7);
    }

    #[test]
    fn edd_net_1_is_fastest_nas_gpu_row() {
        let edd1 = TABLE_1.iter().find(|r| r.name == "EDD-Net-1").unwrap();
        for r in TABLE_1.iter().filter(|r| r.is_nas && r.name != "EDD-Net-1") {
            assert!(edd1.gpu_ms.unwrap() <= r.gpu_ms.unwrap());
        }
    }

    #[test]
    fn edd_net_2_is_fastest_fpga_row() {
        let edd2 = TABLE_1.iter().find(|r| r.name == "EDD-Net-2").unwrap();
        for r in &TABLE_1 {
            if let Some(f) = r.fpga_ms {
                assert!(edd2.fpga_ms.unwrap() <= f, "{} beats EDD-Net-2", r.name);
            }
        }
    }

    #[test]
    fn claimed_gpu_speedup_consistent_with_table() {
        let edd1 = TABLE_1.iter().find(|r| r.name == "EDD-Net-1").unwrap();
        let pg = TABLE_1.iter().find(|r| r.name == "Proxyless-gpu").unwrap();
        let ratio = pg.gpu_ms.unwrap() / edd1.gpu_ms.unwrap();
        assert!((ratio - claims::GPU_SPEEDUP).abs() < 0.02);
    }

    #[test]
    fn table2_monotone_latency() {
        assert!(TABLE_2[0].latency_ms > TABLE_2[1].latency_ms);
        assert!(TABLE_2[1].latency_ms > TABLE_2[2].latency_ms);
        // 8-bit costs accuracy.
        assert!(TABLE_2[2].test_err > TABLE_2[1].test_err);
    }

    #[test]
    fn table3_claim_consistent() {
        let ratio = TABLE_3[1].throughput_fps / TABLE_3[0].throughput_fps;
        assert!((ratio - claims::FPGA_THROUGHPUT_GAIN).abs() < 0.01);
    }
}
