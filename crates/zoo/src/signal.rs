//! Synthetic long signals for streaming (pulsed) inference.
//!
//! The streaming demos and determinism suites need a continuous input
//! that is deterministic (integer-derived, no platform-dependent libm),
//! structured enough that different sliding windows classify differently,
//! and cheap to regenerate anywhere in the stream. A signal is a sequence
//! of channel-major rows — `channels × width` floats each — exactly the
//! slices a pulsed model's `push` consumes; [`signal_window`] reassembles
//! any window into the NCHW buffer the batch engine takes, so pulsed and
//! batch paths can be compared bit for bit on identical data.

/// One row (pulse) of a synthetic signal: `channels × width` floats in
/// channel-major order, deterministic in `(seed, row)`.
///
/// The pattern superimposes a per-channel drifting ramp with xorshift
/// noise, so consecutive windows see smoothly-varying but distinct
/// content — a stand-in for a sensor sweep rather than white noise.
#[must_use]
pub fn signal_row(channels: usize, width: usize, seed: u64, row: usize) -> Vec<f32> {
    let mut out = Vec::with_capacity(channels * width);
    for ch in 0..channels {
        for x in 0..width {
            // Slow structure: a ramp whose phase drifts with the row.
            let phase = (row * 3 + ch * 5 + x * 2) % 29;
            let ramp = (phase as f32 - 14.0) / 14.0;
            // Noise: splitmix64-style mix of (seed, row, ch, x) —
            // integer only, so identical on every platform.
            let mut s = seed
                ^ (row as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ ((ch * width + x) as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s ^= s >> 30;
            s = s.wrapping_mul(0xBF58_476D_1CE4_E5B9);
            s ^= s >> 27;
            s = s.wrapping_mul(0x94D0_49BB_1331_11EB);
            s ^= s >> 31;
            let noise = (s >> 52) as f32 / f32::from(1u16 << 11) - 1.0;
            out.push(ramp * 0.6 + noise * 0.4);
        }
    }
    out
}

/// The first `rows` rows of the signal, in order.
#[must_use]
pub fn synthetic_signal(channels: usize, width: usize, rows: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..rows)
        .map(|r| signal_row(channels, width, seed, r))
        .collect()
}

/// Assembles rows `[start, start + window)` of a signal into the NCHW
/// `[channels, window, width]` buffer the batch engine consumes (batch
/// dimension left to the caller).
///
/// # Panics
///
/// Panics if the slice holds fewer than `start + window` rows or a row
/// has the wrong length.
#[must_use]
pub fn signal_window(
    rows: &[Vec<f32>],
    start: usize,
    window: usize,
    channels: usize,
    width: usize,
) -> Vec<f32> {
    assert!(
        start + window <= rows.len(),
        "signal_window: window [{start}, {}) exceeds the {} rows given",
        start + window,
        rows.len()
    );
    let mut out = vec![0.0f32; channels * window * width];
    for (r, row) in rows[start..start + window].iter().enumerate() {
        assert_eq!(row.len(), channels * width, "signal_window: row length");
        for ch in 0..channels {
            out[(ch * window + r) * width..(ch * window + r) * width + width]
                .copy_from_slice(&row[ch * width..(ch + 1) * width]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_deterministic_and_seed_sensitive() {
        let a = signal_row(3, 16, 7, 42);
        let b = signal_row(3, 16, 7, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 48);
        assert_ne!(a, signal_row(3, 16, 8, 42));
        assert_ne!(a, signal_row(3, 16, 7, 43));
        assert!(a.iter().all(|v| v.is_finite() && v.abs() < 4.0));
    }

    #[test]
    fn window_reassembles_channel_major_rows() {
        let rows = synthetic_signal(2, 3, 5, 1);
        let win = signal_window(&rows, 1, 4, 2, 3);
        assert_eq!(win.len(), 2 * 4 * 3);
        // Channel 1, window-row 2 is stream row 3's second channel.
        assert_eq!(win[(1 * 4 + 2) * 3..(1 * 4 + 2) * 3 + 3], rows[3][3..6]);
    }

    #[test]
    #[should_panic(expected = "signal_window")]
    fn window_past_end_panics() {
        let rows = synthetic_signal(1, 2, 3, 0);
        let _ = signal_window(&rows, 2, 2, 1, 2);
    }
}
