//! Laptop-scale trainable counterparts used by the SynthImageNet
//! experiments: a tiny MobileNet-V2-style baseline and random-architecture
//! sampling from an EDD search space (the random-search control).

use edd_core::{
    calibrate, lower_to_graph, BlockChoice, Calibration, DerivedArch, DeviceTarget, QatModel,
    QuantizedModel, SearchSpace,
};
use edd_ir::{CompiledModel, PassConfig, PassReport};
use edd_nn::{
    Activation, BatchNorm2d, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, MbConv,
    Sequential,
};
use edd_tensor::Array;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small MobileNet-V2-style classifier for `image_size²` RGB inputs:
/// stem 3×3 → three MBConv stages → 1×1 head → GAP → linear.
#[must_use]
pub fn tiny_mobilenet_v2<R: Rng + ?Sized>(
    image_size: usize,
    num_classes: usize,
    rng: &mut R,
) -> Sequential {
    let _ = image_size; // fully convolutional; kept for call-site clarity
    Sequential::new()
        .push(Conv2d::same(3, 16, 3, 1, rng))
        .push(BatchNorm2d::new(16))
        .push(Activation::Relu6)
        .push(MbConv::new(16, 16, 3, 1, 1, rng))
        .push(MbConv::new(16, 24, 3, 6, 2, rng))
        .push(MbConv::new(24, 24, 3, 6, 1, rng))
        .push(MbConv::new(24, 32, 3, 6, 2, rng))
        .push(MbConv::new(32, 32, 3, 6, 1, rng))
        .push(Conv2d::new(32, 64, 1, 1, 0, false, rng))
        .push(BatchNorm2d::new(64))
        .push(Activation::Relu6)
        .push(GlobalAvgPool)
        .push(Flatten)
        .push(Linear::new(64, num_classes, rng))
}

/// A small ResNet-style classifier: stem 3×3 → three conv stages (each two
/// 3×3 convs with batch norm) → GAP → linear. Plain (non-residual) stacking
/// — the `Sequential` container has no skip connections — but the same
/// depth/width profile as a ResNet-10 scaled to small inputs.
#[must_use]
pub fn tiny_resnet<R: Rng + ?Sized>(
    image_size: usize,
    num_classes: usize,
    rng: &mut R,
) -> Sequential {
    let _ = image_size;
    let stage = |net: Sequential, cin: usize, cout: usize, stride: usize, rng: &mut R| {
        net.push(Conv2d::same(cin, cout, 3, stride, rng))
            .push(BatchNorm2d::new(cout))
            .push(Activation::Relu)
            .push(Conv2d::same(cout, cout, 3, 1, rng))
            .push(BatchNorm2d::new(cout))
            .push(Activation::Relu)
    };
    let mut net = Sequential::new()
        .push(Conv2d::same(3, 16, 3, 1, rng))
        .push(BatchNorm2d::new(16))
        .push(Activation::Relu);
    net = stage(net, 16, 16, 1, rng);
    net = stage(net, 16, 32, 2, rng);
    net = stage(net, 32, 64, 2, rng);
    net.push(GlobalAvgPool)
        .push(Flatten)
        .push(Linear::new(64, num_classes, rng))
}

/// A small VGG-style classifier: conv-conv-pool blocks with a dropout
/// classifier head (mirrors the VGG16 topology at laptop width/depth).
#[must_use]
pub fn tiny_vgg<R: Rng + ?Sized>(image_size: usize, num_classes: usize, rng: &mut R) -> Sequential {
    let _ = image_size;
    Sequential::new()
        .push(Conv2d::same(3, 16, 3, 1, rng))
        .push(Activation::Relu)
        .push(Conv2d::same(16, 16, 3, 1, rng))
        .push(Activation::Relu)
        .push(MaxPool2d {
            kernel: 2,
            stride: 2,
        })
        .push(Conv2d::same(16, 32, 3, 1, rng))
        .push(Activation::Relu)
        .push(Conv2d::same(32, 32, 3, 1, rng))
        .push(Activation::Relu)
        .push(MaxPool2d {
            kernel: 2,
            stride: 2,
        })
        .push(GlobalAvgPool)
        .push(Flatten)
        .push(Dropout::new(0.3, 0xD0))
        .push(Linear::new(32, num_classes, rng))
}

/// A fixed, deterministic derived architecture for exercising the integer
/// quantized-inference engine end to end (examples, `edd qinfer`, the
/// `exp_quantized` bench): three MBConv blocks over 16×16 RGB inputs with
/// mixed searched precisions Φ = {4, 8, 8} bits, so the compiled
/// [`edd_core::QuantizedModel`] gets both the bit-packed int4 path and the
/// int8 path.
#[must_use]
pub fn tiny_derived_arch() -> DerivedArch {
    tiny_quant_arch("edd-tiny-quant-demo", [3, 5, 3], [4, 4, 4], [4, 8, 8])
}

/// Builds a fixed three-block derived architecture over the tiny search
/// space with per-block kernel sizes, expansion ratios, and quantization
/// bit-widths. All choices must come from the tiny space's menus
/// (kernels {3, 5, 7}, expansions {4, 5, 6}, bits {4, 8, 16}).
#[must_use]
pub fn tiny_quant_arch(
    name: &str,
    kernels: [usize; 3],
    expansions: [usize; 3],
    bits: [u32; 3],
) -> DerivedArch {
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
    let blocks = space
        .blocks
        .iter()
        .enumerate()
        .map(|(i, plan)| BlockChoice {
            kernel: kernels[i],
            expansion: expansions[i],
            out_channels: plan.out_channels,
            stride: plan.stride,
            quant_bits: bits[i],
            parallel_factor: None,
        })
        .collect();
    DerivedArch {
        name: name.into(),
        target: DeviceTarget::Dedicated(edd_hw::AccelDevice::loom_like()).label(),
        blocks,
        space,
    }
}

/// A small fleet of distinct derived architectures for multi-tenant
/// serving tests and benches: the mixed-precision demo net plus a pure
/// int8 variant and a pure int4 variant, each with different kernel and
/// expansion choices so their compiled engines genuinely differ.
#[must_use]
pub fn tiny_model_zoo() -> Vec<DerivedArch> {
    vec![
        tiny_derived_arch(),
        tiny_quant_arch("edd-tiny-int8", [5, 7, 3], [5, 6, 4], [8, 8, 8]),
        tiny_quant_arch("edd-tiny-int4", [7, 3, 5], [6, 4, 5], [4, 4, 4]),
    ]
}

/// The deterministic front half of the tiny-zoo deploy pipeline — random
/// QAT weights and activation calibration per architecture — shared by
/// the direct compiler ([`compile_tiny_zoo`]) and the IR pipeline
/// ([`compile_tiny_zoo_ir`]) so both consume *identical* trained models
/// and scales. Deterministic in `seed` (the RNG stream is unchanged from
/// the original `compile_tiny_zoo`, so existing goldens hold).
#[must_use]
pub fn prepare_tiny_zoo(seed: u64) -> Vec<(DerivedArch, QatModel, Calibration)> {
    tiny_model_zoo()
        .into_iter()
        .enumerate()
        .map(|(i, arch)| {
            let mut rng = StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let model = QatModel::new(&arch, &mut rng);
            let batches: Vec<Array> = (0..2)
                .map(|_| Array::randn(&[2, 3, 16, 16], 1.0, &mut rng))
                .collect();
            let calib = calibrate(&model, &batches).expect("calibration of tiny zoo model");
            (arch, model, calib)
        })
        .collect()
}

/// Trains nothing, but runs the full deploy pipeline — random QAT
/// weights, activation calibration, integer compilation — for each
/// architecture in [`tiny_model_zoo`], returning `(name, engine)` pairs
/// ready to serve. Deterministic in `seed`.
#[must_use]
pub fn compile_tiny_zoo(seed: u64) -> Vec<(String, QuantizedModel)> {
    prepare_tiny_zoo(seed)
        .iter()
        .map(|(arch, model, calib)| {
            (
                arch.name.clone(),
                QuantizedModel::compile(model, arch, calib),
            )
        })
        .collect()
}

/// The same zoo compiled through the `edd-ir` pipeline instead of the
/// direct compiler: lower each trained model to the annotated float
/// graph, run the configured passes, and build the executable
/// [`CompiledModel`]. The equivalence suite holds this bitwise equal to
/// [`compile_tiny_zoo`] for every pass configuration.
#[must_use]
pub fn compile_tiny_zoo_ir(
    seed: u64,
    cfg: &PassConfig,
) -> Vec<(String, CompiledModel, PassReport)> {
    prepare_tiny_zoo(seed)
        .iter()
        .map(|(arch, model, calib)| {
            let graph = lower_to_graph(model, arch, calib).expect("lower tiny zoo model");
            let (compiled, report) = edd_ir::compile(&graph, cfg).expect("compile tiny zoo graph");
            (arch.name.clone(), compiled, report)
        })
        .collect()
}

/// Samples a uniformly random architecture from `space` — the
/// random-search control against which the co-search's Pareto front is
/// compared.
#[must_use]
pub fn random_arch<R: Rng + ?Sized>(
    space: &SearchSpace,
    target: &DeviceTarget,
    rng: &mut R,
) -> DerivedArch {
    let blocks = space
        .blocks
        .iter()
        .map(|plan| {
            let m = rng.gen_range(0..space.num_ops());
            let (kernel, expansion) = space.op_choice(m);
            let q = space.quant_bits[rng.gen_range(0..space.num_quant())];
            BlockChoice {
                kernel,
                expansion,
                out_channels: plan.out_channels,
                stride: plan.stride,
                quant_bits: q,
                parallel_factor: None,
            }
        })
        .collect();
    DerivedArch {
        name: format!("random-{}", space.name),
        target: target.label(),
        blocks,
        space: space.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use edd_hw::FpgaDevice;
    use edd_nn::Module;
    use edd_tensor::{Array, Tensor};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn tiny_mobilenet_classifies_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let net = tiny_mobilenet_v2(16, 4, &mut rng);
        let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
        let y = net.forward(&x).unwrap();
        assert_eq!(y.shape(), vec![2, 4]);
    }

    #[test]
    fn tiny_resnet_and_vgg_classify() {
        let mut rng = StdRng::seed_from_u64(8);
        for net in [tiny_resnet(16, 5, &mut rng), tiny_vgg(16, 5, &mut rng)] {
            let x = Tensor::constant(Array::randn(&[2, 3, 16, 16], 1.0, &mut rng));
            let y = net.forward(&x).unwrap();
            assert_eq!(y.shape(), vec![2, 5]);
            // Gradients flow end to end.
            y.cross_entropy(&[0, 1]).unwrap().backward();
            assert!(net.parameters()[0].grad().is_some());
        }
    }

    #[test]
    fn random_arch_within_space() {
        let mut rng = StdRng::seed_from_u64(2);
        let space = SearchSpace::tiny(5, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let arch = random_arch(&space, &target, &mut rng);
        assert_eq!(arch.blocks.len(), 5);
        for b in &arch.blocks {
            assert!(space.kernel_choices.contains(&b.kernel));
            assert!(space.expansion_choices.contains(&b.expansion));
            assert!(space.quant_bits.contains(&b.quant_bits));
        }
        // Buildable and evaluable.
        let net = arch.to_network_shape();
        assert!(net.total_work() > 0.0);
    }

    #[test]
    fn tiny_derived_arch_is_buildable_and_mixed_precision() {
        let arch = tiny_derived_arch();
        assert_eq!(arch.blocks.len(), 3);
        assert!(arch.blocks.iter().any(|b| b.quant_bits <= 4));
        assert!(arch.blocks.iter().any(|b| b.quant_bits == 8));
        for b in &arch.blocks {
            assert!(arch.space.kernel_choices.contains(&b.kernel));
            assert!(arch.space.expansion_choices.contains(&b.expansion));
            assert!(arch.space.quant_bits.contains(&b.quant_bits));
        }
        assert!(arch.to_network_shape().total_work() > 0.0);
    }

    #[test]
    fn tiny_model_zoo_compiles_distinct_engines() {
        let zoo = tiny_model_zoo();
        assert_eq!(zoo.len(), 3);
        let names: Vec<_> = zoo.iter().map(|a| a.name.as_str()).collect();
        assert_eq!(
            names,
            ["edd-tiny-quant-demo", "edd-tiny-int8", "edd-tiny-int4"]
        );
        for arch in &zoo {
            for b in &arch.blocks {
                assert!(arch.space.kernel_choices.contains(&b.kernel));
                assert!(arch.space.expansion_choices.contains(&b.expansion));
                assert!(arch.space.quant_bits.contains(&b.quant_bits));
            }
        }
        let compiled = compile_tiny_zoo(7);
        assert_eq!(compiled.len(), 3);
        // Same seed → same engines (bitwise); the pipeline is deterministic.
        let again = compile_tiny_zoo(7);
        let mut rng = StdRng::seed_from_u64(40);
        let x = Array::randn(&[1, 3, 16, 16], 1.0, &mut rng);
        for ((name, q), (_, q2)) in compiled.iter().zip(&again) {
            let a = q.forward(&x).unwrap();
            let b = q2.forward(&x).unwrap();
            assert_eq!(a.data(), b.data(), "{name} not reproducible");
            assert_eq!(a.shape(), vec![1, 4]);
        }
    }

    #[test]
    fn random_archs_differ() {
        let mut rng = StdRng::seed_from_u64(3);
        let space = SearchSpace::tiny(8, 16, 4, vec![4, 8, 16]);
        let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
        let a = random_arch(&space, &target, &mut rng);
        let b = random_arch(&space, &target, &mut rng);
        assert_ne!(a.blocks, b.blocks);
    }
}
