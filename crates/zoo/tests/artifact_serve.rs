//! End-to-end artifact deployment: a tiny zoo model compiled through the
//! IR pipeline, serialized to a `.eddm` artifact on disk, hot-loaded back,
//! and served through the dynamic-batching [`edd_runtime::Server`] — all
//! compared bitwise against the *direct* `QuantizedModel::compile` path
//! answering the same requests synchronously. This is the CI determinism
//! leg's compile → artifact → hot-load → serve contract: 1-shard and
//! 4-shard serving of the reloaded model must equal the sync reference
//! exactly, on every `EDD_NUM_THREADS` × `EDD_SIMD` × `EDD_GEMM` combo.

use edd_ir::{artifact, CompiledModel, PassConfig};
use edd_runtime::{BatchModel, BatcherConfig, InferServer, ServeConfig, Server};
use edd_tensor::Array;
use edd_zoo::{compile_tiny_zoo, compile_tiny_zoo_ir};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::path::PathBuf;
use std::sync::Arc;

const SEED: u64 = 11;

fn temp_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("edd-zoo-artifact-{}-{tag}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn request_images(n: usize, image_len: usize) -> Vec<Vec<f32>> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..n)
        .map(|_| Array::randn(&[1, 3, 16, 16], 1.0, &mut rng).data().to_vec())
        .inspect(|img| assert_eq!(img.len(), image_len))
        .collect()
}

/// Pushes every request through a server with the given shard count and
/// returns each request's logits, in submission order.
fn serve_all(model: &Arc<CompiledModel>, images: &[Vec<f32>], shards: usize) -> Vec<Vec<f32>> {
    let server = Server::start(
        vec![(model.name().to_owned(), Arc::clone(model))],
        ServeConfig {
            batcher: BatcherConfig {
                max_batch: 8,
                max_delay_us: 200,
                queue_depth: images.len() + 1,
            },
            shards,
        },
    );
    let tickets: Vec<_> = images
        .iter()
        .map(|img| server.submit(0, img.clone()).expect("queue sized for all"))
        .collect();
    let out: Vec<Vec<f32>> = tickets
        .into_iter()
        .map(|t| t.wait().expect("model never errors"))
        .collect();
    let stats = server.shutdown();
    assert_eq!(stats[0].completed, images.len() as u64);
    assert_eq!(stats[0].failed, 0);
    out
}

#[test]
fn hot_loaded_artifact_serves_bitwise_identical_to_direct_compile() {
    let dir = temp_dir("serve");
    let direct = compile_tiny_zoo(SEED);
    let ir = compile_tiny_zoo_ir(SEED, &PassConfig::all());

    for ((name, reference_model), (_, compiled, _)) in direct.iter().zip(&ir) {
        // Compile → artifact on disk → hot-load.
        let path = dir.join(name).with_extension(artifact::ARTIFACT_EXT);
        artifact::save(&path, compiled.graph()).unwrap();
        let loaded = Arc::new(artifact::load(&path).unwrap());
        assert_eq!(loaded.name(), name);
        assert_eq!(loaded.image_len(), reference_model.image_len());
        assert_eq!(loaded.num_classes(), reference_model.num_classes());

        // Synchronous reference through the *direct* engine.
        let images = request_images(24, reference_model.image_len());
        let sync = InferServer::new(reference_model);
        let reference: Vec<Vec<f32>> = images
            .iter()
            .map(|img| sync.infer(img, 1).unwrap())
            .collect();

        // The hot-loaded artifact served with 1 and 4 shards matches the
        // direct sync path bit for bit.
        for shards in [1usize, 4] {
            let served = serve_all(&loaded, &images, shards);
            for (i, (got, want)) in served.iter().zip(&reference).enumerate() {
                assert_eq!(
                    bits(got),
                    bits(want),
                    "{name}: request {i} diverged through {shards}-shard server \
                     after artifact round-trip"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn artifact_roundtrip_preserves_graph_bytes_for_zoo_models() {
    for (name, compiled, _) in &compile_tiny_zoo_ir(SEED, &PassConfig::all()) {
        let encoded = artifact::to_bytes(compiled.graph()).unwrap();
        let decoded = artifact::from_bytes(&encoded).unwrap();
        let re_encoded = artifact::to_bytes(&decoded).unwrap();
        assert_eq!(encoded, re_encoded, "{name}: artifact encoding not stable");
    }
}
