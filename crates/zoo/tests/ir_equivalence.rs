//! Per-pass bitwise equivalence of the `edd-ir` compilation pipeline
//! against the direct `QuantizedModel::compile` path, on the real tiny
//! zoo (mixed int4/int8 precisions, expanding and non-expanding MBConv
//! blocks, residual connections).
//!
//! Both paths consume the *identical* trained weights and calibration
//! (`prepare_tiny_zoo` shares the RNG stream), so any output difference
//! is a lowering or pass bug, not noise. Every individual pass and the
//! full pipeline must produce logits whose f32 bit patterns match the
//! direct engine exactly. The determinism CI leg re-runs this test across
//! the `EDD_NUM_THREADS` × `EDD_SIMD` × `EDD_GEMM` matrix, which the
//! equivalence inherits for free since both paths execute the same
//! `edd-nn` kernels.

use edd_ir::PassConfig;
use edd_runtime::BatchModel;
use edd_tensor::Array;
use edd_zoo::{compile_tiny_zoo, compile_tiny_zoo_ir};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 11;
const BATCH: usize = 3;

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

fn test_batch(image_len: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(2024);
    let x = Array::randn(&[BATCH, 3, 16, 16], 1.0, &mut rng);
    assert_eq!(x.len(), BATCH * image_len);
    x.data().to_vec()
}

/// Every pass configuration exercised one pass at a time, plus the
/// empty and full pipelines.
fn configs() -> Vec<(&'static str, PassConfig)> {
    let mut out = vec![("none", PassConfig::none())];
    for name in edd_ir::PASS_NAMES {
        let mut cfg = PassConfig::none();
        cfg.set(name, true).unwrap();
        out.push((name, cfg));
    }
    out.push(("all", PassConfig::all()));
    out
}

#[test]
fn ir_pipeline_matches_direct_compile_for_every_pass_config() {
    let direct = compile_tiny_zoo(SEED);
    let x = test_batch(direct[0].1.image_len());
    let reference: Vec<(String, Vec<f32>)> = direct
        .iter()
        .map(|(name, q)| (name.clone(), q.infer_batch(&x, BATCH).unwrap()))
        .collect();

    for (label, cfg) in configs() {
        let ir = compile_tiny_zoo_ir(SEED, &cfg);
        assert_eq!(ir.len(), reference.len());
        for ((name, want), (ir_name, compiled, _)) in reference.iter().zip(&ir) {
            assert_eq!(name, ir_name);
            let got = compiled.infer_batch(&x, BATCH).unwrap();
            assert_eq!(
                bits(want),
                bits(&got),
                "IR pipeline with passes `{label}` diverges from direct compile on {name}"
            );
        }
    }
}

#[test]
fn full_pipeline_optimizes_and_reports() {
    let ir = compile_tiny_zoo_ir(SEED, &PassConfig::all());
    let bare = compile_tiny_zoo_ir(SEED, &PassConfig::none());
    for ((name, opt, report), (_, raw, raw_report)) in ir.iter().zip(&bare) {
        // Three conv+BN stages per MBConv block at most, plus stem and
        // head: every one must fold, and every ReLU6 must fuse.
        assert!(report.bn_folded >= 5, "{name}: folded {}", report.bn_folded);
        assert_eq!(
            report.bn_folded,
            opt.graph()
                .nodes()
                .iter()
                .filter(|n| matches!(n.op, edd_ir::Op::QConv(_) | edd_ir::Op::QDwConv(_)))
                .count(),
            "{name}: every compiled conv came from a conv+BN pair"
        );
        assert!(report.relu6_fused >= 4, "{name}");
        // The zoo nets carry 1×1 expand/project/head convs — the direct
        // path must be selected for them.
        assert!(report.bypassed_1x1 >= 3, "{name}");
        assert!(report.dce_removed > 0, "{name}");
        // Fusion shrinks the executable graph.
        assert!(
            opt.graph().len() < raw.graph().len(),
            "{name}: {} vs {}",
            opt.graph().len(),
            raw.graph().len()
        );
        assert_eq!(*raw_report, edd_ir::PassReport::default(), "{name}");
        // The unfused graph still carries standalone QRelu6 clamps.
        assert!(raw
            .graph()
            .nodes()
            .iter()
            .any(|n| matches!(n.op, edd_ir::Op::QRelu6 { .. })));
    }
}

#[test]
fn ir_models_are_batch_invariant() {
    let (_, compiled, _) = &compile_tiny_zoo_ir(SEED, &PassConfig::all())[0];
    let x = test_batch(compiled.image_len());
    let batched = compiled.infer_batch(&x, BATCH).unwrap();
    let classes = compiled.num_classes();
    for i in 0..BATCH {
        let img = &x[i * compiled.image_len()..(i + 1) * compiled.image_len()];
        let single = compiled.infer_batch(img, 1).unwrap();
        assert_eq!(
            bits(&single),
            bits(&batched[i * classes..(i + 1) * classes]),
            "image {i} depends on batch composition"
        );
    }
}
