//! Bitwise equivalence of pulsed (streaming) execution against the batch
//! engines, on the real tiny zoo (mixed int4/int8 precisions, expanding
//! and non-expanding MBConv blocks, residual connections).
//!
//! Each engine is lifted into the IR via `QuantizedModel::to_graph` (or
//! taken straight from the `edd-ir` pass pipeline) and converted into a
//! [`edd_ir::PulsedModel`] that consumes the shared synthetic signal one
//! row-slice at a time. Every emitted window's logits must match the
//! batch engine run on the identical window bit for bit, a mid-signal
//! save/restore must resume bit-identically, and carried state must not
//! grow with stream length. The determinism CI leg re-runs this suite
//! across the `EDD_NUM_THREADS` × `EDD_SIMD` × `EDD_GEMM` matrix, which
//! the equivalence inherits for free since pulsed and batch paths execute
//! the same `edd-nn` kernels on the same i32-exact accumulators.

use edd_ir::{PassConfig, PulsedModel};
use edd_runtime::{StreamModel, StreamSession, StreamWindow};
use edd_tensor::Array;
use edd_zoo::{compile_tiny_zoo, compile_tiny_zoo_ir, signal_window, synthetic_signal};

const SEED: u64 = 11;
const SIGNAL_SEED: u64 = 2024;

fn bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|v| v.to_bits()).collect()
}

/// Streams `signal` through `pulsed`, returning every emitted window.
fn stream_all(pulsed: PulsedModel, signal: &[Vec<f32>]) -> (Vec<StreamWindow>, usize) {
    let mut session = StreamSession::new(pulsed);
    let mut out = Vec::new();
    for row in signal {
        if let Some(w) = session.push(row).expect("push") {
            out.push(w);
        }
    }
    (out, session.stats().peak_state_bytes)
}

/// Asserts every window in `windows` matches `oracle` run on the same
/// rows, bit for bit.
fn assert_windows_match_batch(
    name: &str,
    oracle: &edd_ir::CompiledModel,
    signal: &[Vec<f32>],
    windows: &[StreamWindow],
    shape: [usize; 3],
) {
    let [c, h, w] = shape;
    assert!(!windows.is_empty(), "{name}: no window completed");
    for win in windows {
        let buf = signal_window(signal, win.start_row as usize, h, c, w);
        let x = Array::from_vec(buf, &[1, c, h, w]).expect("window shape");
        let want = oracle.forward(&x).expect("batch forward");
        assert_eq!(
            bits(want.data()),
            bits(&win.logits),
            "{name}: pulsed window {} (rows {}..{}) diverges from the batch engine",
            win.index,
            win.start_row,
            win.start_row + h as u64
        );
    }
}

/// Every tiny-zoo integer engine, lifted through `to_graph`, must stream
/// bit-identically to its own batch execution — across a divisor hop and
/// a non-divisor hop (windows straddle ring trims differently).
#[test]
fn pulsed_matches_batch_on_every_zoo_engine() {
    for (name, q) in compile_tiny_zoo(SEED) {
        let g = q.to_graph(&name).expect("to_graph");
        let [c, h, w] = g.meta.input_shape;
        let signal = synthetic_signal(c, w, h + 3 * h / 2, SIGNAL_SEED);
        for hop in [h / 2, (h / 3).max(1) + 1] {
            let pulsed = PulsedModel::from_graph(&g, hop).expect("pulse");
            assert_eq!(pulsed.window_rows(), h);
            assert_eq!(pulsed.delay_rows(), h - 1, "{name}: classifier delay");
            let (windows, _) = stream_all(pulsed, &signal);
            let oracle = edd_ir::CompiledModel::from_graph(g.clone()).expect("compile");
            assert_windows_match_batch(&name, &oracle, &signal, &windows, [c, h, w]);
            // Window starts are hop-spaced from row 0.
            for (i, win) in windows.iter().enumerate() {
                assert_eq!(win.index as usize, i, "{name}");
                assert_eq!(win.start_row as usize, i * hop, "{name}");
            }
        }
    }
}

/// The pass-pipeline path: a fully-optimized `edd-ir` graph (BN folded,
/// ReLU6 fused, 1×1 bypassed, DCE'd) pulses bit-identically too.
#[test]
fn pulsed_matches_batch_through_ir_pass_pipeline() {
    let (name, compiled, _) = compile_tiny_zoo_ir(SEED, &PassConfig::all())
        .into_iter()
        .next()
        .expect("zoo nonempty");
    let [c, h, w] = compiled.graph().meta.input_shape;
    let signal = synthetic_signal(c, w, 3 * h, SIGNAL_SEED ^ 1);
    let pulsed = PulsedModel::from_graph(compiled.graph(), h / 2).expect("pulse");
    let (windows, _) = stream_all(pulsed, &signal);
    assert_windows_match_batch(&name, &compiled, &signal, &windows, [c, h, w]);
}

/// A stream interrupted mid-window, serialized, and resumed on a freshly
/// built pulsed model continues bit-for-bit: every window emitted after
/// the cut matches the uninterrupted run.
#[test]
fn streaming_resume_mid_signal_is_bitwise() {
    let (name, q) = compile_tiny_zoo(SEED).remove(0);
    let g = q.to_graph(&name).expect("to_graph");
    let [c, h, w] = g.meta.input_shape;
    let hop = (h / 4).max(1);
    let rows = 3 * h;
    // Cut mid-window: not on a hop boundary, past the first window start.
    let cut = h + hop / 2 + 1;
    let signal = synthetic_signal(c, w, rows, SIGNAL_SEED ^ 2);

    let (reference, _) = stream_all(PulsedModel::from_graph(&g, hop).expect("pulse"), &signal);

    let mut first = StreamSession::new(PulsedModel::from_graph(&g, hop).expect("pulse"));
    let mut resumed_windows = Vec::new();
    for row in &signal[..cut] {
        if let Some(win) = first.push(row).expect("push") {
            resumed_windows.push(win);
        }
    }
    let snapshot = first.save_state();
    drop(first);

    let mut second = StreamSession::new(PulsedModel::from_graph(&g, hop).expect("pulse"));
    second.restore_state(&snapshot).expect("restore");
    for row in &signal[cut..] {
        if let Some(win) = second.push(row).expect("push") {
            resumed_windows.push(win);
        }
    }

    assert_eq!(reference.len(), resumed_windows.len(), "{name}");
    for (want, got) in reference.iter().zip(&resumed_windows) {
        assert_eq!(want.index, got.index, "{name}");
        assert_eq!(want.start_row, got.start_row, "{name}");
        assert_eq!(
            bits(&want.logits),
            bits(&got.logits),
            "{name}: window {} diverged after resume",
            want.index
        );
    }
}

/// Carried state is bounded by the window geometry: streaming 10 windows'
/// worth of rows peaks at exactly the same state bytes as streaming 2.
#[test]
fn carried_state_is_stream_length_independent() {
    let (name, q) = compile_tiny_zoo(SEED).remove(0);
    let g = q.to_graph(&name).expect("to_graph");
    let [c, h, w] = g.meta.input_shape;
    let hop = h / 2;
    let peak = |rows: usize| {
        let signal = synthetic_signal(c, w, rows, SIGNAL_SEED ^ 3);
        let (windows, peak) = stream_all(PulsedModel::from_graph(&g, hop).expect("pulse"), &signal);
        assert_eq!(windows.len(), (rows - h) / hop + 1, "{name}");
        peak
    };
    let short = peak(2 * h);
    let long = peak(10 * h);
    assert!(short > 0, "{name}: state should be nonzero mid-stream");
    assert_eq!(short, long, "{name}: peak state grew with stream length");
}
