//! Deployment-budget exploration: how the best achievable latency and the
//! tuned implementation change as the FPGA's DSP budget shrinks — the
//! question an embedded-systems engineer asks when choosing a part.
//!
//! Sweeps DSP budgets from a large UltraScale+ down to a small Zynq for
//! EDD-Net-2 on the recursive accelerator model, at both 16-bit and 8-bit
//! precision, showing (a) latency scales inversely with budget until the
//! per-layer overhead floor, and (b) 8-bit halves the DSP cost per
//! multiplier (Ψ(8) = ½) so it dominates at tight budgets.
//!
//! Run: `cargo run --release --example budget_sweep`

use edd::hw::{eval_recursive, tune_recursive, FpgaDevice};
use edd::zoo::edd_net_2;

fn main() {
    let net = edd_net_2();
    println!(
        "EDD-Net-2 on recursive accelerators ({:.0} MMACs, {} compute layers)\n",
        net.total_work() / 1e6,
        net.total_compute_layers()
    );
    println!(
        "{:>10} | {:>12} {:>12} | {:>10}",
        "DSPs", "16-bit ms", "8-bit ms", "8b speedup"
    );
    println!("{}", "-".repeat(54));

    let mut last16 = 0.0f64;
    for budget in [2520.0, 1800.0, 1200.0, 900.0, 600.0, 360.0, 220.0] {
        let mut device = FpgaDevice::zcu102();
        device.dsp_budget = budget;
        let r16 = eval_recursive(&net, &tune_recursive(&net, 16, &device), &device)
            .expect("classes covered");
        let r8 = eval_recursive(&net, &tune_recursive(&net, 8, &device), &device)
            .expect("classes covered");
        println!(
            "{budget:>10.0} | {:>10.2}ms {:>10.2}ms | {:>9.2}x",
            r16.latency_ms,
            r8.latency_ms,
            r16.latency_ms / r8.latency_ms
        );
        assert!(
            r16.latency_ms >= last16 - 1e-9,
            "smaller budgets must not be faster"
        );
        assert!(r8.latency_ms <= r16.latency_ms + 1e-9);
        last16 = r16.latency_ms;
    }

    println!(
        "\nAt large budgets the per-layer invocation overhead dominates and extra\n\
         DSPs stop helping; at tight budgets the compute term dominates and the\n\
         8-bit advantage approaches the ideal 4x (Φ and Ψ each halve). This is\n\
         the trade-off surface the EDD search variables {{Φ, pf}} navigate."
    );
}
