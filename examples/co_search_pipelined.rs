//! Co-search against a *pipelined* FPGA accelerator (DNNBuilder-style):
//! throughput objective via the Log-Sum-Exp smooth max (paper Eq. 7),
//! per-stage implementation variables, no resource sharing — the
//! EDD-Net-3 scenario of paper §6 and Table 3.
//!
//! The searched architecture is exported as JSON, the exchange artifact a
//! downstream accelerator generator would consume.
//!
//! Run: `cargo run --release --example co_search_pipelined`

use edd::core::{CoSearch, CoSearchConfig, DeviceTarget, LossConfig, SearchSpace};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::{eval_pipelined, tune_pipelined, FpgaDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // The paper limits block count for pipelined targets (more blocks =
    // more per-stage resource and memory control logic), so use a shorter
    // space than the recursive scenario would.
    let space = SearchSpace::tiny(3, 16, 6, vec![4, 8, 16]);
    let device = FpgaDevice::zc706();
    let target = DeviceTarget::FpgaPipelined(device.clone());

    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(4, 16, 1);
    let val = data.split(2, 16, 2);

    let config = CoSearchConfig {
        epochs: 6,
        warmup_epochs: 1,
        // Stronger resource pressure: the ZC706 has only 900 DSPs.
        loss: LossConfig {
            alpha: 1.0,
            beta: 2.0,
            penalty_sharpness: 8.0,
        },
        ..CoSearchConfig::default()
    };
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid target");
    let outcome = search.run(&train, &val, &mut rng).expect("search runs");

    println!("{}", outcome.derived.summary());

    // Evaluate the derived network on the pipelined model.
    let net = outcome.derived.to_network_shape();
    let imp = tune_pipelined(&net, 16, &device);
    let report = eval_pipelined(&net, &imp, &device).expect("stage counts match");
    println!(
        "modeled on {} (pipelined): {:.1} fps, slowest stage {:.3} ms, {:.0} DSPs",
        device.name,
        report.throughput_fps,
        report
            .per_op_latency_ms
            .iter()
            .copied()
            .fold(0.0f64, f64::max),
        report.dsps
    );

    // Export the searched architecture.
    let json = outcome.derived.to_json().expect("serializable");
    let path = std::env::temp_dir().join("edd_net_pipelined.json");
    std::fs::write(&path, &json).expect("writable temp dir");
    println!("exported searched architecture to {}", path.display());

    // Round-trip check.
    let back = edd::core::DerivedArch::from_json(&json).expect("valid JSON");
    assert_eq!(back, outcome.derived);
    println!("JSON round-trip verified ({} bytes)", json.len());
}
