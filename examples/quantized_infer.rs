//! End-to-end integer quantized inference of a derived architecture.
//!
//! Pipeline: derived arch (mixed Φ = 4/8/8-bit) → QAT model → brief
//! quantization-aware training on SynthImageNet → activation calibration →
//! compile to the integer engine ([`edd::core::QuantizedModel`]) → serve
//! batches through [`edd::runtime::InferServer`]. Everything between the
//! input quantization and the classifier's dequantized logits runs in
//! int8/int4 × int8 → i32 arithmetic.
//!
//! Run: `cargo run --release --example quantized_infer`

use edd::core::{calibrate, QatModel, QuantizedModel};
use edd::data::{SynthConfig, SynthDataset};
use edd::nn::Module;
use edd::runtime::InferServer;
use edd::tensor::optim::Sgd;
use edd::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let arch = edd::zoo::tiny_derived_arch();
    println!("{}", arch.summary());

    let mut rng = StdRng::seed_from_u64(7);
    let model = QatModel::new(&arch, &mut rng);
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(6, 16, 1);
    let test = data.split(3, 16, 2);

    // Brief QAT so the weights have adapted to their quantization grids.
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for epoch in 0..4 {
        let stats = edd::nn::train_epoch(&model, &mut opt, &train).expect("train epoch");
        println!(
            "qat epoch {epoch}: loss {:.3}, top1 {:.2}",
            stats.loss, stats.top1
        );
    }
    model.set_training(false);

    // Calibrate activation scales on the training batches, then compile to
    // integer arithmetic at the searched per-block precisions.
    let calib_batches: Vec<_> = train.iter().map(|b| b.images.clone()).collect();
    let calib = calibrate(&model, &calib_batches).expect("calibration");
    let q = QuantizedModel::compile(&model, &arch, &calib);
    println!(
        "\ncompiled integer engine: block bits {:?}, {} weight bytes, input scale {:.5}",
        q.block_bits(),
        q.weight_bytes(),
        q.input_scale()
    );

    // Serve the test set through the batched inference entry point and
    // compare the integer argmax against the float model's.
    let server = InferServer::new(q);
    let mut agree = 0usize;
    let mut correct = 0usize;
    let mut total = 0usize;
    for batch in &test {
        let n = batch.labels.len();
        let logits = server
            .infer(batch.images.data(), n)
            .expect("quantized inference");
        let float = model
            .forward(&Tensor::constant(batch.images.clone()))
            .expect("float forward")
            .value()
            .clone();
        let classes = logits.len() / n;
        for i in 0..n {
            let qrow = &logits[i * classes..(i + 1) * classes];
            let frow = &float.data()[i * classes..(i + 1) * classes];
            let qarg = argmax(qrow);
            if qarg == argmax(frow) {
                agree += 1;
            }
            if qarg == batch.labels[i] {
                correct += 1;
            }
            total += 1;
        }
    }
    let stats = server.stats();
    println!(
        "\nint8 engine vs f32 model: {agree}/{total} argmax agreement, \
         top1 {:.2} on SynthImageNet",
        correct as f64 / total as f64
    );
    println!(
        "served {} requests / {} images, mean latency {:.1} µs, {:.0} images/s",
        stats.requests,
        stats.images,
        stats.mean_latency_us(),
        stats.images_per_sec()
    );
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, &v) in row.iter().enumerate() {
        if v > row[best] {
            best = i;
        }
    }
    best
}
