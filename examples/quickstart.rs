//! Quickstart: run a miniature EDD co-search end-to-end in under a minute.
//!
//! Builds a small search space (4 blocks × 9 MBConv candidates × 3
//! bit-widths), searches it against a recursive FPGA accelerator model on
//! the synthetic SynthImageNet dataset, and prints the derived
//! architecture with its modeled latency and resource usage.
//!
//! Run: `cargo run --release --example quickstart`

use edd::core::{CoSearch, CoSearchConfig, DeviceTarget, SearchSpace};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::{eval_recursive, tune_recursive, FpgaDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(42);

    // 1. The fused search space {A, I}: operator choices x quantization
    //    choices (4/8/16-bit weights, the paper's FPGA menu).
    let space = SearchSpace::tiny(4, 16, 6, vec![4, 8, 16]);
    println!(
        "search space: {} blocks x {} ops x {} quantizations",
        space.num_blocks(),
        space.num_ops(),
        space.num_quant()
    );

    // 2. The hardware target: a CHaiDNN-style recursive accelerator on a
    //    Xilinx ZCU102 (2520 DSPs), latency objective with IP sharing.
    let device = FpgaDevice::zcu102();
    let target = DeviceTarget::FpgaRecursive(device.clone());

    // 3. Data: seeded synthetic image classification.
    let data = SynthDataset::new(SynthConfig {
        num_classes: 6,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(4, 16, 1);
    let val = data.split(2, 16, 2);

    // 4. Co-search: bilevel SGD over weights and {Θ, Φ, pf}.
    let config = CoSearchConfig {
        epochs: 5,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("valid target");
    let outcome = search.run(&train, &val, &mut rng).expect("search runs");

    for h in &outcome.history {
        println!(
            "epoch {}: train acc {:.2}, val acc {:.2}, E[latency] {:.3} ms, E[DSPs] {:.0}",
            h.epoch, h.train_acc, h.val_acc, h.expected_perf, h.expected_res
        );
    }

    // 5. The derived architecture and its tuned hardware implementation.
    println!("\n{}", outcome.derived.summary());
    let net = outcome.derived.to_network_shape();
    let imp = tune_recursive(&net, 16, &device);
    let report = eval_recursive(&net, &imp, &device).expect("classes covered");
    println!(
        "modeled on {}: latency {:.3} ms, {:.0} DSPs (budget {:.0})",
        device.name, report.latency_ms, report.dsps, device.dsp_budget
    );
}
