//! Pulsed streaming inference with bounded memory.
//!
//! Pipeline: derived arch → brief QAT → calibration → integer engine
//! ([`edd::core::QuantizedModel`]) → lift into the IR (`to_graph`) →
//! convert to a pulsed model ([`edd::ir::PulsedModel`]) that consumes a
//! long signal one row-slice at a time. Each conv keeps only a small ring
//! of rows, so carried state is bounded by the window geometry — the
//! stream can be arbitrarily long. Every emitted sliding-window
//! classification is checked bitwise against the batch engine run on the
//! identical rows, and the stream is interrupted, serialized, and resumed
//! mid-window to show state save/restore continues bit-for-bit.
//!
//! Run: `cargo run --release --example streaming_infer`

use edd::core::{calibrate, QatModel, QuantizedModel};
use edd::data::{SynthConfig, SynthDataset};
use edd::ir::{CompiledModel, PulsedModel};
use edd::nn::Module;
use edd::runtime::{StreamModel, StreamSession};
use edd::tensor::optim::Sgd;
use edd::tensor::Array;
use edd::zoo::{signal_window, synthetic_signal};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let arch = edd::zoo::tiny_derived_arch();
    println!("{}", arch.summary());

    // Train, calibrate, and compile the integer engine, as in the
    // quantized_infer example.
    let mut rng = StdRng::seed_from_u64(7);
    let model = QatModel::new(&arch, &mut rng);
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(6, 16, 1);
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for epoch in 0..2 {
        let stats = edd::nn::train_epoch(&model, &mut opt, &train).expect("train epoch");
        println!(
            "qat epoch {epoch}: loss {:.3}, top1 {:.2}",
            stats.loss, stats.top1
        );
    }
    model.set_training(false);
    let calib_batches: Vec<_> = train.iter().map(|b| b.images.clone()).collect();
    let calib = calibrate(&model, &calib_batches).expect("calibration");
    let q = QuantizedModel::compile(&model, &arch, &calib);

    // Lift the engine into the IR and pulse it: one 16-row window, new
    // window every 4 rows.
    let graph = q.to_graph(&arch.name).expect("to_graph");
    let [channels, window, width] = graph.meta.input_shape;
    let hop = 4;
    let pulsed = PulsedModel::from_graph(&graph, hop).expect("pulse conversion");
    println!(
        "\npulsed `{}`: {} floats/slice, window {window} rows, hop {hop}, delay {} rows",
        arch.name,
        pulsed.slice_len(),
        pulsed.delay_rows()
    );

    // Stream a 64-row synthetic signal one row at a time, interrupting at
    // row 23 (mid-window) to serialize and resume on a fresh model.
    let rows = 64;
    let cut = 23;
    let signal = synthetic_signal(channels, width, rows, 42);
    let mut session = StreamSession::new(pulsed);
    let mut windows = Vec::new();
    for row in &signal[..cut] {
        if let Some(w) = session.push(row).expect("push") {
            windows.push(w);
        }
    }
    let snapshot = session.save_state();
    println!(
        "interrupted at row {cut}: {} window(s) out, {} bytes of state serialized",
        windows.len(),
        snapshot.len()
    );
    let mut session = StreamSession::new(PulsedModel::from_graph(&graph, hop).expect("pulse"));
    session.restore_state(&snapshot).expect("restore");
    for row in &signal[cut..] {
        if let Some(w) = session.push(row).expect("push") {
            windows.push(w);
        }
    }

    // Verify every emitted window bitwise against the batch engine.
    let oracle = CompiledModel::from_graph(graph).expect("batch compile");
    for w in &windows {
        let buf = signal_window(&signal, w.start_row as usize, window, channels, width);
        let x = Array::from_vec(buf, &[1, channels, window, width]).expect("window shape");
        let want = oracle.forward(&x).expect("batch forward");
        assert!(
            want.data()
                .iter()
                .zip(&w.logits)
                .all(|(a, b)| a.to_bits() == b.to_bits()),
            "window {} diverged from the batch engine",
            w.index
        );
        println!(
            "  window {:>2} (rows {:>2}..{:>2}): class {} — matches batch bitwise",
            w.index,
            w.start_row,
            w.start_row + window as u64,
            w.argmax()
        );
    }
    let stats = session.stats();
    println!(
        "\n{} windows classified from a {rows}-row stream; peak carried state \
         {} bytes, independent of stream length",
        windows.len(),
        stats.peak_state_bytes
    );
}
