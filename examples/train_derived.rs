//! The paper's final stage (§5): train a searched architecture from
//! scratch. Loads (or derives) an architecture, builds its trainable
//! model, trains on SynthImageNet with a cosine learning-rate schedule,
//! and reports top-1/top-5 accuracy per epoch.
//!
//! Run: `cargo run --release --example train_derived`

use edd::core::{ArchParams, DerivedArch, DeviceTarget, SearchSpace};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::GpuDevice;
use edd::nn::{evaluate, train_epoch, Module};
use edd::tensor::optim::{cosine_lr, Optimizer, Sgd};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(99);

    // An architecture to train: here simply the argmax of freshly
    // initialized parameters (a near-uniform draw from the space). In a
    // real flow this would come from `CoSearch` or a JSON artifact.
    let space = SearchSpace::tiny(4, 16, 8, vec![8, 16, 32]);
    let target = DeviceTarget::Gpu(GpuDevice::titan_rtx());
    let params = ArchParams::init(&space, &target, &mut rng);
    let arch = DerivedArch::from_params(&space, &target, &params);
    println!("{}", arch.summary());

    let data = SynthDataset::new(SynthConfig {
        num_classes: 8,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(8, 16, 1);
    let test = data.split(4, 16, 2);

    let model = arch.build_model(&mut rng);
    println!(
        "model parameters: {} tensors, {} scalars",
        model.parameters().len(),
        model.num_parameters()
    );

    let epochs = 10;
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for e in 0..epochs {
        opt.set_lr(cosine_lr(0.05, 0.002, e, epochs));
        let tr = train_epoch(&model, &mut opt, &train).expect("training");
        let te = evaluate(&model, &test).expect("evaluation");
        println!(
            "epoch {e:>2}: lr {:.4}  train loss {:.3} acc {:.2} | test top1 {:.2} top5 {:.2}",
            opt.lr(),
            tr.loss,
            tr.top1,
            te.top1,
            te.top5
        );
    }

    let final_stats = evaluate(&model, &test).expect("evaluation");
    println!(
        "\nfinal: top-1 error {:.1}%, top-5 error {:.1}% on {} test images",
        (1.0 - final_stats.top1) * 100.0,
        (1.0 - final_stats.top5) * 100.0,
        final_stats.examples
    );
    assert!(
        final_stats.top1 > 0.4,
        "training should beat the 12.5% random baseline comfortably"
    );
}
