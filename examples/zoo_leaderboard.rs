//! Evaluate the whole model zoo on every hardware model: GPU roofline
//! latency (Titan RTX, fp32/fp16/int8), recursive-FPGA latency (ZCU102,
//! 16-bit), and pipelined-FPGA throughput (ZC706, 16-bit) — a one-screen
//! leaderboard exercising the `edd-hw` + `edd-zoo` public API.
//!
//! Run: `cargo run --release --example zoo_leaderboard`

use edd::hw::gpu::GpuPrecision;
use edd::hw::{
    eval_gpu, eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice,
    GpuDevice, NetworkShape,
};
use edd::zoo;

fn main() {
    let nets: Vec<NetworkShape> = vec![
        zoo::googlenet(),
        zoo::mobilenet_v2(),
        zoo::shufflenet_v2(),
        zoo::resnet18(),
        zoo::vgg16(),
        zoo::mnasnet_a1(),
        zoo::fbnet_c(),
        zoo::proxyless_cpu(),
        zoo::proxyless_mobile(),
        zoo::proxyless_gpu(),
        zoo::edd_net_1(),
        zoo::edd_net_2(),
        zoo::edd_net_3(),
    ];
    let rtx = GpuDevice::titan_rtx();
    let zcu = FpgaDevice::zcu102();
    let zc7 = FpgaDevice::zc706();

    println!(
        "{:<18} {:>8} {:>8} | {:>8} {:>8} {:>8} | {:>10} | {:>10}",
        "Model", "MMACs", "Mparams", "fp32 ms", "fp16 ms", "int8 ms", "ZCU102 ms", "ZC706 fps"
    );
    println!("{}", "-".repeat(100));
    for net in &nets {
        let fp32 = eval_gpu(net, GpuPrecision::Fp32, &rtx).latency_ms;
        let fp16 = eval_gpu(net, GpuPrecision::Fp16, &rtx).latency_ms;
        let int8 = eval_gpu(net, GpuPrecision::Int8, &rtx).latency_ms;
        let rec = eval_recursive(net, &tune_recursive(net, 16, &zcu), &zcu)
            .expect("classes covered")
            .latency_ms;
        let pipe = eval_pipelined(net, &tune_pipelined(net, 16, &zc7), &zc7)
            .expect("stage counts")
            .throughput_fps;
        println!(
            "{:<18} {:>8.0} {:>8.1} | {:>8.2} {:>8.2} {:>8.2} | {:>10.2} | {:>10.1}",
            net.name,
            net.total_work() / 1e6,
            net.total_params() / 1e6,
            fp32,
            fp16,
            int8,
            rec,
            pipe,
        );
    }
    println!(
        "\nGPU: Titan RTX roofline, batch 1. ZCU102: recursive accelerator, 16-bit,\n\
         sqrt-work-optimal DSP split. ZC706: pipelined accelerator, 16-bit,\n\
         work-proportional stage split with per-stage overhead."
    );
}
