#!/usr/bin/env bash
# Runs the supernet-level benchmark suite and records a machine-readable
# snapshot at BENCH_supernet.json (a JSON array of {name, median_ns,
# mean_ns, max_ns, samples} records, one per benchmark, plus one
# kernel_runtime_counters record with pool utilization / dispatch counts /
# scratch high-water sampled over the whole run).
#
# The vendored criterion shim appends JSONL records to the file named by
# EDD_BENCH_JSON; this script collects them and wraps the lines into a
# JSON array with plain sed/awk (no python/jq dependency).
#
# Usage:
#   scripts/bench.sh            # supernet_step benches -> BENCH_supernet.json
#   scripts/bench.sh --all      # also run the tensor_ops benches (stdout only)
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_supernet.json
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

EDD_BENCH_JSON="$tmp" cargo bench -p edd-bench --bench supernet_step

if [[ ! -s "$tmp" ]]; then
    echo "bench.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") benchmarks)"

if [[ "${1:-}" == "--all" ]]; then
    cargo bench -p edd-bench --bench tensor_ops
fi
