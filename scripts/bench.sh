#!/usr/bin/env bash
# Runs the supernet-level benchmark suite and records a machine-readable
# snapshot at BENCH_supernet.json (a JSON array of {name, median_ns,
# mean_ns, max_ns, samples} records, one per benchmark, plus one
# kernel_runtime_counters record with pool utilization / dispatch counts /
# scratch high-water sampled over the whole run).
#
# The vendored criterion shim appends JSONL records to the file named by
# EDD_BENCH_JSON; this script collects them and wraps the lines into a
# JSON array with plain sed/awk (no python/jq dependency).
#
# Usage:
#   scripts/bench.sh            # supernet_step benches -> BENCH_supernet.json
#   scripts/bench.sh --all      # also run the tensor_ops benches (stdout only)
#   scripts/bench.sh --quick    # shrink per-bench time budgets (smoke mode,
#                               # same snapshot + gate) — composable with --all
#
# Regression guard: when a previous BENCH_supernet.json exists, per-benchmark
# medians are compared against it after the run. Any benchmark slower by more
# than EDD_BENCH_TOLERANCE (default 0.10 = 10%) fails the script with exit 1
# — the new snapshot is still written so the regression can be inspected.
#
# The last line of output is always a machine-readable verdict,
# `BENCH_RESULT: PASS` or `BENCH_RESULT: FAIL (exit N)`, for CI log greps.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_supernet.json
tolerance="${EDD_BENCH_TOLERANCE:-0.10}"
run_all=0
# --quick reaches the criterion shim through EDD_BENCH_QUICK (cargo bench
# cannot forward flags to every bench binary), matching the --quick flag
# the bench_serve/bench_sweep/bench_pulse scripts pass to their binaries.
for arg in "$@"; do
    case "$arg" in
        --all) run_all=1 ;;
        --quick) export EDD_BENCH_QUICK=1 ;;
        *) echo "bench.sh: unknown flag $arg (expected --all / --quick)" >&2; exit 2 ;;
    esac
done
tmp=$(mktemp)
prev=$(mktemp)
# The EXIT trap also emits the machine-readable verdict line CI greps for.
trap 'status=$?; rm -f "$tmp" "$prev";
      if [[ $status -eq 0 ]]; then echo "BENCH_RESULT: PASS";
      else echo "BENCH_RESULT: FAIL (exit $status)"; fi' EXIT

# Snapshot the previous run's medians (if any) before overwriting.
have_prev=0
if [[ -s "$out" ]]; then
    have_prev=1
    cp "$out" "$prev"
fi

EDD_BENCH_JSON="$tmp" cargo bench --locked -p edd-bench --bench supernet_step

if [[ ! -s "$tmp" ]]; then
    echo "bench.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") benchmarks)"

# Compare medians against the previous snapshot. Records are one JSON object
# per line (the array wrapper only adds brackets/commas), so plain awk field
# extraction is enough: pull "name" and "median_ns" from any line carrying
# both, skipping the counters record (it has no median).
if [[ "$have_prev" == 1 ]]; then
    if awk -v tol="$tolerance" '
        function extract(line, key,    rest) {
            if (index(line, "\"" key "\":") == 0) return ""
            rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
            sub(/^"/, "", rest)
            sub(/[",}].*$/, "", rest)
            return rest
        }
        FNR == NR {
            name = extract($0, "name"); med = extract($0, "median_ns")
            if (name != "" && med != "") base[name] = med + 0
            next
        }
        {
            name = extract($0, "name"); med = extract($0, "median_ns")
            if (name == "" || med == "" || !(name in base)) next
            old = base[name]; new = med + 0
            ratio = (old > 0) ? new / old : 1
            delta = (ratio - 1) * 100
            printf "  %-50s %12d -> %12d ns (%+.1f%%)\n", name, old, new, delta
            if (new > old * (1 + tol)) { bad++ }
        }
        END { if (bad > 0) exit 1 }
    ' "$prev" "$out"; then
        echo "bench.sh: no regression beyond ${tolerance} tolerance"
    else
        echo "bench.sh: median regression beyond ${tolerance} tolerance" >&2
        echo "  (override with EDD_BENCH_TOLERANCE=<fraction>)" >&2
        exit 1
    fi
fi

if [[ "$run_all" == 1 ]]; then
    cargo bench --locked -p edd-bench --bench tensor_ops
fi
