#!/usr/bin/env bash
# Runs the pulsed streaming-inference bench (exp_pulse) and records a
# machine-readable snapshot at BENCH_pulse.json: one record per tiny-zoo
# engine with the steady-state µs per pushed row, per-push latency
# percentiles, and the peak carried state bytes (the O(window) memory
# bound's measured number). The binary itself checks the first emitted
# window bitwise against the batch engine before timing anything.
#
# exp_pulse appends JSONL records to the file named by EDD_BENCH_JSON;
# this script collects them and wraps the lines into a JSON array with
# plain awk/sed (no python/jq dependency), mirroring scripts/bench.sh.
#
# Regression gate: when a previous BENCH_pulse.json exists, each model's
# us_per_pulse and state_bytes are compared against it. Either figure
# worse by more than EDD_BENCH_TOLERANCE (default 0.10 = 10%) fails the
# script — the new snapshot is still written so the regression can be
# inspected.
#
# Usage:
#   scripts/bench_pulse.sh            # full run -> BENCH_pulse.json
#   scripts/bench_pulse.sh --quick    # shorter stream, same gates
#
# The last line of output is always a machine-readable verdict,
# `BENCH_PULSE_RESULT: PASS` or `BENCH_PULSE_RESULT: FAIL (exit N)`.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_pulse.json
tolerance="${EDD_BENCH_TOLERANCE:-0.10}"
tmp=$(mktemp)
prev=$(mktemp)
trap 'status=$?; rm -f "$tmp" "$prev";
      if [[ $status -eq 0 ]]; then echo "BENCH_PULSE_RESULT: PASS";
      else echo "BENCH_PULSE_RESULT: FAIL (exit $status)"; fi' EXIT

# Snapshot the previous run's figures (if any) before overwriting.
have_prev=0
if [[ -s "$out" ]]; then
    have_prev=1
    cp "$out" "$prev"
fi

quick_flag=()
if [[ "${1:-}" == "--quick" ]]; then
    quick_flag=(--quick)
fi

EDD_BENCH_JSON="$tmp" cargo run --release --locked -q -p edd-bench --bin exp_pulse \
    -- "${quick_flag[@]}" | tee /dev/stderr | grep -q "^PULSE_RESULT:.*bitwise=ok"

if [[ ! -s "$tmp" ]]; then
    echo "bench_pulse.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") records)"

# Gate each model's us_per_pulse and state_bytes against the previous
# snapshot, same awk two-pass extraction as scripts/bench.sh.
if [[ "$have_prev" == 1 ]]; then
    if awk -v tol="$tolerance" '
        function extract(line, key,    rest) {
            if (index(line, "\"" key "\":") == 0) return ""
            rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
            sub(/^"/, "", rest)
            sub(/[",}].*$/, "", rest)
            return rest
        }
        FNR == NR {
            name = extract($0, "name")
            if (name !~ /^pulse_/) next
            us[name] = extract($0, "us_per_pulse") + 0
            sb[name] = extract($0, "state_bytes") + 0
            next
        }
        {
            name = extract($0, "name")
            if (name !~ /^pulse_/ || !(name in us)) next
            new_us = extract($0, "us_per_pulse") + 0
            new_sb = extract($0, "state_bytes") + 0
            d_us = (us[name] > 0) ? (new_us / us[name] - 1) * 100 : 0
            d_sb = (sb[name] > 0) ? (new_sb / sb[name] - 1) * 100 : 0
            printf "  %-30s %9.2f -> %9.2f us/pulse (%+.1f%%), state %d -> %d B (%+.1f%%)\n", \
                name, us[name], new_us, d_us, sb[name], new_sb, d_sb
            if (new_us > us[name] * (1 + tol)) { bad++ }
            if (new_sb > sb[name] * (1 + tol)) { bad++ }
        }
        END { if (bad > 0) exit 1 }
    ' "$prev" "$out"; then
        echo "bench_pulse.sh: no regression beyond ${tolerance} tolerance"
    else
        echo "bench_pulse.sh: us/pulse or state-bytes regression beyond ${tolerance} tolerance" >&2
        echo "  (override with EDD_BENCH_TOLERANCE=<fraction>)" >&2
        exit 1
    fi
fi
