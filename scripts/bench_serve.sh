#!/usr/bin/env bash
# Runs the multi-tenant serving load generator (exp_serve) and records a
# machine-readable snapshot at BENCH_serve.json: one JSON record per
# served model per leg ({completed, batches, occupancy, p50/p95/p99/max
# latency, queue peak}) plus a per-leg total ({reqs_per_sec, elapsed_s}).
#
# exp_serve appends JSONL records to the file named by EDD_BENCH_JSON;
# this script collects them and wraps the lines into a JSON array with
# plain awk/sed (no python/jq dependency), mirroring scripts/bench.sh.
#
# Capacity gate: the frontend leg (zero-cost models, so the serving path
# itself is what's measured) must sustain at least EDD_SERVE_MIN_RPS
# requests/s (default 10000) or the script fails.
#
# Regression gate: when a previous BENCH_serve.json exists, each zoo
# model's p50 latency is compared against it. Any model slower by more
# than EDD_BENCH_TOLERANCE (default 0.10 = 10%) fails the script — the
# new snapshot is still written so the regression can be inspected. The
# zoo leg is engine-bound on small hosts, so this gate tracks the integer
# engine's latency; the serve_engine_* records isolate the same cost
# without the front end for diagnosis.
#
# Usage:
#   scripts/bench_serve.sh            # full run -> BENCH_serve.json
#   scripts/bench_serve.sh --quick    # shorter run, same gate
#
# The last line of output is always a machine-readable verdict,
# `BENCH_SERVE_RESULT: PASS` or `BENCH_SERVE_RESULT: FAIL (exit N)`.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_serve.json
min_rps="${EDD_SERVE_MIN_RPS:-10000}"
tolerance="${EDD_BENCH_TOLERANCE:-0.10}"
tmp=$(mktemp)
prev=$(mktemp)
trap 'status=$?; rm -f "$tmp" "$prev";
      if [[ $status -eq 0 ]]; then echo "BENCH_SERVE_RESULT: PASS";
      else echo "BENCH_SERVE_RESULT: FAIL (exit $status)"; fi' EXIT

# Snapshot the previous run's zoo latencies (if any) before overwriting.
have_prev=0
if [[ -s "$out" ]]; then
    have_prev=1
    cp "$out" "$prev"
fi

quick_flag=()
if [[ "${1:-}" == "--quick" ]]; then
    quick_flag=(--quick)
fi

EDD_BENCH_JSON="$tmp" cargo run --release --locked -q -p edd-bench --bin exp_serve \
    -- "${quick_flag[@]}" | tee /dev/stderr | grep -q "^SERVE_RESULT:"

if [[ ! -s "$tmp" ]]; then
    echo "bench_serve.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") records)"

# Gate on the frontend leg's sustained request rate.
fe_rps=$(awk '
    /"name":"serve_frontend_total"/ {
        rest = substr($0, index($0, "\"reqs_per_sec\":") + 15)
        sub(/[,}].*$/, "", rest)
        print rest
    }
' "$out" | head -1)

if [[ -z "$fe_rps" ]]; then
    echo "bench_serve.sh: frontend total record missing" >&2
    exit 1
fi
if awk -v got="$fe_rps" -v min="$min_rps" 'BEGIN { exit !(got + 0 >= min + 0) }'; then
    echo "bench_serve.sh: frontend sustained ${fe_rps} req/s (>= ${min_rps})"
else
    echo "bench_serve.sh: frontend ${fe_rps} req/s below ${min_rps} floor" >&2
    exit 1
fi

# Gate each zoo model's p50 latency against the previous snapshot, same
# awk two-pass extraction as scripts/bench.sh.
if [[ "$have_prev" == 1 ]]; then
    if awk -v tol="$tolerance" '
        function extract(line, key,    rest) {
            if (index(line, "\"" key "\":") == 0) return ""
            rest = substr(line, index(line, "\"" key "\":") + length(key) + 3)
            sub(/^"/, "", rest)
            sub(/[",}].*$/, "", rest)
            return rest
        }
        function zoo_p50(line,    name, p50) {
            name = extract(line, "name")
            if (name !~ /^serve_zoo_/ || name ~ /_total$/) return ""
            p50 = extract(line, "p50_us")
            if (p50 == "") return ""
            return name SUBSEP p50
        }
        FNR == NR {
            r = zoo_p50($0)
            if (r != "") { split(r, kv, SUBSEP); base[kv[1]] = kv[2] + 0 }
            next
        }
        {
            r = zoo_p50($0)
            if (r == "") next
            split(r, kv, SUBSEP)
            if (!(kv[1] in base)) next
            old = base[kv[1]]; new = kv[2] + 0
            delta = (old > 0) ? (new / old - 1) * 100 : 0
            printf "  %-30s p50 %8d -> %8d us (%+.1f%%)\n", kv[1], old, new, delta
            if (new > old * (1 + tol)) { bad++ }
        }
        END { if (bad > 0) exit 1 }
    ' "$prev" "$out"; then
        echo "bench_serve.sh: no zoo p50 regression beyond ${tolerance} tolerance"
    else
        echo "bench_serve.sh: zoo p50 regression beyond ${tolerance} tolerance" >&2
        echo "  (override with EDD_BENCH_TOLERANCE=<fraction>)" >&2
        exit 1
    fi
fi
