#!/usr/bin/env bash
# Runs the multi-tenant serving load generator (exp_serve) and records a
# machine-readable snapshot at BENCH_serve.json: one JSON record per
# served model per leg ({completed, batches, occupancy, p50/p95/p99/max
# latency, queue peak}) plus a per-leg total ({reqs_per_sec, elapsed_s}).
#
# exp_serve appends JSONL records to the file named by EDD_BENCH_JSON;
# this script collects them and wraps the lines into a JSON array with
# plain awk/sed (no python/jq dependency), mirroring scripts/bench.sh.
#
# Capacity gate: the frontend leg (zero-cost models, so the serving path
# itself is what's measured) must sustain at least EDD_SERVE_MIN_RPS
# requests/s (default 10000) or the script fails. The zoo leg is
# informational — on small hosts it is bound by the integer engine's
# images/s, not the front end.
#
# Usage:
#   scripts/bench_serve.sh            # full run -> BENCH_serve.json
#   scripts/bench_serve.sh --quick    # shorter run, same gate
#
# The last line of output is always a machine-readable verdict,
# `BENCH_SERVE_RESULT: PASS` or `BENCH_SERVE_RESULT: FAIL (exit N)`.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_serve.json
min_rps="${EDD_SERVE_MIN_RPS:-10000}"
tmp=$(mktemp)
trap 'status=$?; rm -f "$tmp";
      if [[ $status -eq 0 ]]; then echo "BENCH_SERVE_RESULT: PASS";
      else echo "BENCH_SERVE_RESULT: FAIL (exit $status)"; fi' EXIT

quick_flag=()
if [[ "${1:-}" == "--quick" ]]; then
    quick_flag=(--quick)
fi

EDD_BENCH_JSON="$tmp" cargo run --release --locked -q -p edd-bench --bin exp_serve \
    -- "${quick_flag[@]}" | tee /dev/stderr | grep -q "^SERVE_RESULT:"

if [[ ! -s "$tmp" ]]; then
    echo "bench_serve.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") records)"

# Gate on the frontend leg's sustained request rate.
fe_rps=$(awk '
    /"name":"serve_frontend_total"/ {
        rest = substr($0, index($0, "\"reqs_per_sec\":") + 15)
        sub(/[,}].*$/, "", rest)
        print rest
    }
' "$out" | head -1)

if [[ -z "$fe_rps" ]]; then
    echo "bench_serve.sh: frontend total record missing" >&2
    exit 1
fi
if awk -v got="$fe_rps" -v min="$min_rps" 'BEGIN { exit !(got + 0 >= min + 0) }'; then
    echo "bench_serve.sh: frontend sustained ${fe_rps} req/s (>= ${min_rps})"
else
    echo "bench_serve.sh: frontend ${fe_rps} req/s below ${min_rps} floor" >&2
    exit 1
fi
