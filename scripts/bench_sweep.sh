#!/usr/bin/env bash
# Runs the multi-target sweep amortization bench (exp_sweep) and records a
# machine-readable snapshot at BENCH_sweep.json: the single-target and
# 3-target weight-phase medians, the amortization ratio (T=3 weight-phase
# wall clock over T=1 — the sweep's headline claim, ~1.0 expected, 1.5
# acceptance bound enforced by the binary itself), and the per-target
# parallel arch-step medians.
#
# exp_sweep appends JSONL records to the file named by EDD_BENCH_JSON;
# this script collects them and wraps the lines into a JSON array with
# plain awk/sed (no python/jq dependency), mirroring scripts/bench.sh.
#
# Regression gate: when a previous BENCH_sweep.json exists, the
# amortization ratio is compared against it. A ratio worse by more than
# EDD_BENCH_TOLERANCE (default 0.10 = 10%) fails the script — the new
# snapshot is still written so the regression can be inspected.
#
# Usage:
#   scripts/bench_sweep.sh            # full run -> BENCH_sweep.json
#   scripts/bench_sweep.sh --quick    # shorter run, same gates
#
# The last line of output is always a machine-readable verdict,
# `BENCH_SWEEP_RESULT: PASS` or `BENCH_SWEEP_RESULT: FAIL (exit N)`.
set -euo pipefail
cd "$(dirname "$0")/.."

out=BENCH_sweep.json
tolerance="${EDD_BENCH_TOLERANCE:-0.10}"
tmp=$(mktemp)
prev=$(mktemp)
trap 'status=$?; rm -f "$tmp" "$prev";
      if [[ $status -eq 0 ]]; then echo "BENCH_SWEEP_RESULT: PASS";
      else echo "BENCH_SWEEP_RESULT: FAIL (exit $status)"; fi' EXIT

# Snapshot the previous run's ratio (if any) before overwriting.
have_prev=0
if [[ -s "$out" ]]; then
    have_prev=1
    cp "$out" "$prev"
fi

quick_flag=()
if [[ "${1:-}" == "--quick" ]]; then
    quick_flag=(--quick)
fi

EDD_BENCH_JSON="$tmp" cargo run --release --locked -q -p edd-bench --bin exp_sweep \
    -- "${quick_flag[@]}" | tee /dev/stderr | grep -q "^SWEEP_RESULT:.*pass=true"

if [[ ! -s "$tmp" ]]; then
    echo "bench_sweep.sh: no records captured" >&2
    exit 1
fi

# JSONL -> JSON array: comma-join all lines but the last.
{
    echo '['
    awk 'NR > 1 { print prev "," } { prev = $0 } END { print prev }' "$tmp" \
        | sed 's/^/  /'
    echo ']'
} > "$out"

echo "wrote $out ($(wc -l < "$tmp") records)"

extract_ratio() {
    awk '
        /"name":"sweep_weight_phase_t3"/ {
            rest = substr($0, index($0, "\"amortization_ratio\":") + 21)
            sub(/[,}].*$/, "", rest)
            print rest
        }
    ' "$1" | head -1
}

ratio=$(extract_ratio "$out")
if [[ -z "$ratio" ]]; then
    echo "bench_sweep.sh: amortization record missing" >&2
    exit 1
fi
echo "bench_sweep.sh: amortization ratio ${ratio} (3 sequential searches would be ~3.0)"

# Gate the ratio against the previous snapshot.
if [[ "$have_prev" == 1 ]]; then
    old_ratio=$(extract_ratio "$prev")
    if [[ -n "$old_ratio" ]]; then
        if awk -v old="$old_ratio" -v new="$ratio" -v tol="$tolerance" \
               'BEGIN { exit !(new + 0 <= (old + 0) * (1 + tol)) }'; then
            printf 'bench_sweep.sh: ratio %s -> %s, within %s tolerance\n' \
                "$old_ratio" "$ratio" "$tolerance"
        else
            printf 'bench_sweep.sh: ratio regressed %s -> %s beyond %s tolerance\n' \
                "$old_ratio" "$ratio" "$tolerance" >&2
            echo "  (override with EDD_BENCH_TOLERANCE=<fraction>)" >&2
            exit 1
        fi
    fi
fi
