#!/usr/bin/env bash
# Bitwise-determinism gate, parameterized by environment:
#
#   EDD_NUM_THREADS  initial worker-pool size (the suites then exercise
#                    7/2/1-thread overrides on top of it)
#   EDD_SIMD         kernel dispatch mode: "scalar" or "avx2"
#   EDD_GEMM         GEMM selection mode: "auto" (shape-specialized
#                    blueprints) or "generic" (single blocked kernel)
#
# CI runs this script as a {1,2,7} × {scalar,avx2} × {auto,generic}
# matrix. The avx2 leg skips (exit 0 with a SKIP marker) on hosts whose
# CPU lacks AVX2, so the matrix stays green on any runner while still
# covering both dispatch paths wherever the silicon allows.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${EDD_SIMD:-}"
if [[ "$mode" == "avx2" ]] && ! grep -qw avx2 /proc/cpuinfo 2>/dev/null; then
    echo "DETERMINISM_RESULT: SKIP (EDD_SIMD=avx2 requested but CPU lacks AVX2)"
    exit 0
fi

echo "determinism: EDD_NUM_THREADS=${EDD_NUM_THREADS:-<default>} \
EDD_SIMD=${mode:-<auto>} EDD_GEMM=${EDD_GEMM:-<auto>}"

cargo test --locked -q -p edd-tensor --test determinism
cargo test --locked -q -p edd-tensor --test qdeterminism
cargo test --locked -q -p edd-core --test determinism
# Serving leg: requests answered through 1-shard and 4-shard dynamic-
# batching servers must match the synchronous InferServer path bit for
# bit, whatever batches the coalescer happens to form.
cargo test --locked -q -p edd-core --test serve_determinism
# IR-pipeline leg: every edd-ir pass configuration must reproduce the
# direct QuantizedModel::compile outputs bitwise on the tiny zoo, and a
# model pushed through compile -> .eddm artifact -> hot-load -> sharded
# serving must match the direct sync path bit for bit.
cargo test --locked -q -p edd-zoo --test ir_equivalence
cargo test --locked -q -p edd-zoo --test artifact_serve
# Sweep leg: a 3-target sweep (shared weight phase, per-target arch steps
# fanned over the pool) must produce byte-identical per-target derived
# architectures, Pareto fronts, and histories across 4-vs-1 worker
# threads and across a kill/resume through a sweep-*.edds snapshot.
cargo test --locked -q -p edd-core --test sweep_determinism
# Pulse leg: streaming (pulsed) execution of every tiny-zoo engine must
# match the batch engine bit for bit on identical sliding windows, a
# stream interrupted and resumed mid-window must continue bitwise, and
# carried state must stay bounded by the window geometry regardless of
# stream length.
cargo test --locked -q -p edd-zoo --test pulse_determinism

echo "DETERMINISM_RESULT: PASS"
