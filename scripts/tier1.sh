#!/usr/bin/env bash
# Tier-1 gate: the checks every PR must keep green.
#
#   1. release build of the full workspace (benches compile here too);
#   2. format gate: rustfmt clean across the workspace;
#   3. lint gate: clippy clean across the workspace;
#   4. the default test suite;
#   5. the tensor crate's suite on its own, which carries the kernel
#      oracle, gradcheck, and thread-determinism tests;
#   6. the runtime crate's suite on its own, which carries the serving
#      front end's deterministic batcher simulation (serve_sim), the
#      multi-producer concurrency stress + property suite (serve_stress),
#      and the telemetry histogram / InferStats accounting tests;
#   7. docs gate: rustdoc for the whole workspace with warnings denied
#      (broken intra-doc links and malformed doc comments are errors),
#      plus a release build of every example in examples/.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --locked --release --workspace
cargo fmt --check
cargo clippy --locked --workspace -- -D warnings
cargo test --locked -q --workspace
cargo test --locked -q -p edd-tensor
cargo test --locked -q -p edd-runtime
RUSTDOCFLAGS="-D warnings" cargo doc --locked --no-deps --workspace
cargo build --locked --release --examples

echo "tier1: all green"
