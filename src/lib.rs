//! # edd
//!
//! Umbrella crate for the EDD reproduction ("EDD: Efficient Differentiable
//! DNN Architecture and Implementation Co-search for Embedded AI Solutions",
//! DAC 2020). Re-exports every workspace crate under one roof so examples
//! and downstream users can depend on a single package.
//!
//! * [`tensor`] — reverse-mode autodiff engine ([`edd_tensor`]).
//! * [`nn`] — neural-network layers ([`edd_nn`]).
//! * [`data`] — synthetic dataset generator ([`edd_data`]).
//! * [`hw`] — analytic hardware performance/resource models ([`edd_hw`]).
//! * [`core`] — the EDD co-search itself ([`edd_core`]).
//! * [`ir`] — typed model-graph IR, optimization passes and hot-loadable
//!   compiled artifacts ([`edd_ir`]).
//! * [`runtime`] — crash-safe snapshots and structured telemetry
//!   ([`edd_runtime`]).
//! * [`zoo`] — baseline and published-EDD architecture descriptors
//!   ([`edd_zoo`]).

#![warn(missing_docs)]

pub use edd_core as core;
pub use edd_data as data;
pub use edd_hw as hw;
pub use edd_ir as ir;
pub use edd_nn as nn;
pub use edd_runtime as runtime;
pub use edd_tensor as tensor;
pub use edd_zoo as zoo;
