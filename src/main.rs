//! `edd` — command-line front-end for the EDD co-search reproduction.
//!
//! ```text
//! edd search  --target fpga-recursive --blocks 4 --classes 6 --epochs 8 --out arch.json
//! edd eval    --arch arch.json
//! edd qinfer  --arch arch.json
//! edd serve   --models 3 --requests 600
//! edd zoo
//! edd devices
//! ```
//!
//! `search` runs the co-search on SynthImageNet and writes the derived
//! architecture as JSON; `eval` loads such a JSON artifact and reports its
//! modeled latency/throughput/resources on every hardware model; `qinfer`
//! compiles an architecture into the true integer inference engine
//! (int8/int4 weights, fixed-point requantization) and serves batches
//! through it; `serve` runs the multi-tenant dynamic-batching server over
//! the compiled tiny zoo under a closed-loop synthetic load; `zoo` prints
//! the model-zoo leaderboard; `devices` lists the built-in device
//! descriptors.

use edd::core::{
    calibrate, CoSearch, CoSearchConfig, DerivedArch, DeviceTarget, QatModel, QuantizedModel,
    SearchSpace,
};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::gpu::GpuPrecision;
use edd::hw::{
    eval_gpu, eval_pipelined, eval_recursive, predicted_throughput_fps, tune_pipelined,
    tune_recursive, AccelDevice, FpgaDevice, GpuDevice,
};
use edd::nn::Module;
use edd::runtime::InferServer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed command-line options: positional subcommand + `--key value`
/// flags.
#[derive(Debug, Default)]
struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Parses `argv`-style input. Flags must be `--key value` pairs; bare
/// `--key` (no value) is treated as `"true"`.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = argv.iter().peekable();
    if let Some(cmd) = iter.next() {
        args.command = cmd.clone();
    }
    while let Some(token) = iter.next() {
        let Some(key) = token.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{token}`"));
        };
        let value = match iter.peek() {
            Some(v) if !v.starts_with("--") => iter.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        args.flags.insert(key.to_string(), value);
    }
    Ok(args)
}

impl Args {
    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Resolves a target name to a [`DeviceTarget`].
fn parse_target(name: &str) -> Result<DeviceTarget, String> {
    match name {
        "gpu" => Ok(DeviceTarget::Gpu(GpuDevice::titan_rtx())),
        "fpga-recursive" => Ok(DeviceTarget::FpgaRecursive(FpgaDevice::zcu102())),
        "fpga-pipelined" => Ok(DeviceTarget::FpgaPipelined(FpgaDevice::zc706())),
        "dedicated" => Ok(DeviceTarget::Dedicated(AccelDevice::loom_like())),
        other => Err(format!(
            "unknown target `{other}` (expected gpu | fpga-recursive | fpga-pipelined | dedicated)"
        )),
    }
}

/// Installs a JSONL telemetry sink when `--trace-out` is given. Returns
/// whether a sink was installed (so the caller can flush it at the end).
fn install_trace_sink(args: &Args) -> Result<bool, String> {
    let Some(path) = args.flags.get("trace-out") else {
        return Ok(false);
    };
    let sink = edd::runtime::JsonlSink::create(std::path::Path::new(path))
        .map_err(|e| format!("opening trace file {path}: {e}"))?;
    edd::runtime::telemetry::set_global(std::sync::Arc::new(sink));
    Ok(true)
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let target = parse_target(&args.get_str("target", "fpga-recursive"))?;
    let blocks = args.get_usize("blocks", 4)?;
    let classes = args.get_usize("classes", 6)?;
    let epochs = args.get_usize("epochs", 8)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let out = args.get_str("out", "edd_arch.json");
    let ckpt_dir = args.flags.get("checkpoint-dir").cloned();
    let ckpt_every = args.get_usize("checkpoint-every", 1)?;
    let ckpt_keep = args.get_usize("checkpoint-keep", 3)?;
    let resume = args.flags.get("resume").cloned();
    let tracing = install_trace_sink(args)?;

    let space = SearchSpace::tiny(blocks, 16, classes, target.default_quant_bits());
    println!(
        "searching {} blocks x {} ops x {} quantizations for {} ({} epochs)...",
        space.num_blocks(),
        space.num_ops(),
        space.num_quant(),
        target.label(),
        epochs
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: (epochs / 5).max(1),
        ..CoSearchConfig::default()
    };
    let data = SynthDataset::new(SynthConfig {
        num_classes: classes,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(6, 16, 1);
    let val = data.split(3, 16, 2);
    let mut search = CoSearch::new(space, target, config, &mut rng).map_err(|e| e.to_string())?;
    if let Some(dir) = &ckpt_dir {
        search
            .checkpoint_into(dir)
            .checkpoint_every(ckpt_every)
            .checkpoint_keep(ckpt_keep);
        println!("checkpointing into {dir} (every {ckpt_every} epoch(s), keep {ckpt_keep})");
    }
    if let Some(path) = &resume {
        search
            .resume_from(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("resuming from {path}");
    }
    let outcome = search
        .run(&train, &val, &mut rng)
        .map_err(|e| e.to_string())?;
    if tracing {
        edd::runtime::telemetry::global().flush();
    }
    for h in &outcome.history {
        println!(
            "  epoch {:>2}: train acc {:.2}, val acc {:.2}, E[perf] {:.4}, E[res] {:.0}",
            h.epoch, h.train_acc, h.val_acc, h.expected_perf, h.expected_res
        );
    }
    println!("\n{}", outcome.derived.summary());
    let json = outcome.derived.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} bytes)", json.len());
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args
        .flags
        .get("arch")
        .ok_or("eval requires --arch <file.json>")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let arch = DerivedArch::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    println!("{}", arch.summary());
    let net = arch.to_network_shape();
    println!(
        "work: {:.1} MMACs, params: {:.2} M, compute layers: {}",
        net.total_work() / 1e6,
        net.total_params() / 1e6,
        net.total_compute_layers()
    );

    let rtx = GpuDevice::titan_rtx();
    for p in GpuPrecision::all() {
        let r = eval_gpu(&net, p, &rtx);
        println!("GPU ({}) @ {:?}: {:.3} ms", rtx.name, p, r.latency_ms);
    }
    let zcu = FpgaDevice::zcu102();
    let rec =
        eval_recursive(&net, &tune_recursive(&net, 16, &zcu), &zcu).map_err(|e| e.to_string())?;
    println!(
        "FPGA recursive ({}) @16b: {:.3} ms, {:.0} DSPs",
        zcu.name, rec.latency_ms, rec.dsps
    );
    let zc7 = FpgaDevice::zc706();
    let pipe =
        eval_pipelined(&net, &tune_pipelined(&net, 16, &zc7), &zc7).map_err(|e| e.to_string())?;
    println!(
        "FPGA pipelined ({}) @16b: {:.1} fps, {:.0} DSPs",
        zc7.name, pipe.throughput_fps, pipe.dsps
    );
    Ok(())
}

/// `edd qinfer`: compile a derived architecture into the true integer
/// inference engine and serve batches through it — briefly QAT-trains the
/// network on SynthImageNet, calibrates activation scales, compiles to
/// int8/int4 weights with fixed-point requantization, and reports measured
/// throughput next to the Stage-1 `Perf^q` prediction.
fn cmd_qinfer(args: &Args) -> Result<(), String> {
    let batch = args.get_usize("batch", 8)?;
    let batches = args.get_usize("batches", 4)?;
    let epochs = args.get_usize("qat-epochs", 2)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let arch = match args.flags.get("arch") {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            DerivedArch::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?
        }
        None => edd::zoo::tiny_derived_arch(),
    };
    println!("{}", arch.summary());

    let mut rng = StdRng::seed_from_u64(seed);
    let model = QatModel::new(&arch, &mut rng);
    let data = SynthDataset::new(SynthConfig {
        num_classes: arch.space.num_classes,
        image_size: arch.space.image_size,
        ..SynthConfig::default()
    });
    let train = data.split(batches, batch, 1);
    let test = data.split(batches.max(1), batch, 2);
    let mut opt = edd::tensor::optim::Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for epoch in 0..epochs {
        let stats = edd::nn::train_epoch(&model, &mut opt, &train).map_err(|e| e.to_string())?;
        println!(
            "qat epoch {epoch}: loss {:.3}, top1 {:.2}",
            stats.loss, stats.top1
        );
    }
    model.set_training(false);

    let calib_data: Vec<_> = train.iter().map(|b| b.images.clone()).collect();
    let calib = calibrate(&model, &calib_data).map_err(|e| e.to_string())?;
    let q = QuantizedModel::compile(&model, &arch, &calib);
    println!(
        "\ncompiled integer engine: block bits {:?}, {} weight bytes, input scale {:.5}",
        q.block_bits(),
        q.weight_bytes(),
        q.input_scale()
    );

    let block_bits = q.block_bits().to_vec();
    let server = InferServer::new(q);
    let mut correct = 0usize;
    let mut total = 0usize;
    for b in &test {
        let n = b.labels.len();
        let logits = server
            .infer(b.images.data(), n)
            .map_err(|e| e.to_string())?;
        let classes = logits.len() / n;
        for i in 0..n {
            let row = &logits[i * classes..(i + 1) * classes];
            let arg = (0..classes).fold(0, |best, j| if row[j] > row[best] { j } else { best });
            correct += usize::from(arg == b.labels[i]);
            total += 1;
        }
    }
    let stats = server.stats();
    println!(
        "served {} requests / {} images entirely in integer arithmetic: \
         top1 {:.2}, mean latency {:.1} µs, {:.0} images/s",
        stats.requests,
        stats.images,
        correct as f64 / total.max(1) as f64,
        stats.mean_latency_us(),
        stats.images_per_sec()
    );

    let device = AccelDevice::loom_like();
    let net = arch.to_network_shape();
    let mut q_per_op = vec![8u32; net.ops.len()];
    q_per_op[1..=block_bits.len()].copy_from_slice(&block_bits);
    println!(
        "Stage-1 Perf^q prediction on {}: {:.0} images/s at Φ = {:?} \
         (ratios, not absolutes, are the comparable quantity — see EXPERIMENTS.md)",
        device.name,
        predicted_throughput_fps(&net, &q_per_op, &device),
        block_bits
    );
    Ok(())
}

/// `edd serve`: compile the tiny model zoo into integer engines and drive
/// the multi-tenant dynamic-batching server with a closed-loop synthetic
/// workload — several producer threads, each keeping a bounded window of
/// in-flight requests spread round-robin across the models — then report
/// per-model completion counts, batch occupancy, and latency percentiles.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let models = args.get_usize("models", 3)?.clamp(1, 3);
    let requests = args.get_usize("requests", 600)?;
    let producers = args.get_usize("producers", 2)?.max(1);
    let window = args.get_usize("window", 16)?.max(1);
    let seed = args.get_usize("seed", 42)? as u64;
    let config = edd::runtime::ServeConfig {
        batcher: edd::runtime::BatcherConfig {
            max_batch: args.get_usize("max-batch", 16)?,
            max_delay_us: args.get_usize("max-delay-us", 500)? as u64,
            queue_depth: args.get_usize("queue-depth", 1024)?,
        },
        shards: args.get_usize("shards", 1)?,
    };

    println!("compiling {models} tiny-zoo integer engine(s)...");
    let zoo: Vec<(String, std::sync::Arc<QuantizedModel>)> = edd::zoo::compile_tiny_zoo(seed)
        .into_iter()
        .take(models)
        .map(|(name, q)| (name, std::sync::Arc::new(q)))
        .collect();
    for (name, q) in &zoo {
        println!(
            "  {name}: block bits {:?}, {} weight bytes",
            q.block_bits(),
            q.weight_bytes()
        );
    }
    let image_len = edd::runtime::BatchModel::image_len(zoo[0].1.as_ref());
    println!(
        "serving with max_batch {}, max_delay {} µs, queue depth {}, {} shard(s)/model; \
         {producers} producer(s) x {requests} request(s), window {window}\n",
        config.batcher.max_batch,
        config.batcher.max_delay_us,
        config.batcher.queue_depth,
        config.shards
    );

    let server = edd::runtime::Server::start(zoo, config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let pool: Vec<Vec<f32>> = (0..8)
        .map(|_| {
            let a = edd::tensor::Array::randn(&[1, 3, 16, 16], 1.0, &mut rng);
            assert_eq!(a.data().len(), image_len);
            a.data().to_vec()
        })
        .collect();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let server = &server;
            let pool = &pool;
            scope.spawn(move || {
                let mut inflight = std::collections::VecDeque::new();
                for i in 0..requests {
                    let img = pool[(p * 5 + i) % pool.len()].clone();
                    match server.submit((p + i) % models, img) {
                        Ok(t) => inflight.push_back(t),
                        Err(e) => eprintln!("producer {p}: request {i} rejected: {e}"),
                    }
                    if inflight.len() >= window {
                        if let Err(e) = inflight.pop_front().expect("nonempty").wait() {
                            eprintln!("producer {p}: request failed: {e}");
                        }
                    }
                }
                for t in inflight {
                    if let Err(e) = t.wait() {
                        eprintln!("producer {p}: request failed: {e}");
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "model", "completed", "rejected", "p50us", "p95us", "p99us", "occup"
    );
    for s in &stats {
        println!(
            "{:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7.2}",
            s.name,
            s.completed,
            s.rejected_full + s.rejected_shutdown,
            s.latency.p50_us,
            s.latency.p95_us,
            s.latency.p99_us,
            s.mean_occupancy(),
        );
    }
    let completed: u64 = stats.iter().map(|s| s.completed).sum();
    let failed: u64 = stats.iter().map(|s| s.failed).sum();
    println!("\n{completed} request(s) completed, {failed} failed");
    if failed > 0 {
        return Err(format!("{failed} request(s) failed"));
    }
    Ok(())
}

fn cmd_zoo() {
    let nets = [
        edd::zoo::googlenet(),
        edd::zoo::mobilenet_v2(),
        edd::zoo::shufflenet_v2(),
        edd::zoo::resnet18(),
        edd::zoo::vgg16(),
        edd::zoo::mnasnet_a1(),
        edd::zoo::fbnet_c(),
        edd::zoo::proxyless_cpu(),
        edd::zoo::proxyless_mobile(),
        edd::zoo::proxyless_gpu(),
        edd::zoo::edd_net_1(),
        edd::zoo::edd_net_2(),
        edd::zoo::edd_net_3(),
    ];
    let rtx = GpuDevice::titan_rtx();
    let zcu = FpgaDevice::zcu102();
    println!(
        "{:<18} {:>9} {:>9} {:>11} {:>12}",
        "model", "MMACs", "Mparams", "GPU fp32", "ZCU102 16b"
    );
    for net in &nets {
        let gpu = eval_gpu(net, GpuPrecision::Fp32, &rtx).latency_ms;
        let rec = eval_recursive(net, &tune_recursive(net, 16, &zcu), &zcu)
            .expect("tuned")
            .latency_ms;
        println!(
            "{:<18} {:>9.0} {:>9.1} {:>9.2}ms {:>10.2}ms",
            net.name,
            net.total_work() / 1e6,
            net.total_params() / 1e6,
            gpu,
            rec
        );
    }
}

fn cmd_devices() {
    println!("GPUs:");
    for d in [
        GpuDevice::titan_rtx(),
        GpuDevice::gtx_1080_ti(),
        GpuDevice::p100(),
    ] {
        println!(
            "  {:<14} {:>5.1} fp32 TMAC/s, {:>5.0} GB/s, {:.2} ms/layer",
            d.name, d.peak_tmacs_fp32, d.mem_bw_gbs, d.per_layer_overhead_ms
        );
    }
    println!("FPGAs:");
    for d in [FpgaDevice::zcu102(), FpgaDevice::zc706()] {
        println!(
            "  {:<14} {:>5.0} DSPs @ {:.0} MHz (eff {:.2})",
            d.name, d.dsp_budget, d.clock_mhz, d.efficiency
        );
    }
    let a = AccelDevice::loom_like();
    println!("Dedicated:");
    println!(
        "  {:<14} {:>5.1} TMAC/s @16x16b, {}-bit activations",
        a.name,
        a.peak_macs_16x16 / 1e12,
        a.activation_bits
    );
}

const USAGE: &str = "usage: edd <search|eval|qinfer|serve|zoo|devices> [--flags]\n\
  search  --target gpu|fpga-recursive|fpga-pipelined|dedicated \\\n          --blocks N --classes C --epochs E --seed S --out FILE \\\n          --checkpoint-dir DIR --checkpoint-every N --checkpoint-keep K \\\n          --resume PATH --trace-out FILE.jsonl\n\
  eval    --arch FILE\n\
  qinfer  --arch FILE --batch N --batches K --qat-epochs E --seed S\n\
  serve   --models N --requests R --producers P --window W --shards S \\\n          --max-batch B --max-delay-us D --queue-depth Q --seed S\n\
  zoo\n\
  devices\n\
\n\
  --checkpoint-dir   write crash-safe search snapshots into DIR after each\n\
                     qualifying epoch (search-<epoch>.edds)\n\
  --checkpoint-every snapshot cadence in epochs (default 1; 0 = final only)\n\
  --checkpoint-keep  retain only the newest K snapshots (default 3)\n\
  --resume           continue bit-identically from a snapshot file, or from\n\
                     the newest snapshot in a checkpoint directory\n\
  --trace-out        stream structured telemetry (epoch metrics, phase\n\
                     timings, kernel counters) as JSON lines to FILE\n\
\n\
  serve compiles up to 3 tiny-zoo integer engines, serves them all from\n\
  one multi-tenant dynamic-batching server (bounded queues with\n\
  backpressure, deadline-based batch coalescing, per-model worker\n\
  shards), drives a closed-loop synthetic workload against it, and\n\
  reports per-model latency percentiles and batch occupancy";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "search" => cmd_search(&args),
        "eval" => cmd_eval(&args),
        "qinfer" => cmd_qinfer(&args),
        "serve" => cmd_serve(&args),
        "zoo" => {
            cmd_zoo();
            Ok(())
        }
        "devices" => {
            cmd_devices();
            Ok(())
        }
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| (*v).to_string()).collect()
    }

    #[test]
    fn parse_basic_flags() {
        let a = parse_args(&argv(&["search", "--blocks", "5", "--quick"])).unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.get_usize("blocks", 0).unwrap(), 5);
        assert_eq!(a.get_str("quick", "false"), "true");
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_positional() {
        assert!(parse_args(&argv(&["search", "oops"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_number() {
        let a = parse_args(&argv(&["search", "--blocks", "many"])).unwrap();
        assert!(a.get_usize("blocks", 0).is_err());
    }

    #[test]
    fn target_names_resolve() {
        assert!(parse_target("gpu").is_ok());
        assert!(parse_target("fpga-recursive").is_ok());
        assert!(parse_target("fpga-pipelined").is_ok());
        assert!(parse_target("dedicated").is_ok());
        assert!(parse_target("tpu").is_err());
    }
}
