//! `edd` — command-line front-end for the EDD co-search reproduction.
//!
//! ```text
//! edd search  --target fpga-recursive --blocks 4 --classes 6 --epochs 8 --out arch.json
//! edd eval    --arch arch.json
//! edd compile --arch arch.json --out model.eddm --passes all
//! edd qinfer  --arch arch.json            # or: --artifact model.eddm
//! edd serve   --models 3 --requests 600   # or: --artifacts a.eddm,b.eddm
//! edd stream  --rows 96 --hop 8 --verify  # or: --artifact model.eddm
//! edd zoo
//! edd devices
//! ```
//!
//! `search` runs the co-search on SynthImageNet and writes the derived
//! architecture as JSON; `eval` loads such a JSON artifact and reports its
//! modeled latency/throughput/resources on every hardware model; `compile`
//! QAT-trains and calibrates an architecture, lowers it through the
//! `edd-ir` pass pipeline, and writes a hot-loadable `.eddm` model
//! artifact; `qinfer` compiles an architecture into the true integer
//! inference engine (int8/int4 weights, fixed-point requantization) — or
//! hot-loads a compiled artifact — and serves batches through it; `serve`
//! runs the multi-tenant dynamic-batching server over the compiled tiny
//! zoo (or hot-loaded artifacts) under a closed-loop synthetic load;
//! `stream` converts an engine into a pulsed model and classifies a
//! synthetic long signal one row-slice at a time through sliding windows
//! with bounded carried state; `zoo` prints the model-zoo leaderboard;
//! `devices` lists the built-in device descriptors.

use edd::core::{
    calibrate, lower_to_graph, Calibration, CoSearch, CoSearchConfig, DerivedArch, DeviceTarget,
    QatModel, QuantizedModel, SearchSpace, SweepSearch,
};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::gpu::GpuPrecision;
use edd::hw::{
    eval_gpu, eval_pipelined, eval_recursive, predicted_throughput_fps, tune_pipelined,
    tune_recursive, AccelDevice, FpgaDevice, GpuDevice,
};
use edd::ir::{artifact, CompiledModel, PassConfig, PASS_NAMES};
use edd::nn::Module;
use edd::runtime::InferServer;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::process::ExitCode;

/// Parsed command-line options: positional subcommand + `--key value`
/// flags.
#[derive(Debug, Default)]
struct Args {
    command: String,
    flags: HashMap<String, String>,
}

/// Parses `argv`-style input. Flags must be `--key value` pairs; bare
/// `--key` (no value) is treated as `"true"`.
fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args::default();
    let mut iter = argv.iter().peekable();
    if let Some(cmd) = iter.next() {
        args.command = cmd.clone();
    }
    while let Some(token) = iter.next() {
        let Some(key) = token.strip_prefix("--") else {
            return Err(format!("unexpected positional argument `{token}`"));
        };
        let value = match iter.peek() {
            Some(v) if !v.starts_with("--") => iter.next().expect("peeked").clone(),
            _ => "true".to_string(),
        };
        args.flags.insert(key.to_string(), value);
    }
    Ok(args)
}

impl Args {
    fn get_usize(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key} expects a number, got `{v}`")),
        }
    }

    fn get_str(&self, key: &str, default: &str) -> String {
        self.flags
            .get(key)
            .cloned()
            .unwrap_or_else(|| default.to_string())
    }
}

/// Resolves a target name to a [`DeviceTarget`].
fn parse_target(name: &str) -> Result<DeviceTarget, String> {
    match name {
        "gpu" => Ok(DeviceTarget::Gpu(GpuDevice::titan_rtx())),
        "fpga-recursive" => Ok(DeviceTarget::FpgaRecursive(FpgaDevice::zcu102())),
        "fpga-pipelined" => Ok(DeviceTarget::FpgaPipelined(FpgaDevice::zc706())),
        "dedicated" => Ok(DeviceTarget::Dedicated(AccelDevice::loom_like())),
        other => Err(format!(
            "unknown target `{other}` (expected gpu | fpga-recursive | fpga-pipelined | dedicated)"
        )),
    }
}

/// Parses a `--passes` spec: `all`, `none`, or a comma-separated subset
/// of [`PASS_NAMES`].
fn parse_passes(spec: &str) -> Result<PassConfig, String> {
    match spec {
        "all" => Ok(PassConfig::all()),
        "none" => Ok(PassConfig::none()),
        list => {
            let mut cfg = PassConfig::none();
            for name in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
                cfg.set(name, true).map_err(|unknown| {
                    format!(
                        "unknown pass `{unknown}` (expected all | none | comma-list of {})",
                        PASS_NAMES.join(", ")
                    )
                })?;
            }
            Ok(cfg)
        }
    }
}

/// Installs a JSONL telemetry sink when `--trace-out` is given. Returns
/// whether a sink was installed (so the caller can flush it at the end).
fn install_trace_sink(args: &Args) -> Result<bool, String> {
    let Some(path) = args.flags.get("trace-out") else {
        return Ok(false);
    };
    let sink = edd::runtime::JsonlSink::create(std::path::Path::new(path))
        .map_err(|e| format!("opening trace file {path}: {e}"))?;
    edd::runtime::telemetry::set_global(std::sync::Arc::new(sink));
    Ok(true)
}

fn cmd_search(args: &Args) -> Result<(), String> {
    let target = parse_target(&args.get_str("target", "fpga-recursive"))?;
    let blocks = args.get_usize("blocks", 4)?;
    let classes = args.get_usize("classes", 6)?;
    let epochs = args.get_usize("epochs", 8)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let out = args.get_str("out", "edd_arch.json");
    let ckpt_dir = args.flags.get("checkpoint-dir").cloned();
    let ckpt_every = args.get_usize("checkpoint-every", 1)?;
    let ckpt_keep = args.get_usize("checkpoint-keep", 3)?;
    let ckpt_label = args.get_str("checkpoint-label", "");
    let resume = args.flags.get("resume").cloned();
    let tracing = install_trace_sink(args)?;

    let space = SearchSpace::tiny(blocks, 16, classes, target.default_quant_bits());
    println!(
        "searching {} blocks x {} ops x {} quantizations for {} ({} epochs)...",
        space.num_blocks(),
        space.num_ops(),
        space.num_quant(),
        target.label(),
        epochs
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: (epochs / 5).max(1),
        ..CoSearchConfig::default()
    };
    let data = SynthDataset::new(SynthConfig {
        num_classes: classes,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(6, 16, 1);
    let val = data.split(3, 16, 2);
    let mut search = CoSearch::new(space, target, config, &mut rng).map_err(|e| e.to_string())?;
    if let Some(dir) = &ckpt_dir {
        search
            .checkpoint_into(dir)
            .checkpoint_every(ckpt_every)
            .checkpoint_keep(ckpt_keep)
            .checkpoint_label(&ckpt_label);
        println!("checkpointing into {dir} (every {ckpt_every} epoch(s), keep {ckpt_keep})");
    } else if !ckpt_label.is_empty() {
        search.checkpoint_label(&ckpt_label);
    }
    if let Some(path) = &resume {
        search
            .resume_from(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("resuming from {path}");
    }
    let outcome = search
        .run(&train, &val, &mut rng)
        .map_err(|e| e.to_string())?;
    if tracing {
        edd::runtime::telemetry::global().flush();
    }
    for h in &outcome.history {
        println!(
            "  epoch {:>2}: train acc {:.2}, val acc {:.2}, E[perf] {:.4}, E[res] {:.0}",
            h.epoch, h.train_acc, h.val_acc, h.expected_perf, h.expected_res
        );
    }
    println!("\n{}", outcome.derived.summary());
    let json = outcome.derived.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("writing {out}: {e}"))?;
    println!("wrote {out} ({} bytes)", json.len());
    Ok(())
}

/// Parses a comma-separated `--targets` list and computes the shared
/// quantization menu: the intersection of the per-target menus, in the
/// first target's order. The sweep trains one supernet for all targets,
/// so every searched bit-width must have an implementation on each.
fn parse_sweep_targets(spec: &str) -> Result<(Vec<DeviceTarget>, Vec<u32>), String> {
    let mut targets = Vec::new();
    for name in spec.split(',').map(str::trim).filter(|s| !s.is_empty()) {
        targets.push(parse_target(name)?);
    }
    if targets.is_empty() {
        return Err("sweep requires --targets t1,t2,... (at least one)".into());
    }
    let mut menu = targets[0].default_quant_bits();
    for t in &targets[1..] {
        let theirs = t.default_quant_bits();
        menu.retain(|q| theirs.contains(q));
    }
    if menu.is_empty() {
        return Err(format!(
            "targets `{spec}` share no quantization bit-width: their menus are disjoint"
        ));
    }
    Ok((targets, menu))
}

/// `edd sweep`: multi-target co-search — one shared supernet weight phase
/// amortized over all targets, per-target architecture states descended in
/// parallel, per-target Pareto fronts over
/// `(val acc, ms/frame, DSPs)`. Writes one derived-architecture JSON per
/// target plus a cross-target Pareto summary.
fn cmd_sweep(args: &Args) -> Result<(), String> {
    let spec = args.get_str("targets", "gpu,fpga-recursive,fpga-pipelined");
    let (targets, menu) = parse_sweep_targets(&spec)?;
    let blocks = args.get_usize("blocks", 4)?;
    let classes = args.get_usize("classes", 6)?;
    let epochs = args.get_usize("epochs", 8)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let stop_after = args.get_usize("stop-after", 0)?;
    let out_prefix = args.get_str("out-prefix", "edd_sweep");
    let ckpt_dir = args.flags.get("checkpoint-dir").cloned();
    let ckpt_every = args.get_usize("checkpoint-every", 1)?;
    let ckpt_keep = args.get_usize("checkpoint-keep", 3)?;
    let resume = args.flags.get("resume").cloned();
    let tracing = install_trace_sink(args)?;

    let space = SearchSpace::tiny(blocks, 16, classes, menu.clone());
    println!(
        "sweeping {} target(s) [{}] over {} blocks x {} ops x quantizations {:?} ({} epochs)...",
        targets.len(),
        targets
            .iter()
            .map(DeviceTarget::key)
            .collect::<Vec<_>>()
            .join(", "),
        space.num_blocks(),
        space.num_ops(),
        menu,
        epochs
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let config = CoSearchConfig {
        epochs,
        warmup_epochs: (epochs / 5).max(1),
        ..CoSearchConfig::default()
    };
    let data = SynthDataset::new(SynthConfig {
        num_classes: classes,
        image_size: 16,
        ..SynthConfig::default()
    });
    let train = data.split(6, 16, 1);
    let val = data.split(3, 16, 2);
    let mut sweep =
        SweepSearch::new(space, targets, config, &mut rng).map_err(|e| e.to_string())?;
    if let Some(dir) = &ckpt_dir {
        sweep
            .checkpoint_into(dir)
            .checkpoint_every(ckpt_every)
            .checkpoint_keep(ckpt_keep);
        println!("checkpointing into {dir} (every {ckpt_every} epoch(s), keep {ckpt_keep})");
    }
    if let Some(path) = &resume {
        sweep
            .resume_from(std::path::Path::new(path))
            .map_err(|e| e.to_string())?;
        println!("resuming from {path}");
    }
    let outcome = if stop_after > 0 {
        sweep.run_until(&train, &val, &mut rng, stop_after)
    } else {
        sweep.run(&train, &val, &mut rng)
    }
    .map_err(|e| e.to_string())?;
    if tracing {
        edd::runtime::telemetry::global().flush();
    }

    for t in &outcome.targets {
        println!("\n== {} ==", t.target.label());
        for h in &t.outcome.history {
            println!(
                "  epoch {:>2}: train acc {:.2}, val acc {:.2}, E[perf] {:.4}, E[res] {:.0}",
                h.epoch, h.train_acc, h.val_acc, h.expected_perf, h.expected_res
            );
        }
        println!("  Pareto front ({} point(s)):", t.front.len());
        for p in &t.front {
            println!(
                "    epoch {:>2}: val acc {:.2}, {:.3} ms/frame, {:.0} DSPs",
                p.epoch, p.val_acc, p.perf_ms, p.resource
            );
        }
        let json = t.outcome.derived.to_json().map_err(|e| e.to_string())?;
        let path = format!("{out_prefix}-{}.json", t.target.key());
        std::fs::write(&path, &json).map_err(|e| format!("writing {path}: {e}"))?;
        println!("  wrote {path} ({} bytes)", json.len());
    }
    let summary = outcome.summary_json();
    let summary_path = format!("{out_prefix}-pareto.json");
    std::fs::write(&summary_path, &summary).map_err(|e| format!("writing {summary_path}: {e}"))?;
    println!("\nwrote {summary_path} ({} bytes)", summary.len());
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let path = args
        .flags
        .get("arch")
        .ok_or("eval requires --arch <file.json>")?;
    let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let arch = DerivedArch::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))?;
    println!("{}", arch.summary());
    let net = arch.to_network_shape();
    println!(
        "work: {:.1} MMACs, params: {:.2} M, compute layers: {}",
        net.total_work() / 1e6,
        net.total_params() / 1e6,
        net.total_compute_layers()
    );

    let rtx = GpuDevice::titan_rtx();
    for p in GpuPrecision::all() {
        let r = eval_gpu(&net, p, &rtx);
        println!("GPU ({}) @ {:?}: {:.3} ms", rtx.name, p, r.latency_ms);
    }
    let zcu = FpgaDevice::zcu102();
    let rec =
        eval_recursive(&net, &tune_recursive(&net, 16, &zcu), &zcu).map_err(|e| e.to_string())?;
    println!(
        "FPGA recursive ({}) @16b: {:.3} ms, {:.0} DSPs",
        zcu.name, rec.latency_ms, rec.dsps
    );
    let zc7 = FpgaDevice::zc706();
    let pipe =
        eval_pipelined(&net, &tune_pipelined(&net, 16, &zc7), &zc7).map_err(|e| e.to_string())?;
    println!(
        "FPGA pipelined ({}) @16b: {:.1} fps, {:.0} DSPs",
        zc7.name, pipe.throughput_fps, pipe.dsps
    );
    Ok(())
}

/// Loads `--arch FILE`, falling back to the built-in tiny architecture.
fn load_arch(args: &Args) -> Result<DerivedArch, String> {
    match args.flags.get("arch") {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
            DerivedArch::from_json(&json).map_err(|e| format!("parsing {path}: {e}"))
        }
        None => Ok(edd::zoo::tiny_derived_arch()),
    }
}

/// Briefly QAT-trains `arch` on SynthImageNet and calibrates activation
/// scales: the shared front half of `qinfer` and `compile`.
fn train_and_calibrate(
    arch: &DerivedArch,
    batch: usize,
    batches: usize,
    epochs: usize,
    seed: u64,
) -> Result<(QatModel, Calibration), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = QatModel::new(arch, &mut rng);
    let data = SynthDataset::new(SynthConfig {
        num_classes: arch.space.num_classes,
        image_size: arch.space.image_size,
        ..SynthConfig::default()
    });
    let train = data.split(batches, batch, 1);
    let mut opt = edd::tensor::optim::Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for epoch in 0..epochs {
        let stats = edd::nn::train_epoch(&model, &mut opt, &train).map_err(|e| e.to_string())?;
        println!(
            "qat epoch {epoch}: loss {:.3}, top1 {:.2}",
            stats.loss, stats.top1
        );
    }
    model.set_training(false);
    let calib_data: Vec<_> = train.iter().map(|b| b.images.clone()).collect();
    let calib = calibrate(&model, &calib_data).map_err(|e| e.to_string())?;
    Ok((model, calib))
}

/// Serves every test batch through `server`, reporting top-1 accuracy and
/// measured throughput.
fn report_served_accuracy<M: edd::runtime::BatchModel>(
    server: &InferServer<M>,
    test: &[edd::nn::Batch],
) -> Result<(), String> {
    let mut correct = 0usize;
    let mut total = 0usize;
    for b in test {
        let n = b.labels.len();
        let logits = server
            .infer(b.images.data(), n)
            .map_err(|e| e.to_string())?;
        let classes = logits.len() / n;
        for i in 0..n {
            let row = &logits[i * classes..(i + 1) * classes];
            let arg = (0..classes).fold(0, |best, j| if row[j] > row[best] { j } else { best });
            correct += usize::from(arg == b.labels[i]);
            total += 1;
        }
    }
    let stats = server.stats();
    println!(
        "served {} requests / {} images entirely in integer arithmetic: \
         top1 {:.2}, mean latency {:.1} µs, {:.0} images/s",
        stats.requests,
        stats.images,
        correct as f64 / total.max(1) as f64,
        stats.mean_latency_us(),
        stats.images_per_sec()
    );
    Ok(())
}

/// `edd compile`: QAT-train + calibrate an architecture, lower it through
/// the `edd-ir` pass pipeline (`--passes all|none|name,…`) and write the
/// optimized quantized graph as a hot-loadable `.eddm` artifact.
fn cmd_compile(args: &Args) -> Result<(), String> {
    let batch = args.get_usize("batch", 8)?;
    let batches = args.get_usize("batches", 4)?;
    let epochs = args.get_usize("qat-epochs", 2)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let cfg = parse_passes(&args.get_str("passes", "all"))?;
    let arch = load_arch(args)?;
    let out = args.get_str("out", &format!("{}.{}", arch.name, artifact::ARTIFACT_EXT));
    println!("{}", arch.summary());

    let (model, calib) = train_and_calibrate(&arch, batch, batches, epochs, seed)?;
    let float_graph = lower_to_graph(&model, &arch, &calib).map_err(|e| e.to_string())?;
    let (lowered, report) = edd::ir::lower(&float_graph, &cfg).map_err(|e| e.to_string())?;
    // Prove the graph is executable before anything touches the disk.
    let compiled = CompiledModel::from_graph(lowered).map_err(|e| e.to_string())?;
    println!(
        "\nlowered {} float nodes -> {} quantized nodes \
         ({} BN folded, {} ReLU6 fused, {} 1x1 im2col bypassed, {} dead removed)",
        float_graph.len(),
        compiled.graph().len(),
        report.bn_folded,
        report.relu6_fused,
        report.bypassed_1x1,
        report.dce_removed
    );
    let path = std::path::Path::new(&out);
    artifact::save(path, compiled.graph()).map_err(|e| format!("writing {out}: {e}"))?;
    let bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    println!("wrote {out} ({bytes} bytes)");
    Ok(())
}

/// `edd qinfer --artifact`: hot-load a compiled `.eddm` artifact and serve
/// SynthImageNet batches through it — no QAT, no calibration, the graph on
/// disk is the whole model.
fn qinfer_artifact(path: &str, batch: usize, batches: usize) -> Result<(), String> {
    let model =
        artifact::load(std::path::Path::new(path)).map_err(|e| format!("loading {path}: {e}"))?;
    let meta = &model.graph().meta;
    println!(
        "hot-loaded {path}: model `{}`, input {:?}, {} classes, {} nodes",
        meta.name,
        meta.input_shape,
        meta.num_classes,
        model.graph().len()
    );
    let data = SynthDataset::new(SynthConfig {
        num_classes: meta.num_classes,
        image_size: meta.input_shape[1],
        ..SynthConfig::default()
    });
    let test = data.split(batches.max(1), batch, 2);
    let server = InferServer::new(model);
    report_served_accuracy(&server, &test)
}

/// `edd qinfer`: compile a derived architecture into the true integer
/// inference engine and serve batches through it — briefly QAT-trains the
/// network on SynthImageNet, calibrates activation scales, compiles to
/// int8/int4 weights with fixed-point requantization, and reports measured
/// throughput next to the Stage-1 `Perf^q` prediction. With `--artifact`
/// the engine is hot-loaded from a compiled `.eddm` file instead.
fn cmd_qinfer(args: &Args) -> Result<(), String> {
    let batch = args.get_usize("batch", 8)?;
    let batches = args.get_usize("batches", 4)?;
    let epochs = args.get_usize("qat-epochs", 2)?;
    let seed = args.get_usize("seed", 42)? as u64;
    if let Some(path) = args.flags.get("artifact") {
        return qinfer_artifact(path, batch, batches);
    }
    let arch = load_arch(args)?;
    println!("{}", arch.summary());

    let (model, calib) = train_and_calibrate(&arch, batch, batches, epochs, seed)?;
    let data = SynthDataset::new(SynthConfig {
        num_classes: arch.space.num_classes,
        image_size: arch.space.image_size,
        ..SynthConfig::default()
    });
    let test = data.split(batches.max(1), batch, 2);
    let q = QuantizedModel::compile(&model, &arch, &calib);
    println!(
        "\ncompiled integer engine: block bits {:?}, {} weight bytes, input scale {:.5}",
        q.block_bits(),
        q.weight_bytes(),
        q.input_scale()
    );

    let block_bits = q.block_bits().to_vec();
    let server = InferServer::new(q);
    report_served_accuracy(&server, &test)?;

    let device = AccelDevice::loom_like();
    let net = arch.to_network_shape();
    let mut q_per_op = vec![8u32; net.ops.len()];
    q_per_op[1..=block_bits.len()].copy_from_slice(&block_bits);
    println!(
        "Stage-1 Perf^q prediction on {}: {:.0} images/s at Φ = {:?} \
         (ratios, not absolutes, are the comparable quantity — see EXPERIMENTS.md)",
        device.name,
        predicted_throughput_fps(&net, &q_per_op, &device),
        block_bits
    );
    Ok(())
}

/// The back half of `edd serve`, generic over the engine: starts the
/// dynamic-batching server over `zoo`, drives the closed-loop synthetic
/// workload, and reports per-model stats.
fn drive_server<M: edd::runtime::BatchModel + Send + Sync + 'static>(
    zoo: Vec<(String, std::sync::Arc<M>)>,
    config: edd::runtime::ServeConfig,
    requests: usize,
    producers: usize,
    window: usize,
    seed: u64,
) -> Result<(), String> {
    let models = zoo.len();
    let image_len = edd::runtime::BatchModel::image_len(zoo[0].1.as_ref());
    println!(
        "serving with max_batch {}, max_delay {} µs, queue depth {}, {} shard(s)/model; \
         {producers} producer(s) x {requests} request(s), window {window}\n",
        config.batcher.max_batch,
        config.batcher.max_delay_us,
        config.batcher.queue_depth,
        config.shards
    );

    let server = edd::runtime::Server::start(zoo, config);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let pool: Vec<Vec<f32>> = (0..8)
        .map(|_| {
            edd::tensor::Array::randn(&[1, image_len], 1.0, &mut rng)
                .data()
                .to_vec()
        })
        .collect();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let server = &server;
            let pool = &pool;
            scope.spawn(move || {
                let mut inflight = std::collections::VecDeque::new();
                for i in 0..requests {
                    let img = pool[(p * 5 + i) % pool.len()].clone();
                    match server.submit((p + i) % models, img) {
                        Ok(t) => inflight.push_back(t),
                        Err(e) => eprintln!("producer {p}: request {i} rejected: {e}"),
                    }
                    if inflight.len() >= window {
                        if let Err(e) = inflight.pop_front().expect("nonempty").wait() {
                            eprintln!("producer {p}: request failed: {e}");
                        }
                    }
                }
                for t in inflight {
                    if let Err(e) = t.wait() {
                        eprintln!("producer {p}: request failed: {e}");
                    }
                }
            });
        }
    });
    let stats = server.shutdown();
    println!(
        "{:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7}",
        "model", "completed", "rejected", "p50us", "p95us", "p99us", "occup"
    );
    for s in &stats {
        println!(
            "{:<22} {:>9} {:>9} {:>8} {:>8} {:>8} {:>7.2}",
            s.name,
            s.completed,
            s.rejected_full + s.rejected_shutdown,
            s.latency.p50_us,
            s.latency.p95_us,
            s.latency.p99_us,
            s.mean_occupancy(),
        );
    }
    let completed: u64 = stats.iter().map(|s| s.completed).sum();
    let failed: u64 = stats.iter().map(|s| s.failed).sum();
    println!("\n{completed} request(s) completed, {failed} failed");
    if failed > 0 {
        return Err(format!("{failed} request(s) failed"));
    }
    Ok(())
}

/// `edd serve`: compile the tiny model zoo into integer engines — or
/// hot-load compiled `.eddm` artifacts via `--artifacts a.eddm,b.eddm` —
/// and drive the multi-tenant dynamic-batching server with a closed-loop
/// synthetic workload: several producer threads, each keeping a bounded
/// window of in-flight requests spread round-robin across the models.
/// Reports per-model completion counts, batch occupancy, and latency
/// percentiles.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let requests = args.get_usize("requests", 600)?;
    let producers = args.get_usize("producers", 2)?.max(1);
    let window = args.get_usize("window", 16)?.max(1);
    let seed = args.get_usize("seed", 42)? as u64;
    let config = edd::runtime::ServeConfig {
        batcher: edd::runtime::BatcherConfig {
            max_batch: args.get_usize("max-batch", 16)?,
            max_delay_us: args.get_usize("max-delay-us", 500)? as u64,
            queue_depth: args.get_usize("queue-depth", 1024)?,
        },
        shards: args.get_usize("shards", 1)?,
    };

    if let Some(list) = args.flags.get("artifacts") {
        let mut zoo: Vec<(String, std::sync::Arc<CompiledModel>)> = Vec::new();
        for path in list.split(',').map(str::trim).filter(|s| !s.is_empty()) {
            let model = artifact::load(std::path::Path::new(path))
                .map_err(|e| format!("loading {path}: {e}"))?;
            println!(
                "hot-loaded {path}: model `{}`, {} nodes",
                model.name(),
                model.graph().len()
            );
            zoo.push((model.name().to_owned(), std::sync::Arc::new(model)));
        }
        if zoo.is_empty() {
            return Err("serve --artifacts: no artifact paths given".into());
        }
        return drive_server(zoo, config, requests, producers, window, seed);
    }

    let models = args.get_usize("models", 3)?.clamp(1, 3);
    println!("compiling {models} tiny-zoo integer engine(s)...");
    let zoo: Vec<(String, std::sync::Arc<QuantizedModel>)> = edd::zoo::compile_tiny_zoo(seed)
        .into_iter()
        .take(models)
        .map(|(name, q)| (name, std::sync::Arc::new(q)))
        .collect();
    for (name, q) in &zoo {
        println!(
            "  {name}: block bits {:?}, {} weight bytes",
            q.block_bits(),
            q.weight_bytes()
        );
    }
    drive_server(zoo, config, requests, producers, window, seed)
}

/// `edd stream`: pulsed streaming inference — convert an integer engine
/// (compiled from an architecture, or hot-loaded from a `.eddm` artifact
/// via `--artifact`) into a [`edd::ir::PulsedModel`], then classify a
/// deterministic synthetic long signal one row-slice at a time through
/// sliding windows. Carried state is bounded by the window geometry, never
/// by the stream length; `--verify` re-runs every emitted window through
/// the batch engine and checks the logits are bitwise identical.
fn cmd_stream(args: &Args) -> Result<(), String> {
    let rows = args.get_usize("rows", 96)?;
    let seed = args.get_usize("seed", 42)? as u64;
    let batch = args.get_usize("batch", 8)?;
    let batches = args.get_usize("batches", 4)?;
    let epochs = args.get_usize("qat-epochs", 2)?;
    let verify = args.flags.contains_key("verify");
    let tracing = install_trace_sink(args)?;

    // Resolve the batch engine: hot-load an artifact, or QAT-train and
    // compile an architecture and lift the integer engine into the IR.
    let oracle: CompiledModel = if let Some(path) = args.flags.get("artifact") {
        let model = artifact::load(std::path::Path::new(path))
            .map_err(|e| format!("loading {path}: {e}"))?;
        println!(
            "hot-loaded {path}: model `{}`, {} nodes",
            model.name(),
            model.graph().len()
        );
        model
    } else {
        let arch = load_arch(args)?;
        println!("{}", arch.summary());
        let (model, calib) = train_and_calibrate(&arch, batch, batches, epochs, seed)?;
        let q = QuantizedModel::compile(&model, &arch, &calib);
        let graph = q.to_graph(&arch.name).map_err(|e| e.to_string())?;
        CompiledModel::from_graph(graph).map_err(|e| e.to_string())?
    };
    let meta = oracle.graph().meta.clone();
    let (channels, window, width) = (
        meta.input_shape[0],
        meta.input_shape[1],
        meta.input_shape[2],
    );
    let hop = args.get_usize("hop", (window / 2).max(1))?.max(1);
    if rows < window {
        return Err(format!(
            "--rows {rows} is shorter than the {window}-row window; no window can complete"
        ));
    }

    use edd::runtime::StreamModel as _;
    let pulsed =
        edd::ir::PulsedModel::from_graph(oracle.graph(), hop).map_err(|e| e.to_string())?;
    println!(
        "\npulsed `{}`: {} floats/slice, window {window} rows, hop {hop}, \
         delay {} rows, {} classes",
        meta.name,
        pulsed.slice_len(),
        pulsed.delay_rows(),
        pulsed.num_classes()
    );

    let signal = edd::zoo::synthetic_signal(channels, width, rows, seed);
    let mut session = edd::runtime::StreamSession::new(pulsed);
    let mut windows = Vec::new();
    for row in &signal {
        if let Some(w) = session.push(row).map_err(|e| e.to_string())? {
            windows.push(w);
        }
    }
    let stats = session.stats();

    let shown = windows.len().min(10);
    for w in &windows[..shown] {
        println!(
            "  window {:>3} (rows {:>4}..{:>4}): class {}",
            w.index,
            w.start_row,
            w.start_row + window as u64,
            w.argmax()
        );
    }
    if windows.len() > shown {
        println!("  ... {} more window(s)", windows.len() - shown);
    }
    let mut hist = vec![0usize; meta.num_classes];
    for w in &windows {
        hist[w.argmax().min(meta.num_classes - 1)] += 1;
    }
    println!(
        "classified {} window(s) from {} pushed slice(s); class histogram {hist:?}",
        stats.windows, stats.pushes
    );
    println!(
        "peak carried state {} bytes — bounded by the window geometry, \
         independent of the {rows}-row stream",
        stats.peak_state_bytes
    );

    if verify {
        for w in &windows {
            let win =
                edd::zoo::signal_window(&signal, w.start_row as usize, window, channels, width);
            let x = edd::tensor::Array::from_vec(win, &[1, channels, window, width])
                .map_err(|e| e.to_string())?;
            let want = oracle.forward(&x).map_err(|e| e.to_string())?;
            let same = want.data().len() == w.logits.len()
                && want
                    .data()
                    .iter()
                    .zip(&w.logits)
                    .all(|(a, b)| a.to_bits() == b.to_bits());
            if !same {
                return Err(format!(
                    "window {} diverged from the batch engine on identical rows",
                    w.index
                ));
            }
        }
        println!(
            "verified: all {} window(s) bitwise-equal to the batch engine",
            windows.len()
        );
    }
    if tracing {
        edd::runtime::telemetry::global().flush();
    }
    Ok(())
}

fn cmd_zoo() {
    let nets = [
        edd::zoo::googlenet(),
        edd::zoo::mobilenet_v2(),
        edd::zoo::shufflenet_v2(),
        edd::zoo::resnet18(),
        edd::zoo::vgg16(),
        edd::zoo::mnasnet_a1(),
        edd::zoo::fbnet_c(),
        edd::zoo::proxyless_cpu(),
        edd::zoo::proxyless_mobile(),
        edd::zoo::proxyless_gpu(),
        edd::zoo::edd_net_1(),
        edd::zoo::edd_net_2(),
        edd::zoo::edd_net_3(),
    ];
    let rtx = GpuDevice::titan_rtx();
    let zcu = FpgaDevice::zcu102();
    println!(
        "{:<18} {:>9} {:>9} {:>11} {:>12}",
        "model", "MMACs", "Mparams", "GPU fp32", "ZCU102 16b"
    );
    for net in &nets {
        let gpu = eval_gpu(net, GpuPrecision::Fp32, &rtx).latency_ms;
        let rec = eval_recursive(net, &tune_recursive(net, 16, &zcu), &zcu)
            .expect("tuned")
            .latency_ms;
        println!(
            "{:<18} {:>9.0} {:>9.1} {:>9.2}ms {:>10.2}ms",
            net.name,
            net.total_work() / 1e6,
            net.total_params() / 1e6,
            gpu,
            rec
        );
    }
}

fn cmd_devices() {
    println!("GPUs:");
    for d in [
        GpuDevice::titan_rtx(),
        GpuDevice::gtx_1080_ti(),
        GpuDevice::p100(),
    ] {
        println!(
            "  {:<14} {:>5.1} fp32 TMAC/s, {:>5.0} GB/s, {:.2} ms/layer",
            d.name, d.peak_tmacs_fp32, d.mem_bw_gbs, d.per_layer_overhead_ms
        );
    }
    println!("FPGAs:");
    for d in [FpgaDevice::zcu102(), FpgaDevice::zc706()] {
        println!(
            "  {:<14} {:>5.0} DSPs @ {:.0} MHz (eff {:.2})",
            d.name, d.dsp_budget, d.clock_mhz, d.efficiency
        );
    }
    let a = AccelDevice::loom_like();
    println!("Dedicated:");
    println!(
        "  {:<14} {:>5.1} TMAC/s @16x16b, {}-bit activations",
        a.name,
        a.peak_macs_16x16 / 1e12,
        a.activation_bits
    );
}

const USAGE: &str = "usage: edd <search|sweep|eval|compile|qinfer|serve|stream|zoo|devices> [--flags]\n\
  search  --target gpu|fpga-recursive|fpga-pipelined|dedicated \\\n          --blocks N --classes C --epochs E --seed S --out FILE \\\n          --checkpoint-dir DIR --checkpoint-every N --checkpoint-keep K \\\n          --checkpoint-label L --resume PATH --trace-out FILE.jsonl\n\
  sweep   --targets gpu,fpga-recursive,fpga-pipelined \\\n          --blocks N --classes C --epochs E --seed S --out-prefix P \\\n          --checkpoint-dir DIR --checkpoint-every N --checkpoint-keep K \\\n          --resume PATH --stop-after N --trace-out FILE.jsonl\n\
  eval    --arch FILE\n\
  compile --arch FILE --out FILE.eddm --passes all|none|name,... \\\n          --batch N --batches K --qat-epochs E --seed S\n\
  qinfer  --arch FILE | --artifact FILE.eddm \\\n          --batch N --batches K --qat-epochs E --seed S\n\
  serve   --models N | --artifacts a.eddm,b.eddm \\\n          --requests R --producers P --window W --shards S \\\n          --max-batch B --max-delay-us D --queue-depth Q --seed S\n\
  stream  --arch FILE | --artifact FILE.eddm \\\n          --rows N --hop H --verify --seed S \\\n          --batch N --batches K --qat-epochs E --trace-out FILE.jsonl\n\
  zoo\n\
  devices\n\
\n\
  --checkpoint-dir   write crash-safe search snapshots into DIR after each\n\
                     qualifying epoch (search-<epoch>.edds)\n\
  --checkpoint-every snapshot cadence in epochs (default 1; 0 = final only)\n\
  --checkpoint-keep  retain only the newest K snapshots (default 3)\n\
  --checkpoint-label tag snapshot names (search-<L>-<epoch>.edds) so several\n\
                     searches can share one checkpoint directory\n\
  --resume           continue bit-identically from a snapshot file, or from\n\
                     the newest snapshot in a checkpoint directory\n\
  --trace-out        stream structured telemetry (epoch metrics, phase\n\
                     timings, kernel counters) as JSON lines to FILE\n\
  --passes           IR optimization passes for compile: all (default),\n\
                     none, or a comma-list of bn-fold, relu6-fuse,\n\
                     bypass-1x1, dce\n\
\n\
  sweep co-searches one shared supernet for several device targets at\n\
  once: every weight step is shared (T-times amortization), the per-target\n\
  architecture steps run in parallel, and each target accumulates a Pareto\n\
  front over (val acc, ms/frame, DSPs). Writes one derived-arch JSON per\n\
  target (P-<target>.json) plus a cross-target summary (P-pareto.json);\n\
  one sweep-<epoch>.edds snapshot resumes the whole sweep bit-identically.\n\
\n\
  compile QAT-trains and calibrates an architecture, lowers it through\n\
  the edd-ir pass pipeline, and writes a CRC-checked .eddm artifact that\n\
  qinfer --artifact and serve --artifacts hot-load without retraining.\n\
\n\
  serve compiles up to 3 tiny-zoo integer engines (or hot-loads compiled\n\
  artifacts), serves them all from one multi-tenant dynamic-batching\n\
  server (bounded queues with backpressure, deadline-based batch\n\
  coalescing, per-model worker shards), drives a closed-loop synthetic\n\
  workload against it, and reports per-model latency percentiles and\n\
  batch occupancy\n\
\n\
  stream converts an integer engine (compiled from an architecture, or\n\
  hot-loaded from a .eddm artifact) into a pulsed model that consumes a\n\
  synthetic long signal one row-slice at a time, emitting a classification\n\
  per sliding window after an explicitly computed delay. Each conv keeps\n\
  only a small ring of rows, so carried state is bounded by the window\n\
  geometry and independent of the stream length; --verify re-runs every\n\
  window through the batch engine and checks the logits bitwise";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "search" => cmd_search(&args),
        "sweep" => cmd_sweep(&args),
        "eval" => cmd_eval(&args),
        "compile" => cmd_compile(&args),
        "qinfer" => cmd_qinfer(&args),
        "serve" => cmd_serve(&args),
        "stream" => cmd_stream(&args),
        "zoo" => {
            cmd_zoo();
            Ok(())
        }
        "devices" => {
            cmd_devices();
            Ok(())
        }
        "" | "help" | "--help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|v| (*v).to_string()).collect()
    }

    #[test]
    fn parse_basic_flags() {
        let a = parse_args(&argv(&["search", "--blocks", "5", "--quick"])).unwrap();
        assert_eq!(a.command, "search");
        assert_eq!(a.get_usize("blocks", 0).unwrap(), 5);
        assert_eq!(a.get_str("quick", "false"), "true");
        assert_eq!(a.get_usize("missing", 7).unwrap(), 7);
    }

    #[test]
    fn parse_rejects_positional() {
        assert!(parse_args(&argv(&["search", "oops"])).is_err());
    }

    #[test]
    fn parse_rejects_bad_number() {
        let a = parse_args(&argv(&["search", "--blocks", "many"])).unwrap();
        assert!(a.get_usize("blocks", 0).is_err());
    }

    #[test]
    fn passes_spec_resolves() {
        assert_eq!(parse_passes("all").unwrap(), PassConfig::all());
        assert_eq!(parse_passes("none").unwrap(), PassConfig::none());
        let cfg = parse_passes("bn-fold, dce").unwrap();
        assert!(cfg.bn_fold && cfg.dce && !cfg.relu6_fuse && !cfg.bypass_1x1);
        let err = parse_passes("bn-fold,loop-unroll").unwrap_err();
        assert!(err.contains("loop-unroll"), "{err}");
        assert!(err.contains("bypass-1x1"), "{err}");
    }

    #[test]
    fn sweep_targets_intersect_quant_menus() {
        let (targets, menu) = parse_sweep_targets("gpu,fpga-recursive,fpga-pipelined").unwrap();
        assert_eq!(targets.len(), 3);
        // GPU supports {8,16,32}; both FPGA flavors {4,8,16} -> {8,16}.
        assert_eq!(menu, vec![8, 16]);
        let (one, menu1) = parse_sweep_targets("dedicated").unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(menu1, one[0].default_quant_bits());
        assert!(parse_sweep_targets("").is_err());
        assert!(parse_sweep_targets("gpu,tpu").is_err());
    }

    #[test]
    fn target_names_resolve() {
        assert!(parse_target("gpu").is_ok());
        assert!(parse_target("fpga-recursive").is_ok());
        assert!(parse_target("fpga-pipelined").is_ok());
        assert!(parse_target("dedicated").is_ok());
        assert!(parse_target("tpu").is_err());
    }
}
