//! Integration test: checkpointing the search variables mid-run and
//! restoring them into a fresh `ArchParams` reproduces the same derived
//! architecture and the same differentiable estimates.

use edd::core::{
    estimate, ArchCheckpoint, ArchParams, DerivedArch, DeviceTarget, PerfTables, SearchSpace,
};
use edd::hw::FpgaDevice;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (SearchSpace, DeviceTarget) {
    (
        SearchSpace::tiny(4, 16, 4, vec![4, 8, 16]),
        DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
    )
}

#[test]
fn checkpoint_survives_json_and_reproduces_derivation() {
    let (space, target) = setup();
    let mut rng = StdRng::seed_from_u64(21);
    let original = ArchParams::init(&space, &target, &mut rng);
    // Perturb the variables so the checkpoint is non-trivial.
    for (i, t) in original.theta.iter().enumerate() {
        t.update_value(|a| a.data_mut()[i % 9] = 5.0);
    }
    let ckpt = original.checkpoint();
    let json = serde_json::to_string(&ckpt).expect("serializes");

    // Restore into a freshly initialized (different) parameter set.
    let mut rng2 = StdRng::seed_from_u64(999);
    let restored = ArchParams::init(&space, &target, &mut rng2);
    let parsed: ArchCheckpoint = serde_json::from_str(&json).expect("parses");
    restored.restore(&parsed).expect("layouts match");

    let d1 = DerivedArch::from_params(&space, &target, &original);
    let d2 = DerivedArch::from_params(&space, &target, &restored);
    assert_eq!(d1.blocks, d2.blocks);
}

#[test]
fn restored_params_give_identical_estimates() {
    let (space, target) = setup();
    let mut rng = StdRng::seed_from_u64(22);
    let a = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");
    let ckpt = a.checkpoint();

    let mut rng_b = StdRng::seed_from_u64(777);
    let b = ArchParams::init(&space, &target, &mut rng_b);
    b.restore(&ckpt).expect("layouts match");

    // Same noise seed -> identical stochastic estimates.
    let mut n1 = StdRng::seed_from_u64(5);
    let mut n2 = StdRng::seed_from_u64(5);
    let e1 = estimate(&a, &tables, &space, &target, 1.0, &mut n1).expect("estimate");
    let e2 = estimate(&b, &tables, &space, &target, 1.0, &mut n2).expect("estimate");
    assert_eq!(e1.perf.item(), e2.perf.item());
    assert_eq!(e1.res.item(), e2.res.item());
}

#[test]
fn checkpoint_is_compact_json() {
    let (space, target) = setup();
    let mut rng = StdRng::seed_from_u64(23);
    let a = ArchParams::init(&space, &target, &mut rng);
    let json = serde_json::to_string(&a.checkpoint()).expect("serializes");
    // 4 theta x 9 + 36 phi x 3 + 36 pf floats — well under 16 KiB of JSON.
    assert!(
        json.len() < 16_384,
        "checkpoint unexpectedly large: {}",
        json.len()
    );
}
