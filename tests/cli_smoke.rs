//! End-to-end smoke tests of the `edd` CLI binary: a search run writes a
//! JSON artifact that `eval` then consumes; informational subcommands
//! print what they promise; bad input fails with a nonzero exit code.

use std::process::Command;

fn edd() -> Command {
    Command::new(env!("CARGO_BIN_EXE_edd"))
}

#[test]
fn devices_lists_all_platforms() {
    let out = edd().arg("devices").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["Titan RTX", "GTX 1080 Ti", "ZCU102", "ZC706", "Loom"] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn zoo_prints_thirteen_models() {
    let out = edd().arg("zoo").output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in ["GoogleNet", "VGG16", "EDD-Net-1", "EDD-Net-2", "EDD-Net-3"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn search_then_eval_roundtrip() {
    let out_path = std::env::temp_dir().join("edd_cli_smoke_arch.json");
    let out = edd()
        .args([
            "search",
            "--target",
            "fpga-pipelined",
            "--blocks",
            "2",
            "--classes",
            "4",
            "--epochs",
            "2",
            "--out",
        ])
        .arg(&out_path)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "search failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out_path.exists());

    let eval = edd()
        .args(["eval", "--arch"])
        .arg(&out_path)
        .output()
        .expect("runs");
    assert!(eval.status.success());
    let text = String::from_utf8_lossy(&eval.stdout);
    assert!(text.contains("FPGA pipelined"));
    assert!(text.contains("GPU (Titan RTX)"));
    std::fs::remove_file(&out_path).ok();
}

#[test]
fn compile_then_hot_load_roundtrip() {
    let artifact = std::env::temp_dir().join("edd_cli_smoke_model.eddm");
    let out = edd()
        .args(["compile", "--qat-epochs", "1", "--out"])
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "compile failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("BN folded"), "missing pass report:\n{text}");
    assert!(artifact.exists());

    let qinfer = edd()
        .args(["qinfer", "--artifact"])
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        qinfer.status.success(),
        "qinfer --artifact failed: {}",
        String::from_utf8_lossy(&qinfer.stderr)
    );
    let text = String::from_utf8_lossy(&qinfer.stdout);
    assert!(text.contains("hot-loaded"), "stdout: {text}");

    let serve = edd()
        .args(["serve", "--requests", "40", "--artifacts"])
        .arg(&artifact)
        .output()
        .expect("runs");
    assert!(
        serve.status.success(),
        "serve --artifacts failed: {}",
        String::from_utf8_lossy(&serve.stderr)
    );
    let text = String::from_utf8_lossy(&serve.stdout);
    assert!(text.contains("0 failed"), "stdout: {text}");
    std::fs::remove_file(&artifact).ok();
}

#[test]
fn compile_rejects_unknown_pass() {
    let out = edd()
        .args(["compile", "--passes", "loop-unroll"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown pass"), "stderr: {err}");
}

#[test]
fn qinfer_rejects_corrupt_artifact() {
    let path = std::env::temp_dir().join("edd_cli_smoke_corrupt.eddm");
    std::fs::write(&path, b"EDDMODL\0not a real artifact").unwrap();
    let out = edd()
        .args(["qinfer", "--artifact"])
        .arg(&path)
        .output()
        .expect("runs");
    assert!(!out.status.success());
    std::fs::remove_file(&path).ok();
}

#[test]
fn unknown_command_fails() {
    let out = edd().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());
}

#[test]
fn bad_target_fails_with_message() {
    let out = edd()
        .args(["search", "--target", "abacus"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown target"), "stderr: {err}");
}

#[test]
fn eval_missing_file_fails() {
    let out = edd()
        .args(["eval", "--arch", "/nonexistent/void.json"])
        .output()
        .expect("runs");
    assert!(!out.status.success());
}
