//! End-to-end integration tests: the full co-search pipeline (supernet
//! training → architecture step → derivation → final training →
//! hardware evaluation) for each of the paper's three device targets.

use edd::core::{CoSearch, CoSearchConfig, DerivedArch, DeviceTarget, SearchSpace};
use edd::data::{SynthConfig, SynthDataset};
use edd::hw::{
    eval_gpu, eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice, GpuDevice,
};
use edd::nn::{evaluate, train_epoch, Module};
use edd::tensor::optim::Sgd;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn run_search(target: DeviceTarget, quants: Vec<u32>, seed: u64) -> DerivedArch {
    let mut rng = StdRng::seed_from_u64(seed);
    let space = SearchSpace::tiny(3, 16, 4, quants);
    let config = CoSearchConfig {
        epochs: 3,
        warmup_epochs: 1,
        ..CoSearchConfig::default()
    };
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(2, 8, 1);
    let val = data.split(1, 8, 2);
    let mut search = CoSearch::new(space, target, config, &mut rng).expect("target valid");
    search
        .run(&train, &val, &mut rng)
        .expect("search runs")
        .derived
}

#[test]
fn gpu_target_end_to_end() {
    let arch = run_search(
        DeviceTarget::Gpu(GpuDevice::titan_rtx()),
        vec![8, 16, 32],
        1,
    );
    assert_eq!(arch.blocks.len(), 3);
    // GPU: uniform precision across blocks (φ is global).
    let q0 = arch.blocks[0].quant_bits;
    assert!(arch.blocks.iter().all(|b| b.quant_bits == q0));
    assert!(arch.blocks.iter().all(|b| b.parallel_factor.is_none()));
    // Evaluable on the GPU model.
    let report = eval_gpu(
        &arch.to_network_shape(),
        edd::hw::GpuPrecision::from_bits(q0).expect("menu bits"),
        &GpuDevice::titan_rtx(),
    );
    assert!(report.latency_ms > 0.0 && report.latency_ms.is_finite());
}

#[test]
fn recursive_fpga_target_end_to_end() {
    let device = FpgaDevice::zcu102();
    let arch = run_search(
        DeviceTarget::FpgaRecursive(device.clone()),
        vec![4, 8, 16],
        2,
    );
    // Recursive: shared implementation per op class — blocks choosing the
    // same (kernel, expansion) must agree on quantization and pf.
    for a in &arch.blocks {
        for b in &arch.blocks {
            if a.kernel == b.kernel && a.expansion == b.expansion {
                assert_eq!(a.quant_bits, b.quant_bits);
                assert_eq!(a.parallel_factor, b.parallel_factor);
            }
        }
    }
    let net = arch.to_network_shape();
    let imp = tune_recursive(&net, 16, &device);
    let report = eval_recursive(&net, &imp, &device).expect("classes covered");
    assert!(report.dsps <= device.dsp_budget * 1.001);
}

#[test]
fn pipelined_fpga_target_end_to_end() {
    let device = FpgaDevice::zc706();
    let arch = run_search(
        DeviceTarget::FpgaPipelined(device.clone()),
        vec![4, 8, 16],
        3,
    );
    assert!(arch.blocks.iter().all(|b| b.parallel_factor.is_some()));
    let net = arch.to_network_shape();
    let imp = tune_pipelined(&net, 16, &device);
    let report = eval_pipelined(&net, &imp, &device).expect("stage counts");
    assert!(report.throughput_fps > 0.0);
    assert!(report.dsps <= device.dsp_budget * 1.001);
}

#[test]
fn derived_architecture_trains_above_chance() {
    let arch = run_search(
        DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        vec![4, 8, 16],
        4,
    );
    let mut rng = StdRng::seed_from_u64(10);
    let model = arch.build_model(&mut rng);
    let data = SynthDataset::new(SynthConfig::tiny());
    let train = data.split(6, 16, 5);
    let test = data.split(3, 16, 6);
    let mut opt = Sgd::new(model.parameters(), 0.05, 0.9, 1e-4);
    for _ in 0..6 {
        train_epoch(&model, &mut opt, &train).expect("training");
    }
    let stats = evaluate(&model, &test).expect("eval");
    // 4 classes -> chance is 0.25; require clear learning.
    assert!(stats.top1 > 0.5, "top1 {} not above chance", stats.top1);
}

#[test]
fn derived_architecture_json_roundtrip_through_file() {
    let arch = run_search(
        DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        vec![4, 8, 16],
        5,
    );
    let json = arch.to_json().expect("serializes");
    let path = std::env::temp_dir().join("edd_integration_arch.json");
    std::fs::write(&path, &json).expect("temp write");
    let loaded = std::fs::read_to_string(&path).expect("temp read");
    let back = DerivedArch::from_json(&loaded).expect("parses");
    assert_eq!(back, arch);
    // The reloaded artifact still builds a working model.
    let mut rng = StdRng::seed_from_u64(1);
    let model = back.build_model(&mut rng);
    assert!(model.num_parameters() > 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn search_is_deterministic_given_seed() {
    let a = run_search(
        DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        vec![4, 8, 16],
        77,
    );
    let b = run_search(
        DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        vec![4, 8, 16],
        77,
    );
    assert_eq!(a, b);
}
