//! Cross-crate gradient-flow tests: finite-difference verification of the
//! differentiable performance/resource formulation (Eq. 2–10) with frozen
//! Gumbel noise, and end-to-end gradient reachability through the fused
//! loss (Eq. 1).

use edd::core::{
    edd_loss, estimate, ArchParams, DeviceTarget, LossConfig, PerfTables, SearchSpace,
};
use edd::hw::FpgaDevice;
use edd::tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Evaluates perf + res at the current parameters with a *fixed* noise
/// seed, making the stochastic estimate a deterministic function of the
/// architecture parameters (so central differences are valid).
fn frozen_loss(
    arch: &ArchParams,
    tables: &PerfTables,
    space: &SearchSpace,
    target: &DeviceTarget,
    noise_seed: u64,
) -> Tensor {
    let mut rng = StdRng::seed_from_u64(noise_seed);
    let est = estimate(arch, tables, space, target, 1.0, &mut rng).expect("estimate");
    edd_loss(
        &Tensor::scalar(1.0),
        &est.perf,
        &est.res,
        target.resource_bound(),
        &LossConfig::default(),
    )
    .expect("loss")
}

fn check_param_gradient(
    param: &Tensor,
    index: usize,
    arch: &ArchParams,
    tables: &PerfTables,
    space: &SearchSpace,
    target: &DeviceTarget,
) -> (f32, f32) {
    for p in arch.all_params() {
        p.zero_grad();
    }
    let loss = frozen_loss(arch, tables, space, target, 99);
    loss.backward();
    let analytic = param.grad().map_or(0.0, |g| g.data()[index]);
    let eps = 1e-2;
    let orig = param.value().data()[index];
    param.update_value(|a| a.data_mut()[index] = orig + eps);
    let lp = frozen_loss(arch, tables, space, target, 99).item();
    param.update_value(|a| a.data_mut()[index] = orig - eps);
    let lm = frozen_loss(arch, tables, space, target, 99).item();
    param.update_value(|a| a.data_mut()[index] = orig);
    ((lp - lm) / (2.0 * eps), analytic)
}

#[test]
fn perf_model_gradients_match_finite_differences() {
    let mut rng = StdRng::seed_from_u64(5);
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");

    // Theta of block 1, element 4.
    let (num, ana) = check_param_gradient(&arch.theta[1], 4, &arch, &tables, &space, &target);
    assert!(
        (num - ana).abs() < 0.05 * num.abs().max(ana.abs()).max(1e-3),
        "theta: numeric {num} vs analytic {ana}"
    );

    // Phi of (block 2, op 3), element 1.
    let phi = arch.phi_logits(2, 3).clone();
    let (num, ana) = check_param_gradient(&phi, 1, &arch, &tables, &space, &target);
    assert!(
        (num - ana).abs() < 0.05 * num.abs().max(ana.abs()).max(1e-3),
        "phi: numeric {num} vs analytic {ana}"
    );

    // Parallel factor of (block 0, op 0).
    let pf = arch.pf(0, 0).expect("pipelined has pf").clone();
    let (num, ana) = check_param_gradient(&pf, 0, &arch, &tables, &space, &target);
    assert!(
        (num - ana).abs() < 0.07 * num.abs().max(ana.abs()).max(1e-3),
        "pf: numeric {num} vs analytic {ana}"
    );
}

#[test]
fn recursive_target_gradients_match_too() {
    let mut rng = StdRng::seed_from_u64(6);
    let space = SearchSpace::tiny(3, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");

    let (num, ana) = check_param_gradient(&arch.theta[0], 0, &arch, &tables, &space, &target);
    assert!(
        (num - ana).abs() < 0.05 * num.abs().max(ana.abs()).max(1e-3),
        "theta: numeric {num} vs analytic {ana}"
    );
    // Shared pf (class 2).
    let pf = arch.pf(1, 2).expect("recursive has pf").clone();
    let (num, ana) = check_param_gradient(&pf, 0, &arch, &tables, &space, &target);
    assert!(
        (num - ana).abs() < 0.07 * num.abs().max(ana.abs()).max(1e-3),
        "shared pf: numeric {num} vs analytic {ana}"
    );
}

#[test]
fn pf_gradient_signs_encode_the_tradeoff() {
    // Under the fused loss, increasing pf lowers latency (good) but raises
    // resource (bad near the budget). Far below budget the latency term
    // dominates: d loss / d pf < 0.
    let mut rng = StdRng::seed_from_u64(7);
    let space = SearchSpace::tiny(2, 16, 4, vec![4, 8, 16]);
    let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");

    // Push pf low so resources are far under budget.
    for i in 0..2 {
        for m in 0..9 {
            arch.pf(i, m)
                .expect("pf")
                .update_value(|a| a.data_mut()[0] = 2.0);
        }
    }
    for p in arch.all_params() {
        p.zero_grad();
    }
    let mut rng2 = StdRng::seed_from_u64(1);
    let est = estimate(&arch, &tables, &space, &target, 1.0, &mut rng2).expect("estimate");
    // Use a pure latency loss to isolate the sign.
    est.perf.backward();
    let g = arch.pf(0, 0).expect("pf").grad().expect("grad").item();
    assert!(g < 0.0, "latency gradient should push pf upward (grad {g})");
}

#[test]
fn resource_penalty_pushes_pf_down_when_over_budget() {
    let mut rng = StdRng::seed_from_u64(8);
    let space = SearchSpace::tiny(2, 16, 4, vec![8, 16, 16]);
    let target = DeviceTarget::FpgaPipelined(FpgaDevice::zc706());
    let arch = ArchParams::init(&space, &target, &mut rng);
    let tables = PerfTables::build(&space, &target).expect("tables");

    // Push pf so high that resources vastly exceed the 900-DSP budget.
    for i in 0..2 {
        for m in 0..9 {
            arch.pf(i, m)
                .expect("pf")
                .update_value(|a| a.data_mut()[0] = 12.0);
        }
    }
    for p in arch.all_params() {
        p.zero_grad();
    }
    let mut rng2 = StdRng::seed_from_u64(1);
    let est = estimate(&arch, &tables, &space, &target, 1.0, &mut rng2).expect("estimate");
    let loss = edd_loss(
        &Tensor::scalar(1.0),
        &est.perf,
        &est.res,
        target.resource_bound(),
        &LossConfig::default(),
    )
    .expect("loss");
    loss.backward();
    let g = arch.pf(0, 0).expect("pf").grad().expect("grad").item();
    assert!(
        g > 0.0,
        "over budget the penalty must push pf down (grad {g})"
    );
}
