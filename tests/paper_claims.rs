//! The paper's headline evaluation claims as executable tests: every
//! "shape" assertion of Tables 1–3 that the analytic models are expected
//! to reproduce (see EXPERIMENTS.md for the full paper-vs-modeled record).

use edd::hw::gpu::GpuPrecision;
use edd::hw::{
    eval_gpu, eval_pipelined, eval_recursive, tune_pipelined, tune_recursive, FpgaDevice, GpuDevice,
};
use edd::zoo;

fn gpu_ms(net: &edd::hw::NetworkShape, p: GpuPrecision) -> f64 {
    eval_gpu(net, p, &GpuDevice::titan_rtx()).latency_ms
}

fn fpga_ms(net: &edd::hw::NetworkShape) -> f64 {
    let d = FpgaDevice::zcu102();
    eval_recursive(net, &tune_recursive(net, 16, &d), &d)
        .expect("classes covered")
        .latency_ms
}

#[test]
fn table1_edd_net_1_beats_existing_nas_on_gpu() {
    // Paper: EDD-Net-1 (16-bit) has the shortest GPU latency of all the
    // NAS-searched models (11.17 ms; 1.4x faster than Proxyless-gpu).
    let edd1 = gpu_ms(&zoo::edd_net_1(), GpuPrecision::Fp16);
    for rival in [
        zoo::mnasnet_a1(),
        zoo::fbnet_c(),
        zoo::proxyless_cpu(),
        zoo::proxyless_mobile(),
        zoo::proxyless_gpu(),
    ] {
        let l = gpu_ms(&rival, GpuPrecision::Fp32);
        assert!(
            edd1 < l,
            "{} ({l:.2}ms) beats EDD-Net-1 ({edd1:.2}ms)",
            rival.name
        );
    }
}

#[test]
fn table1_gpu_speedup_vs_proxyless_gpu_in_band() {
    let edd1 = gpu_ms(&zoo::edd_net_1(), GpuPrecision::Fp16);
    let pg = gpu_ms(&zoo::proxyless_gpu(), GpuPrecision::Fp32);
    let speedup = pg / edd1;
    assert!(
        (1.1..=1.8).contains(&speedup),
        "speedup {speedup:.2} outside band (paper: 1.40)"
    );
}

#[test]
fn table1_resnet18_is_fastest_baseline_on_gpu() {
    // Paper Table 1: ResNet18 at 9.71 ms is the fastest fp32 row.
    let resnet = gpu_ms(&zoo::resnet18(), GpuPrecision::Fp32);
    for other in [zoo::googlenet(), zoo::mobilenet_v2(), zoo::shufflenet_v2()] {
        assert!(resnet < gpu_ms(&other, GpuPrecision::Fp32));
    }
}

#[test]
fn table1_edd_net_2_beats_nas_rivals_on_recursive_fpga() {
    // Paper §6: EDD-Net-2 is 1.37x faster than Proxyless, 1.53x than
    // FBNet on the ZCU102 recursive accelerator.
    let edd2 = fpga_ms(&zoo::edd_net_2());
    for rival in [
        zoo::fbnet_c(),
        zoo::proxyless_cpu(),
        zoo::proxyless_mobile(),
        zoo::proxyless_gpu(),
    ] {
        let l = fpga_ms(&rival);
        assert!(
            edd2 < l,
            "{} ({l:.2}ms) beats EDD-Net-2 ({edd2:.2}ms)",
            rival.name
        );
    }
}

#[test]
fn table2_latency_monotone_in_precision() {
    let net = zoo::edd_net_1();
    let ti = GpuDevice::gtx_1080_ti();
    let l32 = eval_gpu(&net, GpuPrecision::Fp32, &ti).latency_ms;
    let l16 = eval_gpu(&net, GpuPrecision::Fp16, &ti).latency_ms;
    let l8 = eval_gpu(&net, GpuPrecision::Int8, &ti).latency_ms;
    assert!(l32 > l16 && l16 > l8, "{l32} {l16} {l8}");
    // Paper's end-to-end ratios: 2.83/2.29 = 1.24, 2.29/1.74 = 1.32.
    assert!((l32 / l16 - 1.24).abs() < 0.35, "ratio {}", l32 / l16);
    assert!((l16 / l8 - 1.32).abs() < 0.35, "ratio {}", l16 / l8);
}

#[test]
fn table3_throughput_gain_in_band() {
    let d = FpgaDevice::zc706();
    let vgg = zoo::vgg16();
    let edd3 = zoo::edd_net_3();
    let vgg_fps = eval_pipelined(&vgg, &tune_pipelined(&vgg, 16, &d), &d)
        .expect("stages")
        .throughput_fps;
    let edd_fps = eval_pipelined(&edd3, &tune_pipelined(&edd3, 16, &d), &d)
        .expect("stages")
        .throughput_fps;
    let gain = edd_fps / vgg_fps;
    assert!(
        (1.2..=1.7).contains(&gain),
        "gain {gain:.2} outside band (paper: 1.45)"
    );
    // Absolute scale sanity: both in the tens of fps, as published.
    assert!(vgg_fps > 10.0 && vgg_fps < 60.0, "VGG {vgg_fps:.1} fps");
    assert!(edd_fps > 20.0 && edd_fps < 90.0, "EDD-3 {edd_fps:.1} fps");
}

#[test]
fn fpga_implementations_fit_budgets() {
    let zcu = FpgaDevice::zcu102();
    let zc7 = FpgaDevice::zc706();
    for net in [zoo::edd_net_1(), zoo::edd_net_2(), zoo::mobilenet_v2()] {
        let rec =
            eval_recursive(&net, &tune_recursive(&net, 16, &zcu), &zcu).expect("classes covered");
        assert!(rec.dsps <= zcu.dsp_budget * 1.001, "{}", net.name);
    }
    for net in [zoo::edd_net_3(), zoo::vgg16()] {
        let pipe = eval_pipelined(&net, &tune_pipelined(&net, 16, &zc7), &zc7).expect("stages");
        assert!(pipe.dsps <= zc7.dsp_budget * 1.01, "{}", net.name);
    }
}

#[test]
fn gpu_fp16_advantage_is_device_dependent() {
    // Turing (Titan RTX) gains ~2x from fp16; Pascal (1080 Ti) gains much
    // less — the behaviour Table 1 vs Table 2 exhibit.
    let net = zoo::edd_net_1();
    let rtx = GpuDevice::titan_rtx();
    let ti = GpuDevice::gtx_1080_ti();
    let rtx_gain = eval_gpu(&net, GpuPrecision::Fp32, &rtx).latency_ms
        / eval_gpu(&net, GpuPrecision::Fp16, &rtx).latency_ms;
    let ti_gain = eval_gpu(&net, GpuPrecision::Fp32, &ti).latency_ms
        / eval_gpu(&net, GpuPrecision::Fp16, &ti).latency_ms;
    assert!(
        rtx_gain > ti_gain,
        "rtx {rtx_gain:.2} vs pascal {ti_gain:.2}"
    );
}

#[test]
fn lower_precision_never_slower_anywhere() {
    let zcu = FpgaDevice::zcu102();
    for net in [zoo::edd_net_2(), zoo::mnasnet_a1()] {
        let l16 = eval_recursive(&net, &tune_recursive(&net, 16, &zcu), &zcu)
            .expect("classes")
            .latency_ms;
        let l8 = eval_recursive(&net, &tune_recursive(&net, 8, &zcu), &zcu)
            .expect("classes")
            .latency_ms;
        assert!(l8 <= l16, "{}: 8-bit slower than 16-bit", net.name);
    }
}
