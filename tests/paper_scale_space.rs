//! Integration tests at the paper's true scale: the N = 20, M = 9, Q = 3
//! ImageNet search space (224²). The supernet itself is too heavy to train
//! in CI, but everything around it — coefficient tables, architecture
//! parameters, derivation, hardware evaluation — must work at this scale.

use edd::core::{ArchParams, DerivedArch, DeviceTarget, PerfTables, SearchSpace};
use edd::hw::{eval_recursive, tune_recursive, AccelDevice, FpgaDevice, GpuDevice};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn paper_space_tables_build_for_all_targets() {
    let fpga_space = SearchSpace::paper_imagenet(vec![4, 8, 16]);
    let gpu_space = SearchSpace::paper_imagenet(vec![8, 16, 32]);
    let ded_space = SearchSpace::paper_imagenet(vec![2, 4, 8, 16]);

    for (space, target) in [
        (
            &fpga_space,
            DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        ),
        (
            &fpga_space,
            DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        ),
        (&gpu_space, DeviceTarget::Gpu(GpuDevice::titan_rtx())),
        (
            &ded_space,
            DeviceTarget::Dedicated(AccelDevice::loom_like()),
        ),
    ] {
        let tables =
            PerfTables::build(space, &target).unwrap_or_else(|e| panic!("{}: {e}", target.label()));
        assert_eq!(tables.lat.len(), 20);
        assert_eq!(tables.lat[0].len(), 9);
        for row in &tables.lat {
            for cell in row {
                for &v in cell {
                    assert!(
                        v.is_finite() && v > 0.0,
                        "{}: bad coeff {v}",
                        target.label()
                    );
                }
            }
        }
    }
}

#[test]
fn paper_space_derived_network_is_imagenet_class() {
    let space = SearchSpace::paper_imagenet(vec![4, 8, 16]);
    let target = DeviceTarget::FpgaRecursive(FpgaDevice::zcu102());
    let mut rng = StdRng::seed_from_u64(3);
    let arch = ArchParams::init(&space, &target, &mut rng);
    let derived = DerivedArch::from_params(&space, &target, &arch);
    let net = derived.to_network_shape();
    // MobileNet-class compute: hundreds of MMACs, millions of params.
    let mmacs = net.total_work() / 1e6;
    assert!(
        (100.0..3000.0).contains(&mmacs),
        "derived paper-space net at {mmacs:.0} MMACs"
    );
    // Evaluable on the hardware model in the latency range the paper's
    // Table 1 reports (single-digit to tens of ms).
    let d = FpgaDevice::zcu102();
    let report = eval_recursive(&net, &tune_recursive(&net, 16, &d), &d).expect("tuned");
    assert!(
        (1.0..100.0).contains(&report.latency_ms),
        "latency {:.1} ms",
        report.latency_ms
    );
}

#[test]
fn paper_space_arch_params_sizes() {
    let space = SearchSpace::paper_imagenet(vec![4, 8, 16]);
    let mut rng = StdRng::seed_from_u64(4);
    // Pipelined: theta N + phi N*M + pf N*M tensors.
    let pipe = ArchParams::init(
        &space,
        &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        &mut rng,
    );
    assert_eq!(pipe.all_params().len(), 20 + 180 + 180);
    // Recursive sharing collapses phi/pf to M each.
    let rec = ArchParams::init(
        &space,
        &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        &mut rng,
    );
    assert_eq!(rec.all_params().len(), 20 + 9 + 9);
}

#[test]
fn paper_space_pf_initialization_magnitudes() {
    // §5: recursive pf0 = log2(2520/9) ≈ 8.13; pipelined pf0 =
    // log2(900/180) ≈ 2.32.
    let space = SearchSpace::paper_imagenet(vec![4, 8, 16]);
    let mut rng = StdRng::seed_from_u64(5);
    let rec = ArchParams::init(
        &space,
        &DeviceTarget::FpgaRecursive(FpgaDevice::zcu102()),
        &mut rng,
    );
    assert!((rec.pf(0, 0).unwrap().item() - 8.13).abs() < 0.01);
    let pipe = ArchParams::init(
        &space,
        &DeviceTarget::FpgaPipelined(FpgaDevice::zc706()),
        &mut rng,
    );
    assert!((pipe.pf(0, 0).unwrap().item() - 2.32).abs() < 0.01);
}
