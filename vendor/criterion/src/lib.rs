//! Offline shim for the subset of the `criterion` 0.5 API used by the
//! workspace's benches.
//!
//! Provides wall-clock benchmarking with warmup and a fixed measurement
//! budget, printing `name  time: [median mean max]` lines to stdout. No
//! statistical analysis, plots, or baseline storage — just honest timing
//! that makes before/after comparisons possible in an offline container.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark inside a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value, e.g. a size.
    #[must_use]
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Id with an explicit function name and parameter.
    #[must_use]
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Runs closures under timing; handed to every bench function.
pub struct Bencher {
    /// Collected per-iteration durations of the measurement phase.
    samples: Vec<Duration>,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    fn new(measurement_time: Duration, warm_up_time: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            measurement_time,
            warm_up_time,
        }
    }

    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: at least one call, until the warmup budget is spent.
        let warm_start = Instant::now();
        loop {
            black_box(routine());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: per-iteration timing until the budget is spent.
        let bench_start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if bench_start.elapsed() >= self.measurement_time && self.samples.len() >= 10 {
                break;
            }
            if self.samples.len() >= 100_000 {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<50} no samples collected");
        return;
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let max = samples[samples.len() - 1];
    println!(
        "{name:<50} time: [{} {} {}]  ({} samples)",
        fmt_duration(median),
        fmt_duration(mean),
        fmt_duration(max),
        samples.len()
    );
    append_json_record(name, median, mean, max, samples.len());
}

/// Host context attached to every JSONL record: logical CPU count, the
/// thread count the kernels will use (`EDD_NUM_THREADS` when set to a
/// positive integer, else the CPU count — mirroring the runtime's own
/// resolution), and the `EDD_SIMD` dispatch override (`"auto"` when unset).
fn context_fields() -> String {
    let nproc = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let threads = std::env::var("EDD_NUM_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(nproc);
    let simd = std::env::var("EDD_SIMD").unwrap_or_else(|_| "auto".to_string());
    let simd_escaped: String = simd.chars().flat_map(escape_json_char).collect();
    format!("\"nproc\":{nproc},\"num_threads\":{threads},\"simd\":\"{simd_escaped}\"")
}

/// JSON string escaping for one character (quotes, backslashes, controls).
fn escape_json_char(c: char) -> Vec<char> {
    match c {
        '"' | '\\' => vec!['\\', c],
        c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
        c => vec![c],
    }
}

/// When `EDD_BENCH_JSON` names a file, every finished benchmark appends one
/// JSON object per line (JSONL): name, median/mean/max in integer
/// nanoseconds, the sample count, and the host context (cpu count, thread
/// count, SIMD setting). Machine-readable counterpart of the stdout report,
/// consumed by `scripts/bench.sh`.
fn append_json_record(name: &str, median: Duration, mean: Duration, max: Duration, n: usize) {
    let Ok(path) = std::env::var("EDD_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    // JSON string escaping for the benchmark name (names are plain
    // identifiers with '/', but stay safe on quotes/backslashes).
    let escaped: String = name.chars().flat_map(escape_json_char).collect();
    let line = format!(
        "{{\"name\":\"{escaped}\",\"median_ns\":{},\"mean_ns\":{},\"max_ns\":{},\"samples\":{n},{}}}\n",
        median.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
        context_fields(),
    );
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Benchmark registry/runner; the shim keeps only timing configuration.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // A bench binary is invoked by cargo as `bench_name --bench
        // [filter]`; any non-flag argument doubles as a name filter.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        // EDD_BENCH_QUICK (any value but "" or "0") shrinks the default
        // time budgets for smoke runs — `cargo bench` offers no way to
        // pass flags through to every bench binary, so the scripts'
        // shared --quick mode arrives via the environment instead.
        let quick = std::env::var("EDD_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        let (measure_ms, warmup_ms) = if quick { (150, 30) } else { (700, 150) };
        Criterion {
            measurement_time: Duration::from_millis(measure_ms),
            warm_up_time: Duration::from_millis(warmup_ms),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warmup budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    fn matches(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }

    /// Times `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        if self.matches(id) {
            let mut b = Bencher::new(self.measurement_time, self.warm_up_time);
            f(&mut b);
            report(id, &mut b.samples);
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes samples by time
    /// budget, not count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the per-benchmark measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Times `f` under `group/id`.
    pub fn bench_function<I: fmt::Display, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Times `f` with `input` under `group/id`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion
            .bench_function(&full, |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (printing already happened per-bench).
    pub fn finish(self) {}
}

/// Declares a group function running the listed benchmarks in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        let mut ran = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        assert!(ran > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(3))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        for n in [1usize, 2] {
            group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
                b.iter(|| black_box(n * 2));
            });
        }
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
    }

    #[test]
    fn json_records_append_when_env_set() {
        let path = std::env::temp_dir().join(format!("edd_bench_json_{}", std::process::id()));
        let _ = std::fs::remove_file(&path);
        std::env::set_var("EDD_BENCH_JSON", &path);
        let mut c = Criterion::default()
            .measurement_time(Duration::from_millis(3))
            .warm_up_time(Duration::from_millis(1));
        c.filter = None;
        c.bench_function("json/smoke", |b| b.iter(|| black_box(2 + 2)));
        std::env::remove_var("EDD_BENCH_JSON");
        let text = std::fs::read_to_string(&path).expect("JSONL file written");
        let _ = std::fs::remove_file(&path);
        // Other shim tests may interleave records while the env var is set;
        // find ours rather than assuming it is first.
        let line = text
            .lines()
            .find(|l| l.contains("json/smoke"))
            .expect("record for json/smoke");
        assert!(line.starts_with("{\"name\":\"json/smoke\",\"median_ns\":"));
        assert!(line.contains("\"samples\":"));
        assert!(line.contains("\"nproc\":"));
        assert!(line.contains("\"num_threads\":"));
        assert!(line.contains("\"simd\":\""));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn quick_env_shrinks_default_budgets() {
        std::env::set_var("EDD_BENCH_QUICK", "1");
        let quick = Criterion::default();
        std::env::set_var("EDD_BENCH_QUICK", "0");
        let full = Criterion::default();
        std::env::remove_var("EDD_BENCH_QUICK");
        assert!(quick.measurement_time < full.measurement_time);
        assert!(quick.warm_up_time < full.warm_up_time);
        assert_eq!(full.measurement_time, Duration::from_millis(700));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
