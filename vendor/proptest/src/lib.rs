//! Offline shim for the subset of the `proptest` 1.x API used by this
//! workspace.
//!
//! Implements randomized property testing without shrinking: the
//! [`proptest!`] macro expands each property into a `#[test]` that draws
//! `ProptestConfig::cases` deterministic samples from the argument
//! strategies and reports the first failing input verbatim. Supported
//! strategies are the ones the workspace's suites use: numeric ranges,
//! tuples, [`prop::collection::vec`], [`prop::sample::select`], `Just`,
//! and [`Strategy::prop_map`].

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic per-case random source for strategy sampling.

    pub use rand::rngs::StdRng as InnerRng;
    use rand::SeedableRng;

    /// The RNG handed to strategies; a thin wrapper over the vendored
    /// [`rand::rngs::StdRng`].
    #[derive(Debug, Clone)]
    pub struct TestRng(pub InnerRng);

    impl TestRng {
        /// RNG for case number `case` of the test named `name`; stable
        /// across runs so failures reproduce.
        #[must_use]
        pub fn for_case(name: &str, case: u32) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng(InnerRng::seed_from_u64(
                h ^ (u64::from(case) << 32) ^ u64::from(case),
            ))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Error raised by `prop_assert!`-family macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A generator of random values of an associated type.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                use rand::Rng;
                rng.gen_range(self.clone())
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// Inclusive bounds on collection sizes, converted from `usize` and both
/// range forms.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Built-in strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{SizeRange, Strategy, TestRng};

        /// Strategy yielding `Vec`s whose length lies in `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        /// Strategy produced by [`vec()`].
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                use rand::Rng;
                let n = rng.gen_range(self.size.lo..=self.size.hi);
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy yielding clones of elements of `items`, uniformly.
        pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
            assert!(!items.is_empty(), "select: empty choice list");
            Select { items }
        }

        /// Strategy produced by [`select`].
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            items: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn sample(&self, rng: &mut TestRng) -> T {
                use rand::Rng;
                self.items[rng.gen_range(0..self.items.len())].clone()
            }
        }
    }
}

/// Everything a property-test module usually imports.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random draws.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                for case in 0..cfg.cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)+
                    let inputs = format!(
                        concat!($("  ", stringify!($arg), " = {:?}\n",)+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\nwith inputs:\n{}",
                            stringify!($name),
                            case,
                            cfg.cases,
                            e,
                            inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current property case instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($lhs),
            stringify!($rhs),
            l
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in 1usize..5, b in -2.0f32..2.0, c in 0u64..10) {
            prop_assert!((1..5).contains(&a));
            prop_assert!((-2.0..2.0).contains(&b));
            prop_assert!(c < 10);
        }

        #[test]
        fn vec_and_select(
            v in prop::collection::vec(0usize..3, 2..6),
            s in prop::sample::select(vec![10usize, 20, 30]),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&x| x < 3));
            prop_assert!(s == 10 || s == 20 || s == 30);
        }

        #[test]
        fn tuples_map(pair in (1usize..4, 1usize..4).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..16).contains(&pair));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u32..7) {
            prop_assert!(x < 7, "x was {}", x);
        }
    }
}
