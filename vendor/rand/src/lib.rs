//! Offline shim for the subset of the `rand` 0.8 API used by this
//! workspace.
//!
//! The build environment has no crates.io access, so the workspace vendors
//! a minimal, deterministic implementation of the surface it actually
//! calls: [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`]
//! (`seed_from_u64`), and [`rngs::StdRng`] (an xoshiro256++ generator).
//!
//! Stream values differ from the real `rand` crate; everything in the
//! workspace that consumes randomness is seeded and asserts statistical or
//! tolerance-based properties, not exact draws.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`next_u64`]).
    ///
    /// [`next_u64`]: RngCore::next_u64
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from the full bit stream
/// (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! float_range {
    ($t:ty, $standard:ty) => {
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let f = <$t as Standard>::from_rng(rng); // [0, 1)
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                // [0, 1) scaled onto [lo, hi]; the closed upper endpoint is
                // a measure-zero event no caller in this workspace relies on.
                let f = <$t as Standard>::from_rng(rng);
                lo + f * (hi - lo)
            }
        }
    };
}
float_range!(f32, f32);
float_range!(f64, f64);

macro_rules! uint_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % width) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi - lo) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (width + 1)) as $t
            }
        }
    )*};
}
uint_range!(u8, u16, u32, u64, usize);

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let width = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add((rng.next_u64() % width) as i64)) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let width = (hi as i64).wrapping_sub(lo as i64) as u64;
                if width == u64::MAX {
                    return rng.next_u64() as $t;
                }
                ((lo as i64).wrapping_add((rng.next_u64() % (width + 1)) as i64)) as $t
            }
        }
    )*};
}
int_range!(i8, i16, i32, i64, isize);

/// High-level random value generation, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` (`f32`/`f64` in `[0, 1)`, integers over
    /// the full width, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Draws uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++,
    /// seeded through SplitMix64 exactly as the `rand_xoshiro` reference
    /// implementation recommends.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl StdRng {
        /// The full 256-bit generator state, for checkpointing.
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Reconstructs a generator at exactly the given state; the stream
        /// continues from where [`StdRng::state`] captured it.
        #[must_use]
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        /// Replaces this generator's state in place (checkpoint restore).
        pub fn set_state(&mut self, s: [u64; 4]) {
            self.s = s;
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.gen::<u64>();
        }
        let saved = a.state();
        let tail: Vec<u64> = (0..50).map(|_| a.gen::<u64>()).collect();
        // from_state continues the stream exactly.
        let mut b = StdRng::from_state(saved);
        let resumed: Vec<u64> = (0..50).map(|_| b.gen::<u64>()).collect();
        assert_eq!(tail, resumed);
        // set_state rewinds in place.
        let mut c = StdRng::seed_from_u64(0);
        c.set_state(saved);
        assert_eq!(c.gen::<u64>(), tail[0]);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.gen::<f32>();
            assert!((0.0..1.0).contains(&f));
            let d = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..7);
            assert!((3..7).contains(&v));
            let f = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((hits as f64 / 100_000.0 - 0.25).abs() < 0.01);
    }
}
