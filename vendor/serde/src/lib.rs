//! Offline shim for the subset of the `serde` 1.x API used by this
//! workspace.
//!
//! Instead of serde's visitor architecture, this shim routes everything
//! through one in-memory tree, [`Content`], mirroring the JSON data model:
//! [`Serialize`] renders a value into a `Content`, [`Deserialize`] rebuilds
//! a value from one. The companion `serde_derive` proc-macro generates both
//! impls for structs and enums (externally tagged, like real serde), and
//! the companion `serde_json` shim converts `Content` to and from JSON
//! text. Only the types the workspace actually serializes are covered.

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a JSON-shaped tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Seq(Vec<Content>),
    /// Ordered string-keyed map (struct fields keep declaration order).
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The map entries, if this is a map.
    #[must_use]
    pub fn as_map(&self) -> Option<&[(String, Content)]> {
        match self {
            Content::Map(m) => Some(m),
            _ => None,
        }
    }

    /// A short name of the variant, for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced when rebuilding a value from [`Content`] fails.
#[derive(Debug, Clone)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    #[must_use]
    pub fn custom(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Looks up a required struct field in a serialized map.
///
/// # Errors
///
/// Returns an error naming the missing field.
pub fn field<'c>(map: &'c [(String, Content)], name: &str) -> Result<&'c Content, DeError> {
    map.iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

/// Types renderable into the [`Content`] data model.
pub trait Serialize {
    /// Renders `self` as a content tree.
    fn to_content(&self) -> Content;
}

/// Types rebuildable from the [`Content`] data model. The lifetime mirrors
/// real serde's `Deserialize<'de>` so bounds like
/// `for<'de> serde::Deserialize<'de>` compile unchanged.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds a value from a content tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] describing the first mismatch encountered.
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::U64(*self as u64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    other => Err(DeError::custom(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as i64;
                if v < 0 {
                    Content::I64(v)
                } else {
                    Content::U64(v as u64)
                }
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::U64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    Content::I64(v) => <$t>::try_from(*v)
                        .map_err(|_| DeError::custom("integer out of range")),
                    other => Err(DeError::custom(format!(
                        "expected integer, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::F64(*self as f64)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::F64(v) => Ok(*v as $t),
                    Content::U64(v) => Ok(*v as $t),
                    Content::I64(v) => Ok(*v as $t),
                    other => Err(DeError::custom(format!(
                        "expected number, found {}",
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for &str {
    fn to_content(&self) -> Content {
        Content::Str((*self).to_string())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            // The content tree is owned, so a borrowed str must be leaked.
            // Only `&'static str` table-row fields hit this, and only from
            // tests; real serde borrows from the input instead.
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de> + fmt::Debug, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_content).collect();
                parsed.map(|v| <[T; N]>::try_from(v).expect("length checked against N above"))
            }
            Content::Seq(items) => Err(DeError::custom(format!(
                "expected array of length {N}, found {}",
                items.len()
            ))),
            other => Err(DeError::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            None => Content::Null,
            Some(v) => v.to_content(),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_content()))
                .collect(),
        )
    }
}

impl<'de, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v)?)))
                .collect(),
            other => Err(DeError::custom(format!(
                "expected map, found {}",
                other.kind()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u32::from_content(&42u32.to_content()).unwrap(), 42);
        assert_eq!(i64::from_content(&(-3i64).to_content()).unwrap(), -3);
        assert_eq!(f64::from_content(&1.5f64.to_content()).unwrap(), 1.5);
        assert!(bool::from_content(&true.to_content()).unwrap());
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1.0f32, 2.0, 3.0];
        assert_eq!(Vec::<f32>::from_content(&v.to_content()).unwrap(), v);
        let opt: Option<f32> = None;
        assert_eq!(
            Option::<f32>::from_content(&opt.to_content()).unwrap(),
            None
        );
        let arr = [1.0f64, 2.0, 3.0];
        assert_eq!(<[f64; 3]>::from_content(&arr.to_content()).unwrap(), arr);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2u32);
        assert_eq!(
            BTreeMap::<String, u32>::from_content(&m.to_content()).unwrap(),
            m
        );
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(u32::from_content(&Content::Str("x".into())).is_err());
        assert!(String::from_content(&Content::U64(1)).is_err());
        assert!(<[f64; 3]>::from_content(&Content::Seq(vec![Content::U64(1)])).is_err());
        assert!(field(&[], "missing").is_err());
    }
}
