//! Offline `#[derive(Serialize, Deserialize)]` shim.
//!
//! Generates impls of the vendored `serde` shim's content-tree traits for
//! the shapes this workspace actually derives on: structs with named
//! fields, and enums whose variants are unit, newtype, or struct-like.
//! The encoding matches real serde's externally-tagged JSON form, so the
//! artifacts written by the CLI stay conventional.
//!
//! Parsing is done directly on the token stream (no `syn`/`quote`, which
//! are unavailable offline); generation is by string assembly.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct FieldList(Vec<String>);

#[derive(Debug)]
enum Variant {
    Unit(String),
    Newtype(String),
    Struct(String, FieldList),
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        fields: FieldList,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Skips one attribute (`#` plus its bracket group) if present at `i`.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *i += 1; // '#'
                if matches!(&tokens[*i], TokenTree::Group(g) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Skips a visibility qualifier (`pub`, `pub(crate)`, ...) if present.
fn skip_vis(tokens: &[TokenTree], i: &mut usize) {
    if matches!(&tokens[*i], TokenTree::Ident(id) if id.to_string() == "pub") {
        *i += 1;
        if *i < tokens.len() {
            if let TokenTree::Group(g) = &tokens[*i] {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        }
    }
}

/// Parses the named fields of a brace-delimited struct body.
fn parse_named_fields(body: &[TokenTree]) -> FieldList {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        skip_vis(body, &mut i);
        let TokenTree::Ident(name) = &body[i] else {
            panic!(
                "serde_derive shim: expected field name, found {:?}",
                body[i]
            );
        };
        fields.push(name.to_string());
        i += 1;
        // Skip ':' and the type, up to the next comma at angle-depth 0.
        let mut depth = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    FieldList(fields)
}

/// Parses the variants of a brace-delimited enum body.
fn parse_variants(body: &[TokenTree]) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        skip_attrs(body, &mut i);
        if i >= body.len() {
            break;
        }
        let TokenTree::Ident(name) = &body[i] else {
            panic!(
                "serde_derive shim: expected variant name, found {:?}",
                body[i]
            );
        };
        let name = name.to_string();
        i += 1;
        let variant = match body.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let commas = inner
                    .iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                assert!(
                    commas == 0
                        || (commas == 1
                            && matches!(inner.last(), Some(TokenTree::Punct(p)) if p.as_char() == ',')),
                    "serde_derive shim: only single-field tuple variants are supported ({name})"
                );
                Variant::Newtype(name)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                Variant::Struct(name, parse_named_fields(&inner))
            }
            _ => Variant::Unit(name),
        };
        variants.push(variant);
        // Skip to past the next top-level comma.
        while i < body.len() {
            if matches!(&body[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&tokens, &mut i);
    skip_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let TokenTree::Ident(name) = &tokens[i] else {
        panic!("serde_derive shim: expected type name");
    };
    let name = name.to_string();
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic types are not supported ({name})");
    }
    let Some(TokenTree::Group(g)) = tokens.get(i) else {
        panic!("serde_derive shim: expected a brace-delimited body for {name}");
    };
    assert_eq!(
        g.delimiter(),
        Delimiter::Brace,
        "serde_derive shim: tuple structs are not supported ({name})"
    );
    let body: Vec<TokenTree> = g.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Item::Struct {
            name,
            fields: parse_named_fields(&body),
        },
        "enum" => Item::Enum {
            name,
            variants: parse_variants(&body),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    }
}

/// Derives the vendored `serde::Serialize`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let entries: String = fields
                .0
                .iter()
                .map(|f| {
                    format!("(\"{f}\".to_string(), ::serde::Serialize::to_content(&self.{f})),")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         ::serde::Content::Map(vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(v) => {
                        format!("{name}::{v} => ::serde::Content::Str(\"{v}\".to_string()),")
                    }
                    Variant::Newtype(v) => format!(
                        "{name}::{v}(inner) => ::serde::Content::Map(vec![(\
                             \"{v}\".to_string(), ::serde::Serialize::to_content(inner))]),"
                    ),
                    Variant::Struct(v, fields) => {
                        let binds = fields.0.join(", ");
                        let entries: String = fields
                            .0
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), ::serde::Serialize::to_content({f})),"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Content::Map(vec![(\
                                 \"{v}\".to_string(), ::serde::Content::Map(vec![{entries}]))]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_content(&self) -> ::serde::Content {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated Serialize impl parses")
}

/// Derives the vendored `serde::Deserialize`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse_item(input) {
        Item::Struct { name, fields } => {
            let inits: String = fields
                .0
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_content(::serde::field(map, \"{f}\")?)?,"
                    )
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         let map = content.as_map().ok_or_else(|| \
                             ::serde::DeError::custom(format!(\
                                 \"expected map for struct {name}, found {{}}\", content.kind())))?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),"
                    )),
                    _ => None,
                })
                .collect();
            let tagged_arms: String = variants
                .iter()
                .filter_map(|v| match v {
                    Variant::Unit(_) => None,
                    Variant::Newtype(v) => Some(format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(\
                             ::serde::Deserialize::from_content(value)?)),"
                    )),
                    Variant::Struct(v, fields) => {
                        let inits: String = fields
                            .0
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_content(\
                                         ::serde::field(inner, \"{f}\")?)?,"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => {{\n\
                                 let inner = value.as_map().ok_or_else(|| \
                                     ::serde::DeError::custom(\
                                         \"expected map for variant {v}\"))?;\n\
                                 ::std::result::Result::Ok({name}::{v} {{ {inits} }})\n\
                             }},"
                        ))
                    }
                })
                .collect();
            format!(
                "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
                     fn from_content(content: &::serde::Content) \
                         -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                         match content {{\n\
                             ::serde::Content::Str(tag) => match tag.as_str() {{\n\
                                 {unit_arms}\n\
                                 other => ::std::result::Result::Err(::serde::DeError::custom(\
                                     format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                             }},\n\
                             ::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
                                 let (tag, value) = &entries[0];\n\
                                 match tag.as_str() {{\n\
                                     {tagged_arms}\n\
                                     other => ::std::result::Result::Err(::serde::DeError::custom(\
                                         format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                                 }}\n\
                             }},\n\
                             other => ::std::result::Result::Err(::serde::DeError::custom(\
                                 format!(\"expected enum {name}, found {{}}\", other.kind()))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse()
        .expect("serde_derive shim: generated Deserialize impl parses")
}
