//! Offline shim for the subset of the `serde_json` 1.x API used by this
//! workspace: [`to_string`], [`to_string_pretty`], and [`from_str`],
//! bridging JSON text and the vendored `serde` shim's content tree.

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn number_to_string(v: f64) -> String {
    if !v.is_finite() {
        // JSON has no NaN/Infinity; mirror serde_json's lossy `null`.
        return "null".to_string();
    }
    let s = format!("{v}");
    // Ensure the token re-parses as a float, keeping int/float distinction
    // stable across a roundtrip.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

fn write_content(c: &Content, out: &mut String, indent: Option<usize>) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(v) => out.push_str(&v.to_string()),
        Content::I64(v) => out.push_str(&v.to_string()),
        Content::F64(v) => out.push_str(&number_to_string(*v)),
        Content::Str(s) => escape_into(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_content(item, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                escape_into(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the types this workspace serializes; the `Result` form
/// mirrors the real API.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
///
/// # Errors
///
/// Never fails for the types this workspace serializes.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(0));
    Ok(out)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str) -> Self {
        Parser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        match self.peek() {
            None => Err(Error::new("unexpected end of input")),
            Some(b'n') => {
                if self.eat_keyword("null") {
                    Ok(Content::Null)
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b't') => {
                if self.eat_keyword("true") {
                    Ok(Content::Bool(true))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'f') => {
                if self.eat_keyword("false") {
                    Ok(Content::Bool(false))
                } else {
                    Err(Error::new(format!("invalid token at byte {}", self.pos)))
                }
            }
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Content::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.expect(b'{')?;
                let mut entries = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Content::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(_) => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(Error::new("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(Error::new("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::new("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u codepoint"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let start = self.pos;
                    let mut end = start + 1;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Content> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'-' | b'+' | b'.' | b'0'..=b'9' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("invalid token at byte {start}")));
        }
        if text.contains('.') || text.contains('e') || text.contains('E') {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<u64>()
                .map(|v| Content::I64(-(v as i64)))
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

/// Parses a `T` from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch with `T`.
pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T> {
    let mut parser = Parser::new(s);
    let content = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_content(&content)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1f64, 1e-300, 123_456_789.123_456_78, -2.5e17] {
            let s = to_string(&v).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), v, "via {s}");
        }
        // Whole-number floats keep their float-ness.
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "line\n\"quoted\"\tπ".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
        assert_eq!(from_str::<String>(r#""A""#).unwrap(), "A");
    }

    #[test]
    fn collections_roundtrip() {
        let v = vec![vec![1.0f32, 2.0], vec![3.0]];
        let json = to_string(&v).unwrap();
        assert_eq!(from_str::<Vec<Vec<f32>>>(&json).unwrap(), v);
        let none: Option<f32> = None;
        assert_eq!(to_string(&none).unwrap(), "null");
        assert_eq!(from_str::<Option<f32>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<f32>>("2.5").unwrap(), Some(2.5));
    }

    #[test]
    fn pretty_output_parses_back() {
        let v = vec![1u32, 2, 3];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<u32>>(&pretty).unwrap(), vec![1, 2, 3]);
    }

    #[test]
    fn malformed_inputs_error() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("4x").is_err());
        assert!(from_str::<Vec<u32>>("[1, 2").is_err());
        assert!(from_str::<String>("\"oops").is_err());
    }
}
